//! A minimal, self-contained, API-compatible subset of the `criterion`
//! crate (0.5 line), vendored so the workspace builds and runs benches in
//! offline environments (see `vendor/README.md`).
//!
//! Measurement is simplified: each benchmark runs a short warm-up, then
//! timed batches until a time budget (or sample count) is reached, and
//! prints mean / min per-iteration wall time. No statistical analysis,
//! HTML reports, or comparison against saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just a parameter (upstream: `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs closures and measures per-iteration wall time.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    last: Option<Measurement>,
}

#[derive(Clone, Copy, Debug)]
struct Measurement {
    mean: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, running it repeatedly until the sample count or the
    /// time budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches the way upstream does).
        let warm_start = Instant::now();
        black_box(routine());
        let first = warm_start.elapsed();

        let mut total = Duration::ZERO;
        let mut min = first;
        let mut iters = 0u64;
        let cap = self.samples as u64;
        while iters < cap && total < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            iters += 1;
        }
        let mean = if iters > 0 {
            total / iters as u32
        } else {
            first
        };
        self.last = Some(Measurement {
            mean,
            min,
            iters: iters.max(1),
        });
    }
}

fn run_one(name: &str, samples: usize, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        budget,
        last: None,
    };
    f(&mut b);
    match b.last {
        Some(m) => println!(
            "bench {name:<48} mean {:>12.3?}  min {:>12.3?}  ({} iters)",
            m.mean, m.min, m.iters
        ),
        None => println!("bench {name:<48} (no measurement recorded)"),
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    samples: usize,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            samples: 20,
            budget: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Upstream parses CLI args here; this subset accepts and ignores them.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.samples, self.budget, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        let (samples, budget) = (self.samples, self.budget);
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples,
            budget,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    budget: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of samples for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Set the per-benchmark time budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.samples,
            self.budget,
            f,
        );
        self
    }

    /// Benchmark a function against an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.samples,
            self.budget,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (prints nothing in this subset).
    pub fn finish(self) {}
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        (0..n).fold(0, |a, x| a ^ x.wrapping_mul(0x9E3779B9))
    }

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("spin", |b| b.iter(|| spin(black_box(10_000))));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| spin(black_box(1_000))));
        g.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &n| {
            b.iter(|| spin(n))
        });
        g.finish();
    }
}
