//! A minimal, self-contained, API-compatible subset of the `rand` crate
//! (0.8 line), vendored so the workspace builds and tests in offline
//! environments (see `vendor/README.md`).
//!
//! Only the surface this repository uses is provided: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`], `gen`,
//! `gen_range`, and `gen_bool`. The generator is SplitMix64 — not the
//! ChaCha12 of upstream `StdRng`, so seeded streams differ from upstream,
//! but every consumer in this repository only relies on determinism and
//! statistical uniformity, not on specific stream values.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard (uniform) distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distributions (only [`Standard`](distributions::Standard) and uniform
/// ranges are provided).
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over the full domain of the
    /// type (`[0, 1)` for floats).
    pub struct Standard;

    macro_rules! impl_standard_uint {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Uniform sampling from ranges.
    pub mod uniform {
        use super::super::RngCore;

        /// A range that can be sampled from directly.
        pub trait SampleRange<T> {
            /// Sample one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample from an empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128;
                        (self.start as i128 + v) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample from an empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128;
                        (lo as i128 + v) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<f32> for core::ops::Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator. Upstream this is ChaCha12; here it
    /// is SplitMix64 (deterministic, fast, statistically solid for tests —
    /// not cryptographically secure, which no consumer in this repository
    /// requires of the *test* RNG).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map(|_| StdRng::seed_from_u64(7).gen::<u64>())
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(a[0], rng.gen::<u64>());
        let mut rng2 = StdRng::seed_from_u64(8);
        assert_ne!(a[0], rng2.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-32i64..32);
            assert!((-32..32).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&u));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
