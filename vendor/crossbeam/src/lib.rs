//! A minimal, self-contained, API-compatible subset of the `crossbeam`
//! crate (0.8 line), vendored so the workspace builds and tests in offline
//! environments (see `vendor/README.md`).
//!
//! Provides [`thread::scope`] (built on `std::thread::scope`) and
//! [`channel`] (an MPMC channel built on `Mutex` + `Condvar`). Semantics
//! match upstream for the surface this repository uses; performance of the
//! channel is lower than upstream's lock-free implementation but the
//! channel only carries coarse-grained jobs here.

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 calling convention
    //! (`scope(|s| { s.spawn(|_| ...); })`).

    use std::any::Any;

    /// Result type of [`scope`]: `Err` carries the payload of a panicked
    /// child thread.
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; `spawn` borrows data owned by the caller of
    /// [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// nested spawns are possible (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All spawned threads are joined before
    /// `scope` returns. Returns `Err` if any child panicked.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    //! An MPMC FIFO channel with the crossbeam 0.8 API surface used by
    //! this repository: [`unbounded`], [`bounded`], cloneable [`Sender`] /
    //! [`Receiver`], blocking `send` / `recv`, `recv_timeout`, and
    //! `try_recv`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty (senders still connected).
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout (senders still connected).
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; returns the value back if all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if st.items.len() >= cap => {
                        st = self.shared.not_full.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.items.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; `Err` once the channel is empty and all
        /// senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Blocking receive with a deadline: `Err(Timeout)` if nothing
        /// arrives within `timeout`, `Err(Disconnected)` once the channel
        /// is empty and all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.queue.lock().expect("channel lock");
            if let Some(v) = st.items.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterate until the channel is empty and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Channel that blocks senders at `cap` queued items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    total.fetch_add(
                        chunk.iter().sum::<u64>(),
                        std::sync::atomic::Ordering::Relaxed,
                    )
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn scope_reports_child_panic() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_mpmc_fifo_and_disconnect() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_cross_thread() {
        let (tx, rx) = super::channel::bounded(2);
        let h = std::thread::spawn(move || (0..100).map(|i| tx.send(i)).all(|r| r.is_ok()));
        let got: Vec<i32> = rx.iter().collect();
        assert!(h.join().unwrap());
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
