//! A minimal, self-contained, API-compatible subset of the `proptest`
//! crate (1.x line), vendored so the workspace builds and tests in offline
//! environments (see `vendor/README.md`).
//!
//! Supported surface: the [`proptest!`] macro (with typed arguments,
//! `name in strategy` arguments, and `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map`, range / tuple / `any` strategies,
//! `prop::collection::vec`, `prop::sample::select`, and the
//! `prop_assert*` / `prop_assume!` macros. No shrinking is performed on
//! failure — the failing input is printed instead.

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod test_runner {
    //! The per-test random source.

    /// Deterministic RNG driving case generation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction; each `proptest!` test derives a seed from
        /// its own name so cases are deterministic per test.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x5851F42D4C957F2D,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u128) -> u128 {
            (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::{Strategy, TestRng};
    use core::marker::PhantomData;

    /// Types with a canonical "uniform over the whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Bounded arbitrary floats (upstream generates specials too;
            // consumers here only need ordinary values).
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec<T>` of exactly `len` elements.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `len` independent draws from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    //! Sampling from explicit choices.

    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            assert!(!self.choices.is_empty(), "select from an empty list");
            self.choices[rng.below(self.choices.len() as u128) as usize].clone()
        }
    }

    /// Choose uniformly from `choices`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        Select { choices }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Namespaced strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Deterministic 64-bit hash of a test name (FNV-1a) used to seed each
/// property's RNG.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Assert inside a property (no shrinking; behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident @) => {};
    ($rng:ident @ $name:ident : $ty:ty) => {
        let $name: $ty =
            $crate::Strategy::gen_value(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    ($rng:ident @ $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_bind!($rng @ $name : $ty);
        $crate::__proptest_bind!($rng @ $($rest)*);
    };
    ($rng:ident @ $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::gen_value(&($strat), &mut $rng);
    };
    ($rng:ident @ $name:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_bind!($rng @ $name in $strat);
        $crate::__proptest_bind!($rng @ $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    // `#[test]` arrives as part of `$meta` (callers write it explicitly,
    // as with upstream proptest), so it is passed through, not added.
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::new($crate::seed_from_name(stringify!($name)));
            for __case in 0..__config.cases {
                // One closure per case so `prop_assume!` can skip via
                // `return`; `prop_assert*` panic like plain asserts.
                let mut __one_case = || {
                    $crate::__proptest_bind!(__rng @ $($params)*);
                    $body
                };
                __one_case();
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

/// Define property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(::core::default::Default::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even(limit: u64) -> impl Strategy<Value = u64> {
        (0..limit / 2).prop_map(|h| 2 * h)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn typed_args_and_ranges(a: u32, k in -50i64..50, v in prop::collection::vec(any::<u32>(), 4)) {
            prop_assert!(k >= -50 && k < 50);
            prop_assert_eq!(v.len(), 4);
            prop_assert!(u64::from(a) <= u64::from(u32::MAX));
        }

        #[test]
        fn mapped_and_selected(e in even(1000), s in prop::sample::select(vec![1usize, 3, 5])) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(s % 2 == 1);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
