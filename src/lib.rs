//! # Morphling — a TFHE accelerator reproduction
//!
//! Umbrella crate for the full reproduction of *Morphling: A
//! Throughput-Maximized TFHE-based Accelerator using Transform-domain
//! Reuse* (HPCA 2024). It re-exports the five member crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`math`] | `morphling-math` | torus & negacyclic polynomial arithmetic, gadget decomposition |
//! | [`transform`] | `morphling-transform` | FFT, negacyclic transform, merge-split FFT, pipelined-FFT model |
//! | [`tfhe`] | `morphling-tfhe` | the full TFHE scheme: ciphertexts, keys, programmable bootstrapping, gates |
//! | [`core`] | `morphling-core` | the accelerator: reuse analysis, ISA, schedulers, cycle simulator, cost model |
//! | [`apps`] | `morphling-apps` | evaluation workloads (XG-Boost, DeepCNN, VGG-9) + functional encrypted inference |
//!
//! See the repository `README.md` for a tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use morphling_repro::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let client = ClientKey::generate(ParamSet::Test.params(), &mut rng);
//! let server = ServerKey::builder().build(&client, &mut rng);
//! let a = client.encrypt_bool(true, &mut rng);
//! let b = client.encrypt_bool(true, &mut rng);
//! assert!(!client.decrypt_bool(&server.nand(&a, &b)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use morphling_apps as apps;
pub use morphling_core as core;
pub use morphling_math as math;
pub use morphling_tfhe as tfhe;
pub use morphling_transform as transform;

/// The types nearly every consumer touches, importable in one line:
/// `use morphling_repro::prelude::*;`.
///
/// Client/server key material, the unified [`Bootstrapper`] batch API
/// with its [`BatchRequest`] and every backend — sequential
/// [`ServerKey`], scoped-thread [`ParallelServerKey`], the persistent
/// [`BootstrapEngine`] with its health/fault-plan surface, and the
/// deadline-aware dynamic-batching [`Dispatcher`] — plus the multi-value
/// bootstrapping surface ([`BootstrapOptions`], [`MultiLutPlan`],
/// [`MultiTicket`]), the service-resilience layer ([`RetryPolicy`],
/// [`CircuitBreaker`], the degraded-mode [`FailoverBootstrapper`]), the
/// multi-tenant key layer ([`KeyStore`], [`KeyStoreBootstrapper`],
/// [`TenantId`] and the in-memory/directory backends), the unified
/// serving surface ([`ServingConfig`] with [`Dispatcher::from_config`],
/// and the simulator-in-the-loop autotuner's [`ServiceModel`] /
/// [`AutotuneRequest`] / [`SloTarget`]), LUTs and ciphertexts, the
/// paper's parameter sets, and the accelerator simulator. Deeper items
/// (schedulers, radix integers, app models, the wire-format functions in
/// `tfhe::serialize`) stay behind their module paths.
pub mod prelude {
    pub use morphling_core::faults::SimFaultPlan;
    pub use morphling_core::{sim::Simulator, ArchConfig, ReuseMode};
    pub use morphling_tfhe::{
        AutotuneReport, AutotuneRequest, BatchRequest, BootstrapEngine, BootstrapEngineBuilder,
        BootstrapOptions, BootstrapWorkspace, Bootstrapper, BreakerConfig, BreakerState,
        CircuitBreaker, ClientKey, DirBackend, Dispatcher, DispatcherStats, EngineHealth,
        EngineHealthHandle, EngineStats, FailoverBootstrapper, FaultPlan, KeyBackend, KeyStore,
        KeyStoreBootstrapper, KeyStoreStats, LoadSpec, Lut, LweCiphertext, MemoryBackend,
        MulBackend, MultiLutPlan, MultiTicket, ParallelServerKey, ParamSet, ResilienceJournal,
        RetryConfig, RetryPolicy, ServerKey, ServerKeyBuilder, ServiceModel, ServingConfig,
        SloTarget, TenantId, TfheError, TfheParams, Ticket,
    };
}
