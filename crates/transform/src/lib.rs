//! Domain transforms for the Morphling reproduction.
//!
//! The paper identifies domain transforms (FFT/IFFT) as up to 88% of all
//! bootstrapping operations and builds its whole architecture around
//! reducing them. This crate implements the functional transforms:
//!
//! - [`FftPlan`]: an iterative radix-2 complex FFT with precomputed
//!   twiddle tables (the software analogue of the multi-delay-commutator
//!   pipeline of §V-A.3).
//! - [`NegacyclicFft`]: the negacyclic ("twisted") transform of
//!   Klemsa that evaluates a real polynomial of size `N` at the odd
//!   `2N`-th roots of unity using a single `N/2`-point complex FFT.
//! - **Merge-split FFT** ([`NegacyclicFft::forward_pair`],
//!   [`NegacyclicFft::inverse_pair`]): transforming *two* real polynomials
//!   with one FFT invocation by packing one into the real and one into the
//!   imaginary component and splitting via conjugate symmetry — the paper's
//!   MS-FFT (§V-A.3).
//! - [`Spectrum`]: transform-domain data (what Morphling keeps in
//!   POLY-ACC-REG and the Private-A2 buffer), with the pointwise
//!   multiply-accumulate the VPEs perform.
//! - **Batched SoA transforms** ([`PolyBatch`], [`SpectrumBatch`],
//!   [`BatchScratch`] and the `*_batch_into` entry points on
//!   [`NegacyclicFft`]): planar, lane-innermost batches whose kernels run
//!   every lane in lockstep — the software twin of the paper's 2D-systolic
//!   VPE array (§V-A), and the layout SIMD/GPU backends want. Batch
//!   outputs are bit-identical to the one-polynomial calls at any lane
//!   count (per lane, the kernels replay the scalar f64 operation
//!   sequence exactly).
//! - [`pipeline::PipelinedFftModel`]: the cycle/occupancy model of the
//!   hardware FFT unit used by the simulator.
//!
//! # Example: negacyclic product via the transform domain
//!
//! ```
//! use morphling_math::{Polynomial, Torus32};
//! use morphling_transform::NegacyclicFft;
//!
//! let fft = NegacyclicFft::new(64);
//! let digits = Polynomial::from_fn(64, |j| (j as i64 % 7) - 3);
//! let t = Polynomial::from_fn(64, |j| Torus32::from_raw((j as u32) << 20));
//! let product = fft.mul_int_torus(&digits, &t);
//! let exact = morphling_math::negacyclic::mul_int_torus32(&digits, &t);
//! assert_eq!(product, exact);
//! ```
//!
//! # Example: the same products as one lockstep batch
//!
//! ```
//! use morphling_math::{Polynomial, Torus32};
//! use morphling_transform::{NegacyclicFft, PolyBatch};
//!
//! let fft = NegacyclicFft::new(64);
//! let digits: Vec<Polynomial<i64>> =
//!     (0..4).map(|l| Polynomial::from_fn(64, |j| ((j + l) as i64 % 7) - 3)).collect();
//! let ts: Vec<Polynomial<Torus32>> =
//!     (0..4).map(|l| Polynomial::from_fn(64, |j| Torus32::from_raw(((j * (l + 1)) as u32) << 20))).collect();
//! let prods = fft
//!     .mul_int_torus_batch(&PolyBatch::from_polys(&digits), &PolyBatch::from_polys(&ts))
//!     .to_polys();
//! for lane in 0..4 {
//!     assert_eq!(prods[lane], fft.mul_int_torus(&digits[lane], &ts[lane]));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod batch;
pub mod dft;
mod fft;
mod negacyclic;
pub mod ntt;
pub mod pipeline;
mod spectrum;

pub use batch::{BatchScratch, PolyBatch, SpectrumBatch};
pub use fft::FftPlan;
pub use negacyclic::NegacyclicFft;
pub use ntt::NegacyclicNtt;
pub use spectrum::Spectrum;

// The TFHE crate shares one transform engine per polynomial size across
// its whole bootstrap worker pool (process-global `Arc` cache), so these
// types being `Send + Sync` is a public contract, enforced at compile
// time here: a field change that introduces interior mutability or
// thread-affine state must fail loudly, not poison the pool.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FftPlan>();
    assert_send_sync::<NegacyclicFft>();
    assert_send_sync::<NegacyclicNtt>();
    assert_send_sync::<PolyBatch<i64>>();
    assert_send_sync::<SpectrumBatch>();
    assert_send_sync::<BatchScratch>();
};
