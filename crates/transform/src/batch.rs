//! Structure-of-arrays batches: the software twin of the VPE array.
//!
//! Morphling's throughput comes from streaming *batches* of polynomials
//! through a 2D-systolic array of vector processing elements in lockstep
//! (§V-A): every cycle, each VPE lane advances one polynomial by one
//! element. The software analogue is a planar ("SoA") layout where batch
//! lanes — not coefficients — are the innermost, contiguous dimension:
//!
//! - [`PolyBatch`] stores `lanes` size-`N` polynomials coefficient-major,
//!   `data[j * lanes + lane]`, so a kernel visiting coefficient `j` touches
//!   all lanes as one contiguous run the compiler can auto-vectorize.
//! - [`SpectrumBatch`] stores `lanes` negacyclic spectra as split-complex
//!   planes (`re[m * lanes + lane]` / `im[m * lanes + lane]`) — the layout
//!   every SIMD/GPU backend wants, and the one the batched FFT kernels of
//!   [`FftPlan`](crate::FftPlan) run over.
//! - [`BatchScratch`] is the reusable staging area (the software Coef
//!   buffer) the `*_batch_into` entry points thread through, so a warm
//!   caller performs no heap allocation.
//!
//! Batch lanes are fully independent: every batched kernel performs, per
//! lane, exactly the same sequence of f64 operations as its scalar
//! counterpart, so batched results are **bit-identical** to the scalar
//! path at any batch size (asserted by the identity test suite).

use morphling_math::{Complex64, Polynomial};

use crate::spectrum::Spectrum;

/// A batch of `lanes` equally-sized polynomials in planar (SoA) layout:
/// coefficient `j` of lane `l` lives at `data[j * lanes + l]`.
///
/// A batch always holds at least one lane — the constructors panic on an
/// empty batch, mirroring how the transform engines reject zero-size
/// polynomials.
#[derive(Clone, Debug, PartialEq)]
pub struct PolyBatch<T> {
    n: usize,
    lanes: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> PolyBatch<T> {
    /// An all-default batch of `lanes` size-`n` polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `n == 0`.
    pub fn zero(n: usize, lanes: usize) -> Self {
        assert!(lanes > 0, "a polynomial batch needs at least one lane");
        assert!(n > 0, "polynomial size must be nonzero");
        Self {
            n,
            lanes,
            data: vec![T::default(); n * lanes],
        }
    }

    /// Pack a slice of polynomials into a batch (one lane each).
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty or the sizes disagree.
    pub fn from_polys(polys: &[Polynomial<T>]) -> Self {
        assert!(
            !polys.is_empty(),
            "a polynomial batch needs at least one lane"
        );
        let n = polys[0].len();
        let mut batch = Self::zero(n, polys.len());
        for (lane, p) in polys.iter().enumerate() {
            batch.load_lane(lane, p);
        }
        batch
    }

    /// Polynomial size `N`.
    #[inline]
    pub fn poly_len(&self) -> usize {
        self.n
    }

    /// Number of lanes (polynomials) in the batch.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The flat planar storage, `data[j * lanes + lane]`.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat planar storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Coefficient `j` of lane `lane`.
    #[inline]
    pub fn coeff(&self, j: usize, lane: usize) -> T {
        self.data[j * self.lanes + lane]
    }

    /// Set coefficient `j` of lane `lane`.
    #[inline]
    pub fn set_coeff(&mut self, j: usize, lane: usize, v: T) {
        self.data[j * self.lanes + lane] = v;
    }

    /// Reshape in place, reusing the allocation where possible. Contents
    /// afterwards are unspecified (every kernel fully overwrites its
    /// output).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `n == 0`.
    pub fn reshape(&mut self, n: usize, lanes: usize) {
        assert!(lanes > 0, "a polynomial batch needs at least one lane");
        assert!(n > 0, "polynomial size must be nonzero");
        self.n = n;
        self.lanes = lanes;
        self.data.resize(n * lanes, T::default());
    }

    /// Scatter one polynomial into lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `p.len()` differs from the batch size or `lane` is out of
    /// range.
    pub fn load_lane(&mut self, lane: usize, p: &Polynomial<T>) {
        assert_eq!(p.len(), self.n, "polynomial size must match the batch");
        assert!(lane < self.lanes, "lane out of range");
        for (j, &c) in p.coeffs().iter().enumerate() {
            self.data[j * self.lanes + lane] = c;
        }
    }

    /// Gather lane `lane` into a caller-owned polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the batch size or `lane` is out
    /// of range.
    pub fn store_lane(&self, lane: usize, out: &mut Polynomial<T>) {
        assert_eq!(out.len(), self.n, "polynomial size must match the batch");
        assert!(lane < self.lanes, "lane out of range");
        for (j, c) in out.coeffs_mut().iter_mut().enumerate() {
            *c = self.data[j * self.lanes + lane];
        }
    }

    /// Unpack the whole batch into owned polynomials, lane order.
    pub fn to_polys(&self) -> Vec<Polynomial<T>> {
        (0..self.lanes)
            .map(|lane| {
                let mut p = Polynomial::zero(self.n);
                self.store_lane(lane, &mut p);
                p
            })
            .collect()
    }
}

/// A batch of `lanes` negacyclic spectra (each `N/2` evaluation points) in
/// split-complex planar layout: point `m` of lane `l` lives at
/// `re[m * lanes + l]` / `im[m * lanes + l]`.
///
/// This is the transform-domain half of [`PolyBatch`]: what the batched
/// VPE MAC loops and the batched FFT kernels operate on.
#[derive(Clone, Debug, PartialEq)]
pub struct SpectrumBatch {
    n: usize,
    lanes: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SpectrumBatch {
    /// A zero batch of `lanes` spectra for size-`n` polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `n` is not a power of two ≥ 2.
    pub fn zero(n: usize, lanes: usize) -> Self {
        assert!(lanes > 0, "a spectrum batch needs at least one lane");
        assert!(
            n.is_power_of_two() && n >= 2,
            "polynomial size must be a power of two ≥ 2"
        );
        let points = n / 2;
        Self {
            n,
            lanes,
            re: vec![0.0; points * lanes],
            im: vec![0.0; points * lanes],
        }
    }

    /// Pack a slice of spectra into a batch (one lane each).
    ///
    /// # Panics
    ///
    /// Panics if `spectra` is empty or the sizes disagree.
    pub fn from_spectra(spectra: &[Spectrum]) -> Self {
        assert!(
            !spectra.is_empty(),
            "a spectrum batch needs at least one lane"
        );
        let mut batch = Self::zero(spectra[0].poly_len(), spectra.len());
        for (lane, s) in spectra.iter().enumerate() {
            batch.load_lane(lane, s);
        }
        batch
    }

    /// The polynomial size `N` these spectra represent.
    #[inline]
    pub fn poly_len(&self) -> usize {
        self.n
    }

    /// Evaluation points per lane (`N/2`).
    #[inline]
    pub fn points(&self) -> usize {
        self.n / 2
    }

    /// Number of lanes (spectra) in the batch.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The real plane, `re[m * lanes + lane]`.
    #[inline]
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// The imaginary plane, `im[m * lanes + lane]`.
    #[inline]
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// Both planes, mutably — what the batched FFT kernels run over.
    #[inline]
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Evaluation point `m` of lane `lane`.
    #[inline]
    pub fn point(&self, m: usize, lane: usize) -> Complex64 {
        let i = m * self.lanes + lane;
        Complex64::new(self.re[i], self.im[i])
    }

    /// Set evaluation point `m` of lane `lane`.
    #[inline]
    pub fn set_point(&mut self, m: usize, lane: usize, v: Complex64) {
        let i = m * self.lanes + lane;
        self.re[i] = v.re;
        self.im[i] = v.im;
    }

    /// Reshape in place, reusing the allocations where possible. Contents
    /// afterwards are unspecified.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `n` is not a power of two ≥ 2.
    pub fn reshape(&mut self, n: usize, lanes: usize) {
        assert!(lanes > 0, "a spectrum batch needs at least one lane");
        assert!(
            n.is_power_of_two() && n >= 2,
            "polynomial size must be a power of two ≥ 2"
        );
        self.n = n;
        self.lanes = lanes;
        self.re.resize(n / 2 * lanes, 0.0);
        self.im.resize(n / 2 * lanes, 0.0);
    }

    /// Reset every point of every lane to zero — clearing the whole
    /// POLY-ACC register file at once.
    pub fn set_zero(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
    }

    /// Scatter one spectrum into lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes disagree or `lane` is out of range.
    pub fn load_lane(&mut self, lane: usize, s: &Spectrum) {
        assert_eq!(s.poly_len(), self.n, "spectrum size must match the batch");
        assert!(lane < self.lanes, "lane out of range");
        for (m, v) in s.values().iter().enumerate() {
            self.re[m * self.lanes + lane] = v.re;
            self.im[m * self.lanes + lane] = v.im;
        }
    }

    /// Gather lane `lane` into a caller-owned spectrum.
    ///
    /// # Panics
    ///
    /// Panics if the sizes disagree or `lane` is out of range.
    pub fn store_lane(&self, lane: usize, out: &mut Spectrum) {
        assert_eq!(out.poly_len(), self.n, "spectrum size must match the batch");
        assert!(lane < self.lanes, "lane out of range");
        for (m, v) in out.values_mut().iter_mut().enumerate() {
            *v = Complex64::new(
                self.re[m * self.lanes + lane],
                self.im[m * self.lanes + lane],
            );
        }
    }

    /// Unpack the whole batch into owned spectra, lane order.
    pub fn to_spectra(&self) -> Vec<Spectrum> {
        (0..self.lanes)
            .map(|lane| {
                let mut s = Spectrum::zero(self.n);
                self.store_lane(lane, &mut s);
                s
            })
            .collect()
    }

    /// Lane-lockstep fused multiply-accumulate: `self += a * b` pointwise,
    /// per lane — the whole VPE column advancing one batch in one sweep.
    /// Per lane this performs the exact operation sequence of
    /// [`Spectrum::mul_acc`], so results are bit-identical to the scalar
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn mul_acc(&mut self, a: &Self, b: &Self) {
        assert_eq!((self.n, self.lanes), (a.n, a.lanes), "batch shape mismatch");
        assert_eq!((self.n, self.lanes), (b.n, b.lanes), "batch shape mismatch");
        for i in 0..self.re.len() {
            let (ar, ai) = (a.re[i], a.im[i]);
            let (br, bi) = (b.re[i], b.im[i]);
            self.re[i] += ar * br - ai * bi;
            self.im[i] += ar * bi + ai * br;
        }
    }

    /// Pointwise product with another batch, lane by lane, in place.
    /// Per lane, the exact operation sequence of
    /// [`Spectrum::pointwise_mul`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn pointwise_mul_assign(&mut self, rhs: &Self) {
        assert_eq!(
            (self.n, self.lanes),
            (rhs.n, rhs.lanes),
            "batch shape mismatch"
        );
        for i in 0..self.re.len() {
            let (ar, ai) = (self.re[i], self.im[i]);
            let (br, bi) = (rhs.re[i], rhs.im[i]);
            self.re[i] = ar * br - ai * bi;
            self.im[i] = ar * bi + ai * br;
        }
    }

    /// Accumulate `self[lane] * rhs` into a scalar spectrum:
    /// `acc[m] += self.point(m, lane) * rhs[m]` — one VPE row's MAC against
    /// a shared (BSK) spectrum, reading straight from the planar batch.
    /// Identical operation sequence to [`Spectrum::mul_acc`] with the lane
    /// unpacked first, so bit-identical to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if the sizes disagree or `lane` is out of range.
    pub fn mul_acc_lane_into(&self, lane: usize, rhs: &Spectrum, acc: &mut Spectrum) {
        assert_eq!(rhs.poly_len(), self.n, "spectrum size must match the batch");
        assert_eq!(
            acc.poly_len(),
            self.n,
            "accumulator size must match the batch"
        );
        assert!(lane < self.lanes, "lane out of range");
        let lanes = self.lanes;
        for (m, (out, y)) in acc.values_mut().iter_mut().zip(rhs.values()).enumerate() {
            let x = Complex64::new(self.re[m * lanes + lane], self.im[m * lanes + lane]);
            *out += x * *y;
        }
    }
}

/// Reusable split-complex staging planes for the batched transform entry
/// points — the software Coef buffer. Grows to the largest request seen
/// and stays there; a warm scratch never reallocates.
#[derive(Clone, Debug, Default)]
pub struct BatchScratch {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl BatchScratch {
    /// An empty scratch (grows on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Both planes resized to `len` elements. Contents are unspecified —
    /// every kernel fully overwrites what it reads.
    #[inline]
    pub fn planes(&mut self, len: usize) -> (&mut [f64], &mut [f64]) {
        if self.re.len() < len {
            self.re.resize(len, 0.0);
            self.im.resize(len, 0.0);
        }
        (&mut self.re[..len], &mut self.im[..len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poly_batch_layout_is_coefficient_major() {
        let mut b = PolyBatch::<i64>::zero(4, 3);
        b.set_coeff(2, 1, 7);
        assert_eq!(b.data()[2 * 3 + 1], 7);
        assert_eq!(b.coeff(2, 1), 7);
    }

    #[test]
    fn poly_batch_roundtrips_through_lanes() {
        let polys: Vec<Polynomial<i64>> = (0..3)
            .map(|l| Polynomial::from_fn(8, |j| (l * 100 + j) as i64))
            .collect();
        let b = PolyBatch::from_polys(&polys);
        assert_eq!(b.lanes(), 3);
        assert_eq!(b.poly_len(), 8);
        assert_eq!(b.to_polys(), polys);
    }

    #[test]
    fn spectrum_batch_roundtrips_through_lanes() {
        let spectra: Vec<Spectrum> = (0..2)
            .map(|l| {
                Spectrum::from_values(
                    (0..4)
                        .map(|m| Complex64::new((l * 10 + m) as f64, -(m as f64)))
                        .collect(),
                )
            })
            .collect();
        let b = SpectrumBatch::from_spectra(&spectra);
        assert_eq!(b.lanes(), 2);
        assert_eq!(b.points(), 4);
        assert_eq!(b.to_spectra(), spectra);
    }

    #[test]
    fn batched_mul_acc_matches_scalar_mul_acc() {
        let mk = |seed: u64| {
            Spectrum::from_values(
                (0..8)
                    .map(|m| {
                        Complex64::new(
                            ((m as u64 * 37 + seed) % 101) as f64 - 50.0,
                            ((m as u64 * 53 + seed) % 97) as f64 - 48.0,
                        )
                    })
                    .collect(),
            )
        };
        let a = [mk(1), mk(2), mk(3)];
        let b = [mk(4), mk(5), mk(6)];
        let ab = SpectrumBatch::from_spectra(&a);
        let bb = SpectrumBatch::from_spectra(&b);
        let mut acc = SpectrumBatch::zero(16, 3);
        acc.mul_acc(&ab, &bb);
        acc.mul_acc(&ab, &bb);
        for lane in 0..3 {
            let mut want = Spectrum::zero(16);
            want.mul_acc(&a[lane], &b[lane]);
            want.mul_acc(&a[lane], &b[lane]);
            let mut got = Spectrum::zero(16);
            acc.store_lane(lane, &mut got);
            assert_eq!(got, want, "lane {lane}");
        }
    }

    #[test]
    fn mul_acc_lane_into_matches_scalar() {
        let xs: Vec<Spectrum> = (0..3)
            .map(|l| {
                Spectrum::from_values(
                    (0..4)
                        .map(|m| Complex64::new((l + m) as f64 + 0.25, (m as f64) - 1.5))
                        .collect(),
                )
            })
            .collect();
        let rhs = Spectrum::from_values(
            (0..4)
                .map(|m| Complex64::new(1.0 - m as f64, 2.0 * m as f64))
                .collect(),
        );
        let batch = SpectrumBatch::from_spectra(&xs);
        for (lane, x) in xs.iter().enumerate() {
            let mut got = Spectrum::zero(8);
            batch.mul_acc_lane_into(lane, &rhs, &mut got);
            let mut want = Spectrum::zero(8);
            want.mul_acc(x, &rhs);
            assert_eq!(got, want, "lane {lane}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_poly_batch_is_rejected() {
        let _ = PolyBatch::<i64>::zero(8, 0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_poly_slice_is_rejected() {
        let _ = PolyBatch::<i64>::from_polys(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_spectrum_batch_is_rejected() {
        let _ = SpectrumBatch::zero(8, 0);
    }

    #[test]
    #[should_panic(expected = "size must match")]
    fn mismatched_lane_load_is_rejected() {
        let mut b = PolyBatch::<i64>::zero(8, 2);
        b.load_lane(0, &Polynomial::zero(16));
    }

    #[test]
    fn scratch_planes_grow_and_stick() {
        let mut s = BatchScratch::new();
        {
            let (re, im) = s.planes(16);
            assert_eq!(re.len(), 16);
            assert_eq!(im.len(), 16);
        }
        let (re, _) = s.planes(8);
        assert_eq!(re.len(), 8);
    }
}
