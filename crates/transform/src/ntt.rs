//! Number-theoretic transform backend — the "or NTT" of the paper's §III
//! ("transform domain methods such as FFT- or NTT-based convolution").
//!
//! Unlike the floating-point FFT, the NTT is *exact by construction*: the
//! negacyclic product is computed modulo two 30-bit NTT-friendly primes
//! and reconstructed by the CRT, which covers the full coefficient range
//! of TFHE external products (`|c| ≤ N·(β/2)·2³² < 2⁵²` at the largest
//! parameters). It is slower than the FFT on CPUs (see the
//! `poly_mul_ablation` bench) but serves as a second independent oracle
//! and models NTT-based accelerator datapaths.

use morphling_math::{Polynomial, Torus32};

/// First CRT prime: `119·2²³ + 1` (supports transforms up to 2²³ points).
pub const PRIME_1: u64 = 998_244_353;
/// Second CRT prime: `479·2²¹ + 1`.
pub const PRIME_2: u64 = 1_004_535_809;

fn mod_pow(mut base: u64, mut exp: u64, p: u64) -> u64 {
    let mut acc = 1u64;
    base %= p;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % p;
        }
        base = base * base % p;
        exp >>= 1;
    }
    acc
}

fn mod_inv(x: u64, p: u64) -> u64 {
    mod_pow(x, p - 2, p)
}

/// A primitive root of the multiplicative group for our two primes.
fn generator(p: u64) -> u64 {
    // 3 is a primitive root of both 998244353 and 1004535809.
    debug_assert!(p == PRIME_1 || p == PRIME_2);
    3
}

/// One prime's negacyclic NTT plan: twiddles for the cyclic NTT plus the
/// ψ-powers implementing the negacyclic twist (`ψ² = ω`, `ψ^N = −1`).
#[derive(Clone, Debug)]
struct PrimePlan {
    p: u64,
    n: usize,
    /// ψ^j for j < n.
    psi: Vec<u64>,
    /// ψ^(−j) · n^(−1) for j < n (inverse twist with scaling folded in).
    ipsi_scaled: Vec<u64>,
    /// Per-stage forward twiddles (bit-reversal-free iterative CT layout).
    fwd_tw: Vec<Vec<u64>>,
    /// Per-stage inverse twiddles.
    inv_tw: Vec<Vec<u64>>,
    bit_rev: Vec<u32>,
}

impl PrimePlan {
    fn new(p: u64, n: usize) -> Self {
        assert!(n.is_power_of_two(), "NTT size must be a power of two");
        assert_eq!(
            (p - 1) % (2 * n as u64),
            0,
            "prime does not support 2N-th roots"
        );
        // ψ = g^((p−1)/2N) is a primitive 2N-th root of unity mod p.
        let psi_root = mod_pow(generator(p), (p - 1) / (2 * n as u64), p);
        let omega = psi_root * psi_root % p;
        let inv_omega = mod_inv(omega, p);
        let inv_psi = mod_inv(psi_root, p);
        let n_inv = mod_inv(n as u64, p);

        let mut psi = Vec::with_capacity(n);
        let mut ipsi_scaled = Vec::with_capacity(n);
        let mut a = 1u64;
        let mut b = n_inv;
        for _ in 0..n {
            psi.push(a);
            ipsi_scaled.push(b);
            a = a * psi_root % p;
            b = b * inv_psi % p;
        }

        let stages = n.trailing_zeros() as usize;
        let mut fwd_tw = Vec::with_capacity(stages);
        let mut inv_tw = Vec::with_capacity(stages);
        for s in 0..stages {
            let half = 1usize << s;
            let step_f = mod_pow(omega, (n / (2 * half)) as u64, p);
            let step_i = mod_pow(inv_omega, (n / (2 * half)) as u64, p);
            let mut row_f = Vec::with_capacity(half);
            let mut row_i = Vec::with_capacity(half);
            let (mut wf, mut wi) = (1u64, 1u64);
            for _ in 0..half {
                row_f.push(wf);
                row_i.push(wi);
                wf = wf * step_f % p;
                wi = wi * step_i % p;
            }
            fwd_tw.push(row_f);
            inv_tw.push(row_i);
        }
        let shift = (usize::BITS - n.trailing_zeros()) % usize::BITS;
        let bit_rev =
            (0..n as u32).map(|i| if n == 1 { 0 } else { (i as usize).reverse_bits() >> shift } as u32).collect();
        Self {
            p,
            n,
            psi,
            ipsi_scaled,
            fwd_tw,
            inv_tw,
            bit_rev,
        }
    }

    fn permute(&self, data: &mut [u64]) {
        for i in 0..self.n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [u64], inverse: bool) {
        let p = self.p;
        let tables = if inverse { &self.inv_tw } else { &self.fwd_tw };
        for (s, tw) in tables.iter().enumerate() {
            let half = 1usize << s;
            let block = half * 2;
            for start in (0..self.n).step_by(block) {
                for k in 0..half {
                    let u = data[start + k];
                    let v = data[start + k + half] * tw[k] % p;
                    data[start + k] = (u + v) % p;
                    data[start + k + half] = (u + p - v) % p;
                }
            }
        }
    }

    /// Forward negacyclic transform: twist by ψ^j, then cyclic NTT.
    fn forward(&self, coeffs: &[u64]) -> Vec<u64> {
        let mut data: Vec<u64> = coeffs
            .iter()
            .zip(&self.psi)
            .map(|(&c, &t)| c % self.p * t % self.p)
            .collect();
        self.permute(&mut data);
        self.butterflies(&mut data, false);
        data
    }

    /// Inverse: cyclic INTT, then untwist (with 1/n folded in).
    fn inverse(&self, mut data: Vec<u64>) -> Vec<u64> {
        self.permute(&mut data);
        self.butterflies(&mut data, true);
        for (d, &t) in data.iter_mut().zip(&self.ipsi_scaled) {
            *d = *d * t % self.p;
        }
        data
    }

    fn pointwise(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        a.iter().zip(b).map(|(&x, &y)| x * y % self.p).collect()
    }
}

/// Exact negacyclic multiplier via a two-prime CRT NTT.
#[derive(Clone, Debug)]
pub struct NegacyclicNtt {
    plan1: PrimePlan,
    plan2: PrimePlan,
}

impl NegacyclicNtt {
    /// Build an engine for size-`n` polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or exceeds the primes' root
    /// support (2²⁰).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 4,
            "size must be a power of two ≥ 4"
        );
        assert!(n <= 1 << 20, "size exceeds the primes' 2N-th root support");
        Self {
            plan1: PrimePlan::new(PRIME_1, n),
            plan2: PrimePlan::new(PRIME_2, n),
        }
    }

    /// Polynomial size `N`.
    pub fn poly_len(&self) -> usize {
        self.plan1.n
    }

    /// Exact negacyclic product `digits(X) · t(X) mod (X^N + 1)` over the
    /// 32-bit torus — bit-identical to the schoolbook oracle, computed in
    /// O(N log N).
    pub fn mul_int_torus(
        &self,
        digits: &Polynomial<i64>,
        t: &Polynomial<Torus32>,
    ) -> Polynomial<Torus32> {
        let n = self.poly_len();
        assert_eq!(digits.len(), n, "digit polynomial size mismatch");
        assert_eq!(t.len(), n, "torus polynomial size mismatch");
        let m = (PRIME_1 as u128) * (PRIME_2 as u128);

        // Centered (signed) representatives keep the true product magnitude
        // below N·(β/2)·2³¹ ≤ 2⁵⁸ < M/2 for every supported parameter set,
        // so the CRT reconstruction is always exact.
        let to_res = |p: u64| -> (Vec<u64>, Vec<u64>) {
            let d: Vec<u64> = digits
                .iter()
                .map(|&v| (v.rem_euclid(p as i64)) as u64)
                .collect();
            let tt: Vec<u64> = t
                .iter()
                .map(|&c| (i64::from(c.to_signed())).rem_euclid(p as i64) as u64)
                .collect();
            (d, tt)
        };

        let (d1, t1) = to_res(PRIME_1);
        let (d2, t2) = to_res(PRIME_2);
        let r1 = self.plan1.inverse(
            self.plan1
                .pointwise(&self.plan1.forward(&d1), &self.plan1.forward(&t1)),
        );
        let r2 = self.plan2.inverse(
            self.plan2
                .pointwise(&self.plan2.forward(&d2), &self.plan2.forward(&t2)),
        );

        // CRT: c ≡ r1 (mod p1), c ≡ r2 (mod p2); center into (−M/2, M/2),
        // then reduce mod 2³².
        let p1_inv_mod_p2 = mod_inv(PRIME_1 % PRIME_2, PRIME_2);
        let coeffs = r1
            .iter()
            .zip(&r2)
            .map(|(&a, &b)| {
                let diff = (b + PRIME_2 - a % PRIME_2) % PRIME_2;
                let k = diff * p1_inv_mod_p2 % PRIME_2;
                let c = a as u128 + (k as u128) * (PRIME_1 as u128); // in [0, M)
                let signed: i128 = if c >= m / 2 {
                    c as i128 - m as i128
                } else {
                    c as i128
                };
                Torus32::from_raw(signed as u32)
            })
            .collect();
        Polynomial::from_coeffs(coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_math::negacyclic::mul_int_torus32;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn primes_support_the_required_roots() {
        for n in [512u64, 1024, 2048, 4096] {
            assert_eq!((PRIME_1 - 1) % (2 * n), 0);
            assert_eq!((PRIME_2 - 1) % (2 * n), 0);
        }
    }

    #[test]
    fn mod_pow_and_inv() {
        assert_eq!(mod_pow(3, PRIME_1 - 1, PRIME_1), 1);
        let x = 123_456_789u64;
        assert_eq!(x * mod_inv(x, PRIME_2) % PRIME_2, 1);
    }

    #[test]
    fn ntt_matches_exact_oracle_small() {
        let ntt = NegacyclicNtt::new(16);
        let mut mono = Polynomial::<i64>::zero(16);
        mono[15] = 1;
        let mut t = Polynomial::<Torus32>::zero(16);
        t[1] = Torus32::from_raw(12345);
        // X^15 · X = X^16 = −1.
        let prod = ntt.mul_int_torus(&mono, &t);
        assert_eq!(prod, mul_int_torus32(&mono, &t));
        assert_eq!(prod[0], Torus32::from_raw(0u32.wrapping_sub(12345)));
    }

    #[test]
    fn ntt_is_bit_exact_at_paper_sizes() {
        let mut rng = StdRng::seed_from_u64(400);
        for n in [512usize, 1024, 2048, 4096] {
            let ntt = NegacyclicNtt::new(n);
            // Worst-case digit range of the paper's largest base (2^16/2).
            let digits = Polynomial::from_fn(n, |_| rng.gen_range(-32768i64..32768));
            let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
            assert_eq!(
                ntt.mul_int_torus(&digits, &t),
                mul_int_torus32(&digits, &t),
                "n={n}"
            );
        }
    }

    #[test]
    fn ntt_and_fft_agree() {
        let mut rng = StdRng::seed_from_u64(401);
        let n = 1024;
        let ntt = NegacyclicNtt::new(n);
        let fft = crate::NegacyclicFft::new(n);
        let digits = Polynomial::from_fn(n, |_| rng.gen_range(-64i64..64));
        let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
        assert_eq!(
            ntt.mul_int_torus(&digits, &t),
            fft.mul_int_torus(&digits, &t)
        );
    }
}
