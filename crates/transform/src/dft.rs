//! Naive O(n²) reference transforms, used as oracles in tests and in the
//! transform-accuracy ablation bench.

use morphling_math::Complex64;

/// Naive forward DFT: `X_k = Σ_j x_j e^(-2πi jk/n)`.
pub fn naive_dft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let angle = -std::f64::consts::TAU * (j as f64) * (k as f64) / n as f64;
                acc += x * Complex64::from_polar_unit(angle);
            }
            acc
        })
        .collect()
}

/// Naive evaluation of a real polynomial at the odd 2N-th roots of unity
/// `e^(-iπ(4m+1)/N)` for `m = 0..N/2` — the exact point set of the
/// negacyclic transform ([`crate::NegacyclicFft`]). O(n²) oracle.
pub fn naive_negacyclic_eval(coeffs: &[f64]) -> Vec<Complex64> {
    let n = coeffs.len();
    let half = n / 2;
    (0..half)
        .map(|m| {
            let mut acc = Complex64::ZERO;
            for (j, &c) in coeffs.iter().enumerate() {
                let angle = -std::f64::consts::PI * ((4 * m + 1) as f64) * (j as f64) / n as f64;
                acc += Complex64::from_polar_unit(angle).scale(c);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_constant_is_impulse() {
        let input = vec![Complex64::ONE; 8];
        let out = naive_dft(&input);
        assert!((out[0] - Complex64::new(8.0, 0.0)).abs() < 1e-9);
        for v in &out[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn negacyclic_eval_of_x_is_the_roots() {
        // p(X) = X evaluates to the sample points themselves.
        let mut coeffs = vec![0.0; 8];
        coeffs[1] = 1.0;
        let out = naive_negacyclic_eval(&coeffs);
        for (m, v) in out.iter().enumerate() {
            let angle = -std::f64::consts::PI * ((4 * m + 1) as f64) / 8.0;
            assert!((*v - Complex64::from_polar_unit(angle)).abs() < 1e-9);
        }
    }
}
