//! Transform-domain data: the values Morphling keeps inside the VPE
//! POLY-ACC registers and the Private-A2 buffer.

use std::ops::{Add, AddAssign};

use morphling_math::Complex64;

/// The negacyclic spectrum of a size-`N` real polynomial: its `N/2`
/// evaluations at the odd `2N`-th roots of unity `e^(-iπ(4m+1)/N)`.
///
/// Spectra form a module: they can be added (IFFT linearity — the heart of
/// *output* transform-domain reuse, §IV-B) and multiplied pointwise
/// (polynomial multiplication — what a VPE lane computes).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Spectrum {
    values: Vec<Complex64>,
}

impl Spectrum {
    /// A zero spectrum for polynomials of size `n` (stores `n/2` points).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two of at least 2.
    pub fn zero(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "polynomial size must be a power of two ≥ 2"
        );
        Self {
            values: vec![Complex64::ZERO; n / 2],
        }
    }

    /// Wrap raw spectrum values (must be `N/2` points of a size-`N`
    /// polynomial).
    pub fn from_values(values: Vec<Complex64>) -> Self {
        assert!(
            values.len().is_power_of_two(),
            "spectrum length must be a power of two"
        );
        Self { values }
    }

    /// The underlying evaluation points.
    #[inline]
    pub fn values(&self) -> &[Complex64] {
        &self.values
    }

    /// Mutable access to the evaluation points.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [Complex64] {
        &mut self.values
    }

    /// The polynomial size `N` this spectrum represents (`2 ×` points).
    #[inline]
    pub fn poly_len(&self) -> usize {
        self.values.len() * 2
    }

    /// Reset every point to zero in place — how POLY-ACC-REG is cleared
    /// between accumulations, without reallocating the register file.
    pub fn set_zero(&mut self) {
        self.values.fill(Complex64::ZERO);
    }

    /// Pointwise product — polynomial multiplication in the transform
    /// domain (one VPE pass over the `N/2` elements).
    #[must_use]
    pub fn pointwise_mul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.values.len(),
            rhs.values.len(),
            "spectrum size mismatch"
        );
        Self {
            values: self
                .values
                .iter()
                .zip(&rhs.values)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Fused multiply-accumulate: `self += a * b`. This is exactly the VPE
    /// inner loop with POLY-ACC-REG as `self` (§V-A.2).
    pub fn mul_acc(&mut self, a: &Self, b: &Self) {
        assert_eq!(self.values.len(), a.values.len(), "spectrum size mismatch");
        assert_eq!(self.values.len(), b.values.len(), "spectrum size mismatch");
        for ((acc, &x), &y) in self.values.iter_mut().zip(&a.values).zip(&b.values) {
            *acc += x * y;
        }
    }

    /// Largest absolute component over all points — used by the precision
    /// tests that bound f64 round-off against the 53-bit mantissa budget.
    pub fn max_abs(&self) -> f64 {
        self.values
            .iter()
            .map(|z| z.re.abs().max(z.im.abs()))
            .fold(0.0, f64::max)
    }
}

impl Add for &Spectrum {
    type Output = Spectrum;
    fn add(self, rhs: &Spectrum) -> Spectrum {
        assert_eq!(
            self.values.len(),
            rhs.values.len(),
            "spectrum size mismatch"
        );
        Spectrum {
            values: self
                .values
                .iter()
                .zip(&rhs.values)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl AddAssign<&Spectrum> for Spectrum {
    fn add_assign(&mut self, rhs: &Spectrum) {
        assert_eq!(
            self.values.len(),
            rhs.values.len(),
            "spectrum size mismatch"
        );
        for (a, &b) in self.values.iter_mut().zip(&rhs.values) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_half_the_points() {
        assert_eq!(Spectrum::zero(64).values().len(), 32);
        assert_eq!(Spectrum::zero(64).poly_len(), 64);
    }

    #[test]
    fn mul_acc_matches_mul_then_add() {
        let a = Spectrum::from_values(vec![Complex64::new(1.0, 2.0), Complex64::new(-1.0, 0.5)]);
        let b = Spectrum::from_values(vec![Complex64::new(0.0, 1.0), Complex64::new(3.0, -2.0)]);
        let mut acc = Spectrum::zero(4);
        acc.mul_acc(&a, &b);
        assert_eq!(acc, a.pointwise_mul(&b));
        acc.mul_acc(&a, &b);
        let doubled = &a.pointwise_mul(&b) + &a.pointwise_mul(&b);
        assert_eq!(acc, doubled);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_sizes_panic() {
        let _ = Spectrum::zero(8).pointwise_mul(&Spectrum::zero(16));
    }
}
