//! Iterative radix-2 complex FFT with precomputed twiddle tables.
//!
//! This is the software analogue of the multi-delay-commutator pipelined
//! FFT of §V-A.3: all `log2 n` butterfly stages with a fixed twiddle ROM
//! (the hardware's Twiddle-Buffer). Timing/occupancy of the hardware unit
//! is modeled separately in [`crate::pipeline`].

use morphling_math::Complex64;

/// A reusable FFT plan for one transform size.
///
/// Construction precomputes the bit-reversal permutation and the per-stage
/// twiddle factors; [`FftPlan::forward`] and [`FftPlan::inverse`] then run
/// allocation-free on caller buffers.
///
/// Conventions: `forward` computes `X_k = Σ_j x_j e^(-2πi jk/n)` (no
/// scaling); `inverse` computes `x_j = (1/n) Σ_k X_k e^(+2πi jk/n)`.
///
/// # Example
///
/// ```
/// use morphling_math::Complex64;
/// use morphling_transform::FftPlan;
///
/// let plan = FftPlan::new(8);
/// let mut data: Vec<Complex64> = (0..8).map(|j| Complex64::new(j as f64, 0.0)).collect();
/// let original = data.clone();
/// plan.forward(&mut data);
/// plan.inverse(&mut data);
/// for (a, b) in data.iter().zip(&original) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    // twiddles[s] holds the factors for stage s (half-block size 2^s):
    // e^(-2πi k / 2^(s+1)) for k in 0..2^s.
    twiddles: Vec<Vec<Complex64>>,
    bit_rev: Vec<u32>,
}

impl FftPlan {
    /// Create a plan for transforms of `n` points.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT size must be a positive power of two, got {n}"
        );
        let stages = n.trailing_zeros() as usize;
        let mut twiddles = Vec::with_capacity(stages);
        for s in 0..stages {
            let half = 1usize << s;
            let block = half * 2;
            let step = -std::f64::consts::TAU / block as f64;
            twiddles.push(
                (0..half)
                    .map(|k| Complex64::from_polar_unit(step * k as f64))
                    .collect(),
            );
        }
        let shift = (usize::BITS - n.trailing_zeros()) % usize::BITS;
        let bit_rev = (0..n as u32)
            .map(|i| if n == 1 { 0 } else { (i as usize).reverse_bits() >> shift } as u32)
            .collect();
        Self {
            n,
            twiddles,
            bit_rev,
        }
    }

    /// Transform size.
    ///
    /// No `is_empty` companion: the constructor rejects `n == 0`, so a
    /// plan is never empty and the method could only ever lie.
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.n
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan size.
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "buffer size does not match FFT plan");
        self.permute(data);
        self.butterflies(data, false);
    }

    /// In-place inverse FFT (including the `1/n` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan size.
    pub fn inverse(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "buffer size does not match FFT plan");
        self.permute(data);
        self.butterflies(data, true);
        let scale = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// Batched in-place forward FFT over split-complex planes in planar
    /// layout: point `p` of lane `l` lives at `re[p * lanes + l]` /
    /// `im[p * lanes + l]`. All lanes advance through the butterfly
    /// network in lockstep — the software analogue of the VPE array
    /// streaming a batch through one pipelined FFT unit — and each lane
    /// undergoes exactly the operation sequence of [`Self::forward`], so
    /// per-lane results are **bit-identical** to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or either plane's length differs from
    /// `n * lanes`.
    pub fn forward_batch(&self, re: &mut [f64], im: &mut [f64], lanes: usize) {
        self.check_batch(re, im, lanes);
        self.permute_batch(re, im, lanes);
        self.butterflies_batch(re, im, lanes, false);
    }

    /// Batched in-place inverse FFT (including the `1/n` scaling) over
    /// split-complex planes; see [`Self::forward_batch`] for the layout
    /// and the per-lane bit-identity contract with [`Self::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or either plane's length differs from
    /// `n * lanes`.
    pub fn inverse_batch(&self, re: &mut [f64], im: &mut [f64], lanes: usize) {
        self.check_batch(re, im, lanes);
        self.permute_batch(re, im, lanes);
        self.butterflies_batch(re, im, lanes, true);
        let scale = 1.0 / self.n as f64;
        for v in re.iter_mut() {
            *v *= scale;
        }
        for v in im.iter_mut() {
            *v *= scale;
        }
    }

    fn check_batch(&self, re: &[f64], im: &[f64], lanes: usize) {
        assert!(lanes > 0, "batched FFT needs at least one lane");
        assert_eq!(
            re.len(),
            self.n * lanes,
            "real plane size does not match FFT plan × lanes"
        );
        assert_eq!(
            im.len(),
            self.n * lanes,
            "imaginary plane size does not match FFT plan × lanes"
        );
    }

    fn permute(&self, data: &mut [Complex64]) {
        for i in 0..self.n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn permute_batch(&self, re: &mut [f64], im: &mut [f64], lanes: usize) {
        for i in 0..self.n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                // Swap whole lane rows i and j (i < j, so split is clean).
                let (lo_re, hi_re) = re.split_at_mut(j * lanes);
                lo_re[i * lanes..i * lanes + lanes].swap_with_slice(&mut hi_re[..lanes]);
                let (lo_im, hi_im) = im.split_at_mut(j * lanes);
                lo_im[i * lanes..i * lanes + lanes].swap_with_slice(&mut hi_im[..lanes]);
            }
        }
    }

    fn butterflies_batch(&self, re: &mut [f64], im: &mut [f64], lanes: usize, inverse: bool) {
        for (s, tw) in self.twiddles.iter().enumerate() {
            let half = 1usize << s;
            let block = half * 2;
            let row = half * lanes;
            // One split per block (not per butterfly): the upper/lower
            // halves of a block are contiguous lane rows, so the k-loop
            // walks four `chunks_exact_mut` streams with no bounds checks.
            for (blk_re, blk_im) in re
                .chunks_exact_mut(block * lanes)
                .zip(im.chunks_exact_mut(block * lanes))
            {
                let (a_re, b_re) = blk_re.split_at_mut(row);
                let (a_im, b_im) = blk_im.split_at_mut(row);
                let rows = a_re
                    .chunks_exact_mut(lanes)
                    .zip(b_re.chunks_exact_mut(lanes))
                    .zip(
                        a_im.chunks_exact_mut(lanes)
                            .zip(b_im.chunks_exact_mut(lanes)),
                    );
                for (k, ((a_re, b_re), (a_im, b_im))) in rows.enumerate() {
                    let w = if inverse { tw[k].conj() } else { tw[k] };
                    // Per lane: b' = b·w; a ← a + b'; b ← a − b' — the
                    // exact f64 sequence of the scalar butterfly.
                    for l in 0..lanes {
                        let br = b_re[l];
                        let bm = b_im[l];
                        let tre = br * w.re - bm * w.im;
                        let tim = br * w.im + bm * w.re;
                        let ar = a_re[l];
                        let am = a_im[l];
                        a_re[l] = ar + tre;
                        a_im[l] = am + tim;
                        b_re[l] = ar - tre;
                        b_im[l] = am - tim;
                    }
                }
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex64], inverse: bool) {
        for (s, tw) in self.twiddles.iter().enumerate() {
            let half = 1usize << s;
            let block = half * 2;
            for start in (0..self.n).step_by(block) {
                for k in 0..half {
                    let w = if inverse { tw[k].conj() } else { tw[k] };
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::naive_dft;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "mismatch at {i}: {x:?} vs {y:?}");
        }
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new(j as f64 + 1.0, (j as f64) * 0.5 - 1.0))
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let input = ramp(n);
            let mut fft_out = input.clone();
            FftPlan::new(n).forward(&mut fft_out);
            let dft_out = naive_dft(&input);
            assert_close(&fft_out, &dft_out, 1e-7 * n as f64);
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 8, 128, 1024] {
            let input = ramp(n);
            let mut data = input.clone();
            let plan = FftPlan::new(n);
            plan.forward(&mut data);
            plan.inverse(&mut data);
            assert_close(&data, &input, 1e-8 * n as f64);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 32;
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        FftPlan::new(n).forward(&mut data);
        for v in &data {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n);
        let a = ramp(n);
        let b: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new((j * j % 17) as f64, -(j as f64)))
            .collect();
        let mut sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        plan.forward(&mut sum);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let expect: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&sum, &expect, 1e-8);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let input = ramp(n);
        let mut freq = input.clone();
        FftPlan::new(n).forward(&mut freq);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    /// Split a lane out of planar storage back into complex form.
    fn gather_lane(re: &[f64], im: &[f64], lanes: usize, lane: usize, n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|p| Complex64::new(re[p * lanes + lane], im[p * lanes + lane]))
            .collect()
    }

    #[test]
    fn batched_fft_is_bit_identical_to_scalar_per_lane() {
        for n in [2usize, 8, 64, 256] {
            let plan = FftPlan::new(n);
            for lanes in [1usize, 2, 3, 5, 8] {
                // Distinct data per lane, planar layout.
                let mut re = vec![0.0f64; n * lanes];
                let mut im = vec![0.0f64; n * lanes];
                let mut scalars: Vec<Vec<Complex64>> = Vec::new();
                for lane in 0..lanes {
                    let data: Vec<Complex64> = (0..n)
                        .map(|j| {
                            Complex64::new(
                                ((j * 31 + lane * 7) % 97) as f64 - 48.0,
                                ((j * 17 + lane * 13) % 89) as f64 * 0.5 - 20.0,
                            )
                        })
                        .collect();
                    for (j, v) in data.iter().enumerate() {
                        re[j * lanes + lane] = v.re;
                        im[j * lanes + lane] = v.im;
                    }
                    scalars.push(data);
                }
                let mut fwd_re = re.clone();
                let mut fwd_im = im.clone();
                plan.forward_batch(&mut fwd_re, &mut fwd_im, lanes);
                plan.inverse_batch(&mut re, &mut im, lanes);
                for (lane, data) in scalars.iter().enumerate() {
                    let mut fwd = data.clone();
                    plan.forward(&mut fwd);
                    assert_eq!(
                        gather_lane(&fwd_re, &fwd_im, lanes, lane, n),
                        fwd,
                        "forward n={n} lanes={lanes} lane={lane}"
                    );
                    let mut inv = data.clone();
                    plan.inverse(&mut inv);
                    assert_eq!(
                        gather_lane(&re, &im, lanes, lane, n),
                        inv,
                        "inverse n={n} lanes={lanes} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn batched_fft_rejects_zero_lanes() {
        let plan = FftPlan::new(8);
        plan.forward_batch(&mut [], &mut [], 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn batched_fft_rejects_wrong_plane_size() {
        let plan = FftPlan::new(8);
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        plan.forward_batch(&mut re, &mut im, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_size() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_wrong_buffer() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex64::ZERO; 4];
        plan.forward(&mut data);
    }
}
