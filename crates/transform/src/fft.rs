//! Iterative radix-2 complex FFT with precomputed twiddle tables.
//!
//! This is the software analogue of the multi-delay-commutator pipelined
//! FFT of §V-A.3: all `log2 n` butterfly stages with a fixed twiddle ROM
//! (the hardware's Twiddle-Buffer). Timing/occupancy of the hardware unit
//! is modeled separately in [`crate::pipeline`].

use morphling_math::Complex64;

/// A reusable FFT plan for one transform size.
///
/// Construction precomputes the bit-reversal permutation and the per-stage
/// twiddle factors; [`FftPlan::forward`] and [`FftPlan::inverse`] then run
/// allocation-free on caller buffers.
///
/// Conventions: `forward` computes `X_k = Σ_j x_j e^(-2πi jk/n)` (no
/// scaling); `inverse` computes `x_j = (1/n) Σ_k X_k e^(+2πi jk/n)`.
///
/// # Example
///
/// ```
/// use morphling_math::Complex64;
/// use morphling_transform::FftPlan;
///
/// let plan = FftPlan::new(8);
/// let mut data: Vec<Complex64> = (0..8).map(|j| Complex64::new(j as f64, 0.0)).collect();
/// let original = data.clone();
/// plan.forward(&mut data);
/// plan.inverse(&mut data);
/// for (a, b) in data.iter().zip(&original) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    // twiddles[s] holds the factors for stage s (half-block size 2^s):
    // e^(-2πi k / 2^(s+1)) for k in 0..2^s.
    twiddles: Vec<Vec<Complex64>>,
    bit_rev: Vec<u32>,
}

impl FftPlan {
    /// Create a plan for transforms of `n` points.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT size must be a positive power of two, got {n}"
        );
        let stages = n.trailing_zeros() as usize;
        let mut twiddles = Vec::with_capacity(stages);
        for s in 0..stages {
            let half = 1usize << s;
            let block = half * 2;
            let step = -std::f64::consts::TAU / block as f64;
            twiddles.push(
                (0..half)
                    .map(|k| Complex64::from_polar_unit(step * k as f64))
                    .collect(),
            );
        }
        let shift = (usize::BITS - n.trailing_zeros()) % usize::BITS;
        let bit_rev = (0..n as u32)
            .map(|i| if n == 1 { 0 } else { (i as usize).reverse_bits() >> shift } as u32)
            .collect();
        Self {
            n,
            twiddles,
            bit_rev,
        }
    }

    /// Transform size.
    ///
    /// No `is_empty` companion: the constructor rejects `n == 0`, so a
    /// plan is never empty and the method could only ever lie.
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.n
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan size.
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "buffer size does not match FFT plan");
        self.permute(data);
        self.butterflies(data, false);
    }

    /// In-place inverse FFT (including the `1/n` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan size.
    pub fn inverse(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "buffer size does not match FFT plan");
        self.permute(data);
        self.butterflies(data, true);
        let scale = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }

    fn permute(&self, data: &mut [Complex64]) {
        for i in 0..self.n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex64], inverse: bool) {
        for (s, tw) in self.twiddles.iter().enumerate() {
            let half = 1usize << s;
            let block = half * 2;
            for start in (0..self.n).step_by(block) {
                for k in 0..half {
                    let w = if inverse { tw[k].conj() } else { tw[k] };
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::naive_dft;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "mismatch at {i}: {x:?} vs {y:?}");
        }
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new(j as f64 + 1.0, (j as f64) * 0.5 - 1.0))
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let input = ramp(n);
            let mut fft_out = input.clone();
            FftPlan::new(n).forward(&mut fft_out);
            let dft_out = naive_dft(&input);
            assert_close(&fft_out, &dft_out, 1e-7 * n as f64);
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 8, 128, 1024] {
            let input = ramp(n);
            let mut data = input.clone();
            let plan = FftPlan::new(n);
            plan.forward(&mut data);
            plan.inverse(&mut data);
            assert_close(&data, &input, 1e-8 * n as f64);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 32;
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        FftPlan::new(n).forward(&mut data);
        for v in &data {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n);
        let a = ramp(n);
        let b: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new((j * j % 17) as f64, -(j as f64)))
            .collect();
        let mut sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        plan.forward(&mut sum);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let expect: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&sum, &expect, 1e-8);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let input = ramp(n);
        let mut freq = input.clone();
        FftPlan::new(n).forward(&mut freq);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_size() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_wrong_buffer() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex64::ZERO; 4];
        plan.forward(&mut data);
    }
}
