//! The negacyclic transform and the merge-split FFT (§V-A.3).
//!
//! A size-`N` real polynomial multiplied in `R[X]/(X^N + 1)` is diagonalized
//! by evaluation at the odd `2N`-th roots of unity. Two classical tricks
//! make this cheap, and Morphling uses both:
//!
//! 1. **Folding (Klemsa)**: for one real polynomial, conjugate symmetry
//!    lets an `N/2`-point complex FFT produce the `N/2` independent
//!    evaluation points — "the N-point FFT calculation using only one
//!    N/2-point FFT unit".
//! 2. **Merge-split**: *two* real polynomials are packed as the real and
//!    imaginary halves of one complex sequence; a single FFT transforms
//!    both, and an O(N) split using conjugate symmetry separates the
//!    spectra. This doubles the throughput of an FFT unit at the cost of
//!    the small Coef buffer + adder/shifter the paper describes.
//!
//! Both paths produce identical [`Spectrum`] values (asserted by tests), so
//! the rest of the system is agnostic to which one produced the data.

use morphling_math::{Complex64, Polynomial, Torus32};

use crate::fft::FftPlan;
use crate::spectrum::Spectrum;

/// Negacyclic transform engine for polynomials of one size `N`.
///
/// See the [module documentation](self) for the math. All methods are
/// `&self` and allocation costs are limited to the output buffers, so one
/// engine can be shared (it is `Send + Sync`).
#[derive(Clone, Debug)]
pub struct NegacyclicFft {
    n: usize,
    half_plan: FftPlan,
    full_plan: FftPlan,
    /// `ζ^j` for `j < N/2`, `ζ = e^(-iπ/N)`.
    twist_half: Vec<Complex64>,
    /// `ζ^(-j)` for `j < N/2`.
    untwist_half: Vec<Complex64>,
    /// `ζ^j` for `j < N` (merge-split path).
    twist_full: Vec<Complex64>,
    /// `ζ^(-j)` for `j < N`.
    untwist_full: Vec<Complex64>,
}

impl NegacyclicFft {
    /// Create an engine for size-`n` polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `n < 4`.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 4,
            "polynomial size must be a power of two ≥ 4, got {n}"
        );
        let step = -std::f64::consts::PI / n as f64;
        let twist = |j: usize| Complex64::from_polar_unit(step * j as f64);
        let untwist = |j: usize| Complex64::from_polar_unit(-step * j as f64);
        Self {
            n,
            half_plan: FftPlan::new(n / 2),
            full_plan: FftPlan::new(n),
            twist_half: (0..n / 2).map(twist).collect(),
            untwist_half: (0..n / 2).map(untwist).collect(),
            twist_full: (0..n).map(twist).collect(),
            untwist_full: (0..n).map(untwist).collect(),
        }
    }

    /// Polynomial size `N`.
    #[inline]
    pub fn poly_len(&self) -> usize {
        self.n
    }

    /// Forward transform of a real polynomial given as `f64` coefficients,
    /// via the folded `N/2`-point FFT.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N`.
    pub fn forward_real(&self, coeffs: &[f64]) -> Spectrum {
        let mut out = Spectrum::zero(self.n);
        self.forward_real_into(coeffs, &mut out);
        out
    }

    /// [`forward_real`](Self::forward_real) into a caller-owned spectrum,
    /// bit-identical and allocation-free: the fold/twist writes straight
    /// into the output points and the FFT runs in place there.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N` or the output spectrum size differs.
    pub fn forward_real_into(&self, coeffs: &[f64], out: &mut Spectrum) {
        assert_eq!(
            coeffs.len(),
            self.n,
            "coefficient count must equal the engine size"
        );
        assert_eq!(out.poly_len(), self.n, "output spectrum size mismatch");
        let half = self.n / 2;
        let vals = out.values_mut();
        for j in 0..half {
            vals[j] = Complex64::new(coeffs[j], -coeffs[j + half]) * self.twist_half[j];
        }
        self.half_plan.forward(vals);
    }

    /// Inverse transform back to real coefficients (unrounded `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the spectrum size does not match the engine.
    pub fn inverse_real(&self, spectrum: &Spectrum) -> Vec<f64> {
        assert_eq!(
            spectrum.poly_len(),
            self.n,
            "spectrum size must equal the engine size"
        );
        let half = self.n / 2;
        let mut buf = spectrum.values().to_vec();
        self.half_plan.inverse(&mut buf);
        let mut out = vec![0.0f64; self.n];
        for j in 0..half {
            let u = buf[j] * self.untwist_half[j];
            out[j] = u.re;
            out[j + half] = -u.im;
        }
        out
    }

    /// Forward transform of an integer (digit) polynomial.
    pub fn forward_int(&self, p: &Polynomial<i64>) -> Spectrum {
        let mut out = Spectrum::zero(self.n);
        self.forward_int_into(p, &mut out);
        out
    }

    /// [`forward_int`](Self::forward_int) into a caller-owned spectrum —
    /// the integer digits are widened to `f64` on the fly, with no staging
    /// buffer at all.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != N` or the output spectrum size differs.
    pub fn forward_int_into(&self, p: &Polynomial<i64>, out: &mut Spectrum) {
        assert_eq!(
            p.len(),
            self.n,
            "polynomial size must equal the engine size"
        );
        assert_eq!(out.poly_len(), self.n, "output spectrum size mismatch");
        let half = self.n / 2;
        let c = p.coeffs();
        let vals = out.values_mut();
        for j in 0..half {
            vals[j] = Complex64::new(c[j] as f64, -(c[j + half] as f64)) * self.twist_half[j];
        }
        self.half_plan.forward(vals);
    }

    /// Forward transform of a torus polynomial, using the centered signed
    /// representative of each coefficient (the standard TFHE convention —
    /// keeping magnitudes ≤ q/2 preserves f64 precision).
    pub fn forward_torus(&self, p: &Polynomial<Torus32>) -> Spectrum {
        let mut out = Spectrum::zero(self.n);
        self.forward_torus_into(p, &mut out);
        out
    }

    /// [`forward_torus`](Self::forward_torus) into a caller-owned
    /// spectrum, staging-free.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != N` or the output spectrum size differs.
    pub fn forward_torus_into(&self, p: &Polynomial<Torus32>, out: &mut Spectrum) {
        assert_eq!(
            p.len(),
            self.n,
            "polynomial size must equal the engine size"
        );
        assert_eq!(out.poly_len(), self.n, "output spectrum size mismatch");
        let half = self.n / 2;
        let c = p.coeffs();
        let vals = out.values_mut();
        for j in 0..half {
            vals[j] = Complex64::new(c[j].to_signed() as f64, -(c[j + half].to_signed() as f64))
                * self.twist_half[j];
        }
        self.half_plan.forward(vals);
    }

    /// Inverse transform, rounding each coefficient to the nearest integer
    /// and wrapping into the 32-bit torus.
    pub fn inverse_torus(&self, spectrum: &Spectrum) -> Polynomial<Torus32> {
        let mut out = Polynomial::zero(self.n);
        let mut scratch = Vec::new();
        self.inverse_torus_into(spectrum, &mut out, &mut scratch);
        out
    }

    /// [`inverse_torus`](Self::inverse_torus) into a caller-owned
    /// polynomial. `scratch` is resized to `N/2` points and reused across
    /// calls — after the first call it never reallocates (the software
    /// Coef buffer).
    ///
    /// # Panics
    ///
    /// Panics if the spectrum or output polynomial size differs from the
    /// engine size.
    pub fn inverse_torus_into(
        &self,
        spectrum: &Spectrum,
        out: &mut Polynomial<Torus32>,
        scratch: &mut Vec<Complex64>,
    ) {
        assert_eq!(
            spectrum.poly_len(),
            self.n,
            "spectrum size must equal the engine size"
        );
        assert_eq!(out.len(), self.n, "output polynomial size mismatch");
        let half = self.n / 2;
        scratch.clear();
        scratch.extend_from_slice(spectrum.values());
        self.half_plan.inverse(scratch);
        for j in 0..half {
            let u = scratch[j] * self.untwist_half[j];
            out[j] = Torus32::from_raw(round_wrap_u32(u.re));
            out[j + half] = Torus32::from_raw(round_wrap_u32(-u.im));
        }
    }

    /// **Merge-split forward**: transform *two* real polynomials with one
    /// `N`-point FFT (the paper's MS-FFT). Returns their two spectra,
    /// identical to what two [`Self::forward_real`] calls would produce.
    ///
    /// # Panics
    ///
    /// Panics if either input length differs from `N`.
    pub fn forward_pair_real(&self, p: &[f64], q: &[f64]) -> (Spectrum, Spectrum) {
        assert_eq!(p.len(), self.n, "first polynomial size mismatch");
        assert_eq!(q.len(), self.n, "second polynomial size mismatch");
        // Merge: r_j = (p_j + i q_j) ζ^j, evaluate at all odd 2N-th roots.
        let mut buf: Vec<Complex64> = (0..self.n)
            .map(|j| Complex64::new(p[j], q[j]) * self.twist_full[j])
            .collect();
        self.full_plan.forward(&mut buf);
        // Split: R_m = P(t_m) + i Q(t_m) with t_m = ζ^(2m+1) and, because p
        // and q are real, P(t_(N-1-m)) = conj(P(t_m)). Keep the even-m
        // points, which are exactly the ζ^(4m'+1) grid of the folded path.
        let half = self.n / 2;
        let mut ps = Vec::with_capacity(half);
        let mut qs = Vec::with_capacity(half);
        for m2 in 0..half {
            let m = 2 * m2;
            let r = buf[m];
            let rc = buf[self.n - 1 - m].conj();
            let p_val = (r + rc).scale(0.5);
            // (r - rc) / (2i) = -i (r - rc) / 2.
            let q_val = (r - rc).mul_i().scale(-0.5);
            ps.push(p_val);
            qs.push(q_val);
        }
        (Spectrum::from_values(ps), Spectrum::from_values(qs))
    }

    /// Merge-split forward for two integer polynomials.
    pub fn forward_pair_int(
        &self,
        p: &Polynomial<i64>,
        q: &Polynomial<i64>,
    ) -> (Spectrum, Spectrum) {
        let mut out_p = Spectrum::zero(self.n);
        let mut out_q = Spectrum::zero(self.n);
        let mut scratch = Vec::new();
        self.forward_pair_int_into(p, q, &mut out_p, &mut out_q, &mut scratch);
        (out_p, out_q)
    }

    /// [`forward_pair_int`](Self::forward_pair_int) into caller-owned
    /// spectra. `scratch` holds the merged `N`-point complex sequence and
    /// is reused across calls — allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics if either input or output size differs from the engine size.
    pub fn forward_pair_int_into(
        &self,
        p: &Polynomial<i64>,
        q: &Polynomial<i64>,
        out_p: &mut Spectrum,
        out_q: &mut Spectrum,
        scratch: &mut Vec<Complex64>,
    ) {
        assert_eq!(p.len(), self.n, "first polynomial size mismatch");
        assert_eq!(q.len(), self.n, "second polynomial size mismatch");
        assert_eq!(
            out_p.poly_len(),
            self.n,
            "first output spectrum size mismatch"
        );
        assert_eq!(
            out_q.poly_len(),
            self.n,
            "second output spectrum size mismatch"
        );
        // Merge: r_j = (p_j + i q_j) ζ^j, evaluate at all odd 2N-th roots.
        let (pc, qc) = (p.coeffs(), q.coeffs());
        scratch.clear();
        scratch.extend(
            (0..self.n).map(|j| Complex64::new(pc[j] as f64, qc[j] as f64) * self.twist_full[j]),
        );
        self.full_plan.forward(scratch);
        // Split: same conjugate-symmetry separation as forward_pair_real.
        let half = self.n / 2;
        let (ps, qs) = (out_p.values_mut(), out_q.values_mut());
        for m2 in 0..half {
            let m = 2 * m2;
            let r = scratch[m];
            let rc = scratch[self.n - 1 - m].conj();
            ps[m2] = (r + rc).scale(0.5);
            qs[m2] = (r - rc).mul_i().scale(-0.5);
        }
    }

    /// **Merge-split inverse**: reconstruct two real polynomials from their
    /// spectra using one `N`-point inverse FFT.
    ///
    /// # Panics
    ///
    /// Panics if either spectrum size differs from the engine size.
    pub fn inverse_pair_real(&self, ps: &Spectrum, qs: &Spectrum) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(ps.poly_len(), self.n, "first spectrum size mismatch");
        assert_eq!(qs.poly_len(), self.n, "second spectrum size mismatch");
        let mut buf = vec![Complex64::ZERO; self.n];
        for (m, slot) in buf.iter_mut().enumerate() {
            *slot = if m % 2 == 0 {
                ps.values()[m / 2] + qs.values()[m / 2].mul_i()
            } else {
                let k = (self.n - 1 - m) / 2;
                ps.values()[k].conj() + qs.values()[k].conj().mul_i()
            };
        }
        self.full_plan.inverse(&mut buf);
        let mut p = vec![0.0; self.n];
        let mut q = vec![0.0; self.n];
        for j in 0..self.n {
            let u = buf[j] * self.untwist_full[j];
            p[j] = u.re;
            q[j] = u.im;
        }
        (p, q)
    }

    /// Merge-split inverse with rounding into torus polynomials.
    pub fn inverse_pair_torus(
        &self,
        ps: &Spectrum,
        qs: &Spectrum,
    ) -> (Polynomial<Torus32>, Polynomial<Torus32>) {
        let mut out_p = Polynomial::zero(self.n);
        let mut out_q = Polynomial::zero(self.n);
        let mut scratch = Vec::new();
        self.inverse_pair_torus_into(ps, qs, &mut out_p, &mut out_q, &mut scratch);
        (out_p, out_q)
    }

    /// [`inverse_pair_torus`](Self::inverse_pair_torus) into caller-owned
    /// polynomials, reusing `scratch` for the `N`-point inverse FFT —
    /// allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics if any spectrum or output size differs from the engine size.
    pub fn inverse_pair_torus_into(
        &self,
        ps: &Spectrum,
        qs: &Spectrum,
        out_p: &mut Polynomial<Torus32>,
        out_q: &mut Polynomial<Torus32>,
        scratch: &mut Vec<Complex64>,
    ) {
        assert_eq!(ps.poly_len(), self.n, "first spectrum size mismatch");
        assert_eq!(qs.poly_len(), self.n, "second spectrum size mismatch");
        assert_eq!(out_p.len(), self.n, "first output polynomial size mismatch");
        assert_eq!(
            out_q.len(),
            self.n,
            "second output polynomial size mismatch"
        );
        scratch.clear();
        scratch.extend((0..self.n).map(|m| {
            if m % 2 == 0 {
                ps.values()[m / 2] + qs.values()[m / 2].mul_i()
            } else {
                let k = (self.n - 1 - m) / 2;
                ps.values()[k].conj() + qs.values()[k].conj().mul_i()
            }
        }));
        self.full_plan.inverse(scratch);
        for j in 0..self.n {
            let u = scratch[j] * self.untwist_full[j];
            out_p[j] = Torus32::from_raw(round_wrap_u32(u.re));
            out_q[j] = Torus32::from_raw(round_wrap_u32(u.im));
        }
    }

    /// Convenience: full negacyclic product `digits(X) · t(X)` through the
    /// transform domain (forward ×2, pointwise, inverse) — the operation
    /// one VPE performs per (digit, BSK) pair.
    pub fn mul_int_torus(
        &self,
        digits: &Polynomial<i64>,
        t: &Polynomial<Torus32>,
    ) -> Polynomial<Torus32> {
        let a = self.forward_int(digits);
        let b = self.forward_torus(t);
        self.inverse_torus(&a.pointwise_mul(&b))
    }
}

/// Round an f64 to the nearest integer and wrap into `u32` (mod 2³²).
fn round_wrap_u32(v: f64) -> u32 {
    // Magnitudes stay ≪ 2^63 for all supported parameter sets, so the cast
    // through i64 is exact; wrapping to u32 reduces mod q.
    v.round() as i64 as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::naive_negacyclic_eval;
    use morphling_math::negacyclic::mul_int_torus32;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_spec_close(a: &Spectrum, b: &Spectrum, tol: f64) {
        for (i, (x, y)) in a.values().iter().zip(b.values()).enumerate() {
            assert!((*x - *y).abs() < tol, "point {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn forward_matches_naive_evaluation() {
        let n = 32;
        let fft = NegacyclicFft::new(n);
        let coeffs: Vec<f64> = (0..n).map(|j| ((j * 7 + 3) % 23) as f64 - 11.0).collect();
        let spec = fft.forward_real(&coeffs);
        let oracle = Spectrum::from_values(naive_negacyclic_eval(&coeffs));
        assert_spec_close(&spec, &oracle, 1e-8);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 64;
        let fft = NegacyclicFft::new(n);
        let coeffs: Vec<f64> = (0..n).map(|j| (j as f64) * 3.5 - 100.0).collect();
        let back = fft.inverse_real(&fft.forward_real(&coeffs));
        for (a, b) in coeffs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn merge_split_forward_matches_single() {
        let n = 64;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(11);
        let p: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let (ps, qs) = fft.forward_pair_real(&p, &q);
        assert_spec_close(&ps, &fft.forward_real(&p), 1e-7);
        assert_spec_close(&qs, &fft.forward_real(&q), 1e-7);
    }

    #[test]
    fn merge_split_inverse_matches_single() {
        let n = 32;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(12);
        let p: Vec<f64> = (0..n).map(|_| rng.gen_range(-500.0..500.0)).collect();
        let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-500.0..500.0)).collect();
        let (ps, qs) = fft.forward_pair_real(&p, &q);
        let (p2, q2) = fft.inverse_pair_real(&ps, &qs);
        for j in 0..n {
            assert!((p[j] - p2[j]).abs() < 1e-6);
            assert!((q[j] - q2[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating_apis() {
        let n = 64;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(15);
        let p = Polynomial::from_fn(n, |_| rng.gen_range(-64i64..64));
        let q = Polynomial::from_fn(n, |_| rng.gen_range(-64i64..64));
        let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
        let mut scratch = Vec::new();

        // Deliberately dirty output buffers: _into must fully overwrite.
        let mut spec = fft.forward_int(&q);
        fft.forward_int_into(&p, &mut spec);
        assert_eq!(spec, fft.forward_int(&p));

        let mut tspec = Spectrum::zero(n);
        fft.forward_torus_into(&t, &mut tspec);
        assert_eq!(tspec, fft.forward_torus(&t));

        let (mut sp, mut sq) = (Spectrum::zero(n), Spectrum::zero(n));
        fft.forward_pair_int_into(&p, &q, &mut sp, &mut sq, &mut scratch);
        assert_eq!((sp.clone(), sq.clone()), fft.forward_pair_int(&p, &q));

        let mut out = Polynomial::zero(n);
        fft.inverse_torus_into(&tspec, &mut out, &mut scratch);
        assert_eq!(out, fft.inverse_torus(&tspec));

        let (mut op, mut oq) = (Polynomial::zero(n), Polynomial::zero(n));
        fft.inverse_pair_torus_into(&sp, &sq, &mut op, &mut oq, &mut scratch);
        assert_eq!((op, oq), fft.inverse_pair_torus(&sp, &sq));
    }

    #[test]
    fn transform_product_matches_exact_oracle() {
        let n = 256;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(13);
        // Realistic external-product operands: small signed digits times a
        // full-range torus polynomial.
        let digits = Polynomial::from_fn(n, |_| rng.gen_range(-32i64..32));
        let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
        assert_eq!(fft.mul_int_torus(&digits, &t), mul_int_torus32(&digits, &t));
    }

    #[test]
    fn spectral_accumulation_matches_sum_of_products() {
        // Accumulate 12 products in the transform domain (what POLY-ACC-REG
        // does for (k+1)·l_b = 12) and compare one IFFT against the exact sum.
        let n = 128;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(14);
        let mut acc_spec = Spectrum::zero(n);
        let mut acc_exact = Polynomial::<Torus32>::zero(n);
        for _ in 0..12 {
            let digits = Polynomial::from_fn(n, |_| rng.gen_range(-16i64..16));
            let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
            acc_spec.mul_acc(&fft.forward_int(&digits), &fft.forward_torus(&t));
            acc_exact += &mul_int_torus32(&digits, &t);
        }
        assert_eq!(fft.inverse_torus(&acc_spec), acc_exact);
    }

    #[test]
    fn works_at_all_paper_sizes() {
        for n in [512usize, 1024, 2048, 4096] {
            let fft = NegacyclicFft::new(n);
            let mut rng = StdRng::seed_from_u64(n as u64);
            let digits = Polynomial::from_fn(n, |_| rng.gen_range(-8i64..8));
            let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
            assert_eq!(
                fft.mul_int_torus(&digits, &t),
                mul_int_torus32(&digits, &t),
                "n={n}"
            );
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // X^(N-1) · X = X^N = -1.
        let n = 16;
        let fft = NegacyclicFft::new(n);
        let mut a = Polynomial::<i64>::zero(n);
        a[n - 1] = 1;
        let mut b = Polynomial::<Torus32>::zero(n);
        b[1] = Torus32::from_raw(1 << 16);
        let prod = fft.mul_int_torus(&a, &b);
        assert_eq!(prod[0], Torus32::from_raw(0u32.wrapping_sub(1 << 16)));
        for j in 1..n {
            assert_eq!(prod[j], Torus32::ZERO, "j={j}");
        }
    }
}
