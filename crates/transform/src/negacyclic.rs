//! The negacyclic transform and the merge-split FFT (§V-A.3).
//!
//! A size-`N` real polynomial multiplied in `R[X]/(X^N + 1)` is diagonalized
//! by evaluation at the odd `2N`-th roots of unity. Two classical tricks
//! make this cheap, and Morphling uses both:
//!
//! 1. **Folding (Klemsa)**: for one real polynomial, conjugate symmetry
//!    lets an `N/2`-point complex FFT produce the `N/2` independent
//!    evaluation points — "the N-point FFT calculation using only one
//!    N/2-point FFT unit".
//! 2. **Merge-split**: *two* real polynomials are packed as the real and
//!    imaginary halves of one complex sequence; a single FFT transforms
//!    both, and an O(N) split using conjugate symmetry separates the
//!    spectra. This doubles the throughput of an FFT unit at the cost of
//!    the small Coef buffer + adder/shifter the paper describes.
//!
//! Both paths produce identical [`Spectrum`] values (asserted by tests), so
//! the rest of the system is agnostic to which one produced the data.

use morphling_math::{Complex64, Polynomial, Torus32};

use crate::batch::{BatchScratch, PolyBatch, SpectrumBatch};
use crate::fft::FftPlan;
use crate::spectrum::Spectrum;

/// Negacyclic transform engine for polynomials of one size `N`.
///
/// See the [module documentation](self) for the math. All methods are
/// `&self` and allocation costs are limited to the output buffers, so one
/// engine can be shared (it is `Send + Sync`).
#[derive(Clone, Debug)]
pub struct NegacyclicFft {
    n: usize,
    half_plan: FftPlan,
    full_plan: FftPlan,
    /// `ζ^j` for `j < N/2`, `ζ = e^(-iπ/N)`.
    twist_half: Vec<Complex64>,
    /// `ζ^(-j)` for `j < N/2`.
    untwist_half: Vec<Complex64>,
    /// `ζ^j` for `j < N` (merge-split path).
    twist_full: Vec<Complex64>,
    /// `ζ^(-j)` for `j < N`.
    untwist_full: Vec<Complex64>,
}

impl NegacyclicFft {
    /// Create an engine for size-`n` polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `n < 4`.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 4,
            "polynomial size must be a power of two ≥ 4, got {n}"
        );
        let step = -std::f64::consts::PI / n as f64;
        let twist = |j: usize| Complex64::from_polar_unit(step * j as f64);
        let untwist = |j: usize| Complex64::from_polar_unit(-step * j as f64);
        Self {
            n,
            half_plan: FftPlan::new(n / 2),
            full_plan: FftPlan::new(n),
            twist_half: (0..n / 2).map(twist).collect(),
            untwist_half: (0..n / 2).map(untwist).collect(),
            twist_full: (0..n).map(twist).collect(),
            untwist_full: (0..n).map(untwist).collect(),
        }
    }

    /// Polynomial size `N`.
    #[inline]
    pub fn poly_len(&self) -> usize {
        self.n
    }

    /// Forward transform of a real polynomial given as `f64` coefficients,
    /// via the folded `N/2`-point FFT.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N`.
    pub fn forward_real(&self, coeffs: &[f64]) -> Spectrum {
        let mut out = Spectrum::zero(self.n);
        self.forward_real_into(coeffs, &mut out);
        out
    }

    /// [`forward_real`](Self::forward_real) into a caller-owned spectrum,
    /// bit-identical and allocation-free: the fold/twist writes straight
    /// into the output points and the FFT runs in place there.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N` or the output spectrum size differs.
    pub fn forward_real_into(&self, coeffs: &[f64], out: &mut Spectrum) {
        assert_eq!(
            coeffs.len(),
            self.n,
            "coefficient count must equal the engine size"
        );
        assert_eq!(out.poly_len(), self.n, "output spectrum size mismatch");
        let half = self.n / 2;
        let vals = out.values_mut();
        for j in 0..half {
            vals[j] = Complex64::new(coeffs[j], -coeffs[j + half]) * self.twist_half[j];
        }
        self.half_plan.forward(vals);
    }

    /// Inverse transform back to real coefficients (unrounded `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the spectrum size does not match the engine.
    pub fn inverse_real(&self, spectrum: &Spectrum) -> Vec<f64> {
        assert_eq!(
            spectrum.poly_len(),
            self.n,
            "spectrum size must equal the engine size"
        );
        let half = self.n / 2;
        let mut buf = spectrum.values().to_vec();
        self.half_plan.inverse(&mut buf);
        let mut out = vec![0.0f64; self.n];
        for j in 0..half {
            let u = buf[j] * self.untwist_half[j];
            out[j] = u.re;
            out[j + half] = -u.im;
        }
        out
    }

    /// Forward transform of an integer (digit) polynomial.
    pub fn forward_int(&self, p: &Polynomial<i64>) -> Spectrum {
        let mut out = Spectrum::zero(self.n);
        self.forward_int_into(p, &mut out);
        out
    }

    /// [`forward_int`](Self::forward_int) into a caller-owned spectrum —
    /// the integer digits are widened to `f64` on the fly, with no staging
    /// buffer at all.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != N` or the output spectrum size differs.
    pub fn forward_int_into(&self, p: &Polynomial<i64>, out: &mut Spectrum) {
        assert_eq!(
            p.len(),
            self.n,
            "polynomial size must equal the engine size"
        );
        assert_eq!(out.poly_len(), self.n, "output spectrum size mismatch");
        let half = self.n / 2;
        let c = p.coeffs();
        let vals = out.values_mut();
        for j in 0..half {
            vals[j] = Complex64::new(c[j] as f64, -(c[j + half] as f64)) * self.twist_half[j];
        }
        self.half_plan.forward(vals);
    }

    /// Forward transform of a torus polynomial, using the centered signed
    /// representative of each coefficient (the standard TFHE convention —
    /// keeping magnitudes ≤ q/2 preserves f64 precision).
    pub fn forward_torus(&self, p: &Polynomial<Torus32>) -> Spectrum {
        let mut out = Spectrum::zero(self.n);
        self.forward_torus_into(p, &mut out);
        out
    }

    /// [`forward_torus`](Self::forward_torus) into a caller-owned
    /// spectrum, staging-free.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != N` or the output spectrum size differs.
    pub fn forward_torus_into(&self, p: &Polynomial<Torus32>, out: &mut Spectrum) {
        assert_eq!(
            p.len(),
            self.n,
            "polynomial size must equal the engine size"
        );
        assert_eq!(out.poly_len(), self.n, "output spectrum size mismatch");
        let half = self.n / 2;
        let c = p.coeffs();
        let vals = out.values_mut();
        for j in 0..half {
            vals[j] = Complex64::new(c[j].to_signed() as f64, -(c[j + half].to_signed() as f64))
                * self.twist_half[j];
        }
        self.half_plan.forward(vals);
    }

    /// Inverse transform, rounding each coefficient to the nearest integer
    /// and wrapping into the 32-bit torus.
    pub fn inverse_torus(&self, spectrum: &Spectrum) -> Polynomial<Torus32> {
        let mut out = Polynomial::zero(self.n);
        let mut scratch = Vec::new();
        self.inverse_torus_into(spectrum, &mut out, &mut scratch);
        out
    }

    /// [`inverse_torus`](Self::inverse_torus) into a caller-owned
    /// polynomial. `scratch` is resized to `N/2` points and reused across
    /// calls — after the first call it never reallocates (the software
    /// Coef buffer).
    ///
    /// # Panics
    ///
    /// Panics if the spectrum or output polynomial size differs from the
    /// engine size.
    pub fn inverse_torus_into(
        &self,
        spectrum: &Spectrum,
        out: &mut Polynomial<Torus32>,
        scratch: &mut Vec<Complex64>,
    ) {
        assert_eq!(
            spectrum.poly_len(),
            self.n,
            "spectrum size must equal the engine size"
        );
        assert_eq!(out.len(), self.n, "output polynomial size mismatch");
        let half = self.n / 2;
        scratch.clear();
        scratch.extend_from_slice(spectrum.values());
        self.half_plan.inverse(scratch);
        for j in 0..half {
            let u = scratch[j] * self.untwist_half[j];
            out[j] = Torus32::from_raw(round_wrap_u32(u.re));
            out[j + half] = Torus32::from_raw(round_wrap_u32(-u.im));
        }
    }

    /// **Merge-split forward**: transform *two* real polynomials with one
    /// `N`-point FFT (the paper's MS-FFT). Returns their two spectra,
    /// identical to what two [`Self::forward_real`] calls would produce.
    ///
    /// # Panics
    ///
    /// Panics if either input length differs from `N`.
    pub fn forward_pair_real(&self, p: &[f64], q: &[f64]) -> (Spectrum, Spectrum) {
        assert_eq!(p.len(), self.n, "first polynomial size mismatch");
        assert_eq!(q.len(), self.n, "second polynomial size mismatch");
        // Merge: r_j = (p_j + i q_j) ζ^j, evaluate at all odd 2N-th roots.
        let mut buf: Vec<Complex64> = (0..self.n)
            .map(|j| Complex64::new(p[j], q[j]) * self.twist_full[j])
            .collect();
        self.full_plan.forward(&mut buf);
        // Split: R_m = P(t_m) + i Q(t_m) with t_m = ζ^(2m+1) and, because p
        // and q are real, P(t_(N-1-m)) = conj(P(t_m)). Keep the even-m
        // points, which are exactly the ζ^(4m'+1) grid of the folded path.
        let half = self.n / 2;
        let mut ps = Vec::with_capacity(half);
        let mut qs = Vec::with_capacity(half);
        for m2 in 0..half {
            let m = 2 * m2;
            let r = buf[m];
            let rc = buf[self.n - 1 - m].conj();
            let p_val = (r + rc).scale(0.5);
            // (r - rc) / (2i) = -i (r - rc) / 2.
            let q_val = (r - rc).mul_i().scale(-0.5);
            ps.push(p_val);
            qs.push(q_val);
        }
        (Spectrum::from_values(ps), Spectrum::from_values(qs))
    }

    /// Merge-split forward for two integer polynomials.
    pub fn forward_pair_int(
        &self,
        p: &Polynomial<i64>,
        q: &Polynomial<i64>,
    ) -> (Spectrum, Spectrum) {
        let mut out_p = Spectrum::zero(self.n);
        let mut out_q = Spectrum::zero(self.n);
        let mut scratch = Vec::new();
        self.forward_pair_int_into(p, q, &mut out_p, &mut out_q, &mut scratch);
        (out_p, out_q)
    }

    /// [`forward_pair_int`](Self::forward_pair_int) into caller-owned
    /// spectra. `scratch` holds the merged `N`-point complex sequence and
    /// is reused across calls — allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics if either input or output size differs from the engine size.
    pub fn forward_pair_int_into(
        &self,
        p: &Polynomial<i64>,
        q: &Polynomial<i64>,
        out_p: &mut Spectrum,
        out_q: &mut Spectrum,
        scratch: &mut Vec<Complex64>,
    ) {
        assert_eq!(p.len(), self.n, "first polynomial size mismatch");
        assert_eq!(q.len(), self.n, "second polynomial size mismatch");
        assert_eq!(
            out_p.poly_len(),
            self.n,
            "first output spectrum size mismatch"
        );
        assert_eq!(
            out_q.poly_len(),
            self.n,
            "second output spectrum size mismatch"
        );
        // Merge: r_j = (p_j + i q_j) ζ^j, evaluate at all odd 2N-th roots.
        let (pc, qc) = (p.coeffs(), q.coeffs());
        scratch.clear();
        scratch.extend(
            (0..self.n).map(|j| Complex64::new(pc[j] as f64, qc[j] as f64) * self.twist_full[j]),
        );
        self.full_plan.forward(scratch);
        // Split: same conjugate-symmetry separation as forward_pair_real.
        let half = self.n / 2;
        let (ps, qs) = (out_p.values_mut(), out_q.values_mut());
        for m2 in 0..half {
            let m = 2 * m2;
            let r = scratch[m];
            let rc = scratch[self.n - 1 - m].conj();
            ps[m2] = (r + rc).scale(0.5);
            qs[m2] = (r - rc).mul_i().scale(-0.5);
        }
    }

    /// **Merge-split inverse**: reconstruct two real polynomials from their
    /// spectra using one `N`-point inverse FFT.
    ///
    /// # Panics
    ///
    /// Panics if either spectrum size differs from the engine size.
    pub fn inverse_pair_real(&self, ps: &Spectrum, qs: &Spectrum) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(ps.poly_len(), self.n, "first spectrum size mismatch");
        assert_eq!(qs.poly_len(), self.n, "second spectrum size mismatch");
        let mut buf = vec![Complex64::ZERO; self.n];
        for (m, slot) in buf.iter_mut().enumerate() {
            *slot = if m % 2 == 0 {
                ps.values()[m / 2] + qs.values()[m / 2].mul_i()
            } else {
                let k = (self.n - 1 - m) / 2;
                ps.values()[k].conj() + qs.values()[k].conj().mul_i()
            };
        }
        self.full_plan.inverse(&mut buf);
        let mut p = vec![0.0; self.n];
        let mut q = vec![0.0; self.n];
        for j in 0..self.n {
            let u = buf[j] * self.untwist_full[j];
            p[j] = u.re;
            q[j] = u.im;
        }
        (p, q)
    }

    /// Merge-split inverse with rounding into torus polynomials.
    pub fn inverse_pair_torus(
        &self,
        ps: &Spectrum,
        qs: &Spectrum,
    ) -> (Polynomial<Torus32>, Polynomial<Torus32>) {
        let mut out_p = Polynomial::zero(self.n);
        let mut out_q = Polynomial::zero(self.n);
        let mut scratch = Vec::new();
        self.inverse_pair_torus_into(ps, qs, &mut out_p, &mut out_q, &mut scratch);
        (out_p, out_q)
    }

    /// [`inverse_pair_torus`](Self::inverse_pair_torus) into caller-owned
    /// polynomials, reusing `scratch` for the `N`-point inverse FFT —
    /// allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics if any spectrum or output size differs from the engine size.
    pub fn inverse_pair_torus_into(
        &self,
        ps: &Spectrum,
        qs: &Spectrum,
        out_p: &mut Polynomial<Torus32>,
        out_q: &mut Polynomial<Torus32>,
        scratch: &mut Vec<Complex64>,
    ) {
        assert_eq!(ps.poly_len(), self.n, "first spectrum size mismatch");
        assert_eq!(qs.poly_len(), self.n, "second spectrum size mismatch");
        assert_eq!(out_p.len(), self.n, "first output polynomial size mismatch");
        assert_eq!(
            out_q.len(),
            self.n,
            "second output polynomial size mismatch"
        );
        scratch.clear();
        scratch.extend((0..self.n).map(|m| {
            if m % 2 == 0 {
                ps.values()[m / 2] + qs.values()[m / 2].mul_i()
            } else {
                let k = (self.n - 1 - m) / 2;
                ps.values()[k].conj() + qs.values()[k].conj().mul_i()
            }
        }));
        self.full_plan.inverse(scratch);
        for j in 0..self.n {
            let u = scratch[j] * self.untwist_full[j];
            out_p[j] = Torus32::from_raw(round_wrap_u32(u.re));
            out_q[j] = Torus32::from_raw(round_wrap_u32(u.im));
        }
    }

    /// Convenience: full negacyclic product `digits(X) · t(X)` through the
    /// transform domain (forward ×2, pointwise, inverse) — the operation
    /// one VPE performs per (digit, BSK) pair.
    pub fn mul_int_torus(
        &self,
        digits: &Polynomial<i64>,
        t: &Polynomial<Torus32>,
    ) -> Polynomial<Torus32> {
        let a = self.forward_int(digits);
        let b = self.forward_torus(t);
        self.inverse_torus(&a.pointwise_mul(&b))
    }

    // --- Batched (SoA) entry points: the software VPE array ---
    //
    // Every batch kernel below performs, per lane, exactly the f64
    // operation sequence of its scalar counterpart (same fold, same
    // twist multiply, same FFT butterfly order), so batch outputs are
    // bit-identical to the one-polynomial calls at any lane count.

    /// Shared fold+twist for the batched folded forward path: per lane,
    /// exactly `Complex64::new(c[j], -c[j+half]) * twist_half[j]`.
    fn fold_twist_batch<T: Copy>(
        &self,
        data: &[T],
        lanes: usize,
        to_f64: impl Fn(T) -> f64,
        re: &mut [f64],
        im: &mut [f64],
    ) {
        let half = self.n / 2;
        for j in 0..half {
            let tw = self.twist_half[j];
            let lo = &data[j * lanes..(j + 1) * lanes];
            let hi = &data[(j + half) * lanes..(j + half + 1) * lanes];
            let out_re = &mut re[j * lanes..(j + 1) * lanes];
            let out_im = &mut im[j * lanes..(j + 1) * lanes];
            for l in 0..lanes {
                let a_re = to_f64(lo[l]);
                let a_im = -to_f64(hi[l]);
                out_re[l] = a_re * tw.re - a_im * tw.im;
                out_im[l] = a_re * tw.im + a_im * tw.re;
            }
        }
    }

    fn check_batch_out(&self, in_n: usize, in_lanes: usize, out: &SpectrumBatch) {
        assert_eq!(
            in_n, self.n,
            "batch polynomial size must equal the engine size"
        );
        assert_eq!(out.poly_len(), self.n, "output batch size mismatch");
        assert_eq!(out.lanes(), in_lanes, "output batch lane count mismatch");
    }

    /// Batched [`forward_int`](Self::forward_int): all lanes advance
    /// through the fold, twist, and FFT in lockstep.
    pub fn forward_int_batch(&self, batch: &PolyBatch<i64>) -> SpectrumBatch {
        let mut out = SpectrumBatch::zero(self.n, batch.lanes());
        self.forward_int_batch_into(batch, &mut out);
        out
    }

    /// [`forward_int_batch`](Self::forward_int_batch) into a caller-owned
    /// spectrum batch, allocation-free. Each lane is bit-identical to
    /// [`forward_int_into`](Self::forward_int_into) of that polynomial.
    ///
    /// # Panics
    ///
    /// Panics if the batch size or the output shape disagree with the
    /// engine.
    pub fn forward_int_batch_into(&self, batch: &PolyBatch<i64>, out: &mut SpectrumBatch) {
        self.check_batch_out(batch.poly_len(), batch.lanes(), out);
        let lanes = batch.lanes();
        let (re, im) = out.planes_mut();
        self.fold_twist_batch(batch.data(), lanes, |v| v as f64, re, im);
        self.half_plan.forward_batch(re, im, lanes);
    }

    /// Batched [`forward_torus`](Self::forward_torus).
    pub fn forward_torus_batch(&self, batch: &PolyBatch<Torus32>) -> SpectrumBatch {
        let mut out = SpectrumBatch::zero(self.n, batch.lanes());
        self.forward_torus_batch_into(batch, &mut out);
        out
    }

    /// [`forward_torus_batch`](Self::forward_torus_batch) into a
    /// caller-owned spectrum batch; per lane bit-identical to
    /// [`forward_torus_into`](Self::forward_torus_into).
    ///
    /// # Panics
    ///
    /// Panics if the batch size or the output shape disagree with the
    /// engine.
    pub fn forward_torus_batch_into(&self, batch: &PolyBatch<Torus32>, out: &mut SpectrumBatch) {
        self.check_batch_out(batch.poly_len(), batch.lanes(), out);
        let lanes = batch.lanes();
        let (re, im) = out.planes_mut();
        self.fold_twist_batch(
            batch.data(),
            lanes,
            |v: Torus32| v.to_signed() as f64,
            re,
            im,
        );
        self.half_plan.forward_batch(re, im, lanes);
    }

    /// Batched [`forward_real`](Self::forward_real) into a caller-owned
    /// spectrum batch; per lane bit-identical to
    /// [`forward_real_into`](Self::forward_real_into).
    ///
    /// # Panics
    ///
    /// Panics if the batch size or the output shape disagree with the
    /// engine.
    pub fn forward_real_batch_into(&self, batch: &PolyBatch<f64>, out: &mut SpectrumBatch) {
        self.check_batch_out(batch.poly_len(), batch.lanes(), out);
        let lanes = batch.lanes();
        let (re, im) = out.planes_mut();
        self.fold_twist_batch(batch.data(), lanes, |v| v, re, im);
        self.half_plan.forward_batch(re, im, lanes);
    }

    /// Batched [`inverse_torus`](Self::inverse_torus).
    pub fn inverse_torus_batch(&self, spec: &SpectrumBatch) -> PolyBatch<Torus32> {
        let mut out = PolyBatch::zero(self.n, spec.lanes());
        let mut scratch = BatchScratch::new();
        self.inverse_torus_batch_into(spec, &mut out, &mut scratch);
        out
    }

    /// [`inverse_torus_batch`](Self::inverse_torus_batch) into a
    /// caller-owned polynomial batch, reusing `scratch` — allocation-free
    /// once warm. Per lane bit-identical to
    /// [`inverse_torus_into`](Self::inverse_torus_into).
    ///
    /// # Panics
    ///
    /// Panics if the spectrum batch or the output shape disagree with the
    /// engine.
    pub fn inverse_torus_batch_into(
        &self,
        spec: &SpectrumBatch,
        out: &mut PolyBatch<Torus32>,
        scratch: &mut BatchScratch,
    ) {
        assert_eq!(
            spec.poly_len(),
            self.n,
            "spectrum batch size must equal the engine size"
        );
        assert_eq!(out.poly_len(), self.n, "output batch size mismatch");
        assert_eq!(
            out.lanes(),
            spec.lanes(),
            "output batch lane count mismatch"
        );
        let lanes = spec.lanes();
        let half = self.n / 2;
        let (re, im) = scratch.planes(half * lanes);
        re.copy_from_slice(spec.re());
        im.copy_from_slice(spec.im());
        self.half_plan.inverse_batch(re, im, lanes);
        let data = out.data_mut();
        for j in 0..half {
            let tw = self.untwist_half[j];
            for l in 0..lanes {
                let sr = re[j * lanes + l];
                let si = im[j * lanes + l];
                let u_re = sr * tw.re - si * tw.im;
                let u_im = sr * tw.im + si * tw.re;
                data[j * lanes + l] = Torus32::from_raw(round_wrap_u32(u_re));
                data[(j + half) * lanes + l] = Torus32::from_raw(round_wrap_u32(-u_im));
            }
        }
    }

    /// Batched merge-split forward: lanes `(2t, 2t+1)` share one `N`-point
    /// FFT pass exactly as [`forward_pair_int_into`]
    /// (Self::forward_pair_int_into) pairs them; an odd trailing lane goes
    /// through the folded path, mirroring the scalar
    /// `chunks_exact(2)` + remainder schedule — so the whole batch is
    /// bit-identical to the scalar merge-split loop.
    ///
    /// # Panics
    ///
    /// Panics if the batch size or the output shape disagree with the
    /// engine.
    pub fn forward_pair_int_batch_into(
        &self,
        batch: &PolyBatch<i64>,
        out: &mut SpectrumBatch,
        scratch: &mut BatchScratch,
    ) {
        self.check_batch_out(batch.poly_len(), batch.lanes(), out);
        let lanes = batch.lanes();
        let pairs = lanes / 2;
        let half = self.n / 2;
        let c = batch.data();
        if pairs > 0 {
            // Merge: r_j = (p_j + i q_j) ζ^j per pair, all pairs in lockstep.
            let (sre, sim) = scratch.planes(self.n * pairs);
            for j in 0..self.n {
                let tw = self.twist_full[j];
                let row = &c[j * lanes..(j + 1) * lanes];
                let out_re = &mut sre[j * pairs..(j + 1) * pairs];
                let out_im = &mut sim[j * pairs..(j + 1) * pairs];
                for t in 0..pairs {
                    let p = row[2 * t] as f64;
                    let q = row[2 * t + 1] as f64;
                    out_re[t] = p * tw.re - q * tw.im;
                    out_im[t] = p * tw.im + q * tw.re;
                }
            }
            self.full_plan.forward_batch(sre, sim, pairs);
            // Split via conjugate symmetry, exactly as the scalar path.
            let (ore, oim) = out.planes_mut();
            for m2 in 0..half {
                let m = 2 * m2;
                for t in 0..pairs {
                    let r_re = sre[m * pairs + t];
                    let r_im = sim[m * pairs + t];
                    let rc_re = sre[(self.n - 1 - m) * pairs + t];
                    let rc_im = -sim[(self.n - 1 - m) * pairs + t];
                    ore[m2 * lanes + 2 * t] = (r_re + rc_re) * 0.5;
                    oim[m2 * lanes + 2 * t] = (r_im + rc_im) * 0.5;
                    let d_re = r_re - rc_re;
                    let d_im = r_im - rc_im;
                    ore[m2 * lanes + 2 * t + 1] = (-d_im) * (-0.5);
                    oim[m2 * lanes + 2 * t + 1] = d_re * (-0.5);
                }
            }
        }
        if lanes % 2 == 1 {
            // Trailing lane: the folded N/2-point path, as the scalar
            // remainder does.
            let lane = lanes - 1;
            let (sre, sim) = scratch.planes(half);
            for j in 0..half {
                let tw = self.twist_half[j];
                let a_re = c[j * lanes + lane] as f64;
                let a_im = -(c[(j + half) * lanes + lane] as f64);
                sre[j] = a_re * tw.re - a_im * tw.im;
                sim[j] = a_re * tw.im + a_im * tw.re;
            }
            self.half_plan.forward_batch(sre, sim, 1);
            let (ore, oim) = out.planes_mut();
            for m in 0..half {
                ore[m * lanes + lane] = sre[m];
                oim[m * lanes + lane] = sim[m];
            }
        }
    }

    /// Batched merge-split inverse with rounding: lane pairs `(2t, 2t+1)`
    /// share one `N`-point inverse FFT exactly as
    /// [`inverse_pair_torus_into`](Self::inverse_pair_torus_into) pairs
    /// them; an odd trailing lane takes the folded path — bit-identical to
    /// the scalar `chunks_exact(2)` + remainder schedule.
    ///
    /// # Panics
    ///
    /// Panics if the spectrum batch or the output shape disagree with the
    /// engine.
    pub fn inverse_pair_torus_batch_into(
        &self,
        spec: &SpectrumBatch,
        out: &mut PolyBatch<Torus32>,
        scratch: &mut BatchScratch,
    ) {
        assert_eq!(
            spec.poly_len(),
            self.n,
            "spectrum batch size must equal the engine size"
        );
        assert_eq!(out.poly_len(), self.n, "output batch size mismatch");
        assert_eq!(
            out.lanes(),
            spec.lanes(),
            "output batch lane count mismatch"
        );
        let lanes = spec.lanes();
        let pairs = lanes / 2;
        let half = self.n / 2;
        if pairs > 0 {
            let (sre, sim) = scratch.planes(self.n * pairs);
            let (pre, pim) = (spec.re(), spec.im());
            // Merge the two spectra of each pair back into one N-point
            // sequence (conjugate symmetry), all pairs in lockstep.
            for m in 0..self.n {
                let out_re = &mut sre[m * pairs..(m + 1) * pairs];
                let out_im = &mut sim[m * pairs..(m + 1) * pairs];
                if m % 2 == 0 {
                    let k = m / 2;
                    for t in 0..pairs {
                        let p_re = pre[k * lanes + 2 * t];
                        let p_im = pim[k * lanes + 2 * t];
                        let q_re = pre[k * lanes + 2 * t + 1];
                        let q_im = pim[k * lanes + 2 * t + 1];
                        out_re[t] = p_re + (-q_im);
                        out_im[t] = p_im + q_re;
                    }
                } else {
                    let k = (self.n - 1 - m) / 2;
                    for t in 0..pairs {
                        let p_re = pre[k * lanes + 2 * t];
                        let p_im = -pim[k * lanes + 2 * t];
                        let q_re = pre[k * lanes + 2 * t + 1];
                        let q_im = -pim[k * lanes + 2 * t + 1];
                        out_re[t] = p_re + (-q_im);
                        out_im[t] = p_im + q_re;
                    }
                }
            }
            self.full_plan.inverse_batch(sre, sim, pairs);
            let data = out.data_mut();
            for j in 0..self.n {
                let tw = self.untwist_full[j];
                for t in 0..pairs {
                    let sr = sre[j * pairs + t];
                    let si = sim[j * pairs + t];
                    let u_re = sr * tw.re - si * tw.im;
                    let u_im = sr * tw.im + si * tw.re;
                    data[j * lanes + 2 * t] = Torus32::from_raw(round_wrap_u32(u_re));
                    data[j * lanes + 2 * t + 1] = Torus32::from_raw(round_wrap_u32(u_im));
                }
            }
        }
        if lanes % 2 == 1 {
            let lane = lanes - 1;
            let (sre, sim) = scratch.planes(half);
            for m in 0..half {
                sre[m] = spec.re()[m * lanes + lane];
                sim[m] = spec.im()[m * lanes + lane];
            }
            self.half_plan.inverse_batch(sre, sim, 1);
            let data = out.data_mut();
            for j in 0..half {
                let tw = self.untwist_half[j];
                let sr = sre[j];
                let si = sim[j];
                let u_re = sr * tw.re - si * tw.im;
                let u_im = sr * tw.im + si * tw.re;
                data[j * lanes + lane] = Torus32::from_raw(round_wrap_u32(u_re));
                data[(j + half) * lanes + lane] = Torus32::from_raw(round_wrap_u32(-u_im));
            }
        }
    }

    /// Batched [`mul_int_torus`](Self::mul_int_torus): lane-wise negacyclic
    /// products `digits[l](X) · ts[l](X)` through the transform domain,
    /// all lanes in lockstep. Per lane bit-identical to the scalar call.
    ///
    /// # Panics
    ///
    /// Panics if the batch shapes disagree with each other or the engine.
    pub fn mul_int_torus_batch(
        &self,
        digits: &PolyBatch<i64>,
        ts: &PolyBatch<Torus32>,
    ) -> PolyBatch<Torus32> {
        assert_eq!(digits.lanes(), ts.lanes(), "batch lane count mismatch");
        let lanes = digits.lanes();
        let mut a = SpectrumBatch::zero(self.n, lanes);
        self.forward_int_batch_into(digits, &mut a);
        let mut b = SpectrumBatch::zero(self.n, lanes);
        self.forward_torus_batch_into(ts, &mut b);
        a.pointwise_mul_assign(&b);
        let mut out = PolyBatch::zero(self.n, lanes);
        let mut scratch = BatchScratch::new();
        self.inverse_torus_batch_into(&a, &mut out, &mut scratch);
        out
    }
}

/// Round an f64 to the nearest integer and wrap into `u32` (mod 2³²).
///
/// Magnitudes stay ≪ 2^63 for all supported parameter sets, so the fast
/// cast through `i64` is exact and wrapping to `u32` reduces mod q. Rust
/// float→int casts *saturate* rather than wrap, so a value at or beyond
/// 2^63 must not take that path — it would silently collapse to
/// `0xFFFF_FFFF` instead of its mod-2³² residue. Out-of-range values trip
/// the `debug_assert` in debug builds and take an exact `rem_euclid`
/// reduction in release builds (`%` on integer-valued f64 is exact).
fn round_wrap_u32(v: f64) -> u32 {
    const TWO_63: f64 = 9_223_372_036_854_775_808.0;
    const TWO_32: f64 = 4_294_967_296.0;
    let r = v.round();
    debug_assert!(
        r.abs() < TWO_63,
        "round_wrap_u32: |{r}| is outside the documented 2^63 magnitude bound"
    );
    if r.abs() < TWO_63 {
        r as i64 as u32
    } else {
        // Checked fallback: exact mod-2^32 residue (NaN saturates to 0).
        r.rem_euclid(TWO_32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::naive_negacyclic_eval;
    use morphling_math::negacyclic::mul_int_torus32;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_spec_close(a: &Spectrum, b: &Spectrum, tol: f64) {
        for (i, (x, y)) in a.values().iter().zip(b.values()).enumerate() {
            assert!((*x - *y).abs() < tol, "point {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn forward_matches_naive_evaluation() {
        let n = 32;
        let fft = NegacyclicFft::new(n);
        let coeffs: Vec<f64> = (0..n).map(|j| ((j * 7 + 3) % 23) as f64 - 11.0).collect();
        let spec = fft.forward_real(&coeffs);
        let oracle = Spectrum::from_values(naive_negacyclic_eval(&coeffs));
        assert_spec_close(&spec, &oracle, 1e-8);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 64;
        let fft = NegacyclicFft::new(n);
        let coeffs: Vec<f64> = (0..n).map(|j| (j as f64) * 3.5 - 100.0).collect();
        let back = fft.inverse_real(&fft.forward_real(&coeffs));
        for (a, b) in coeffs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn merge_split_forward_matches_single() {
        let n = 64;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(11);
        let p: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let (ps, qs) = fft.forward_pair_real(&p, &q);
        assert_spec_close(&ps, &fft.forward_real(&p), 1e-7);
        assert_spec_close(&qs, &fft.forward_real(&q), 1e-7);
    }

    #[test]
    fn merge_split_inverse_matches_single() {
        let n = 32;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(12);
        let p: Vec<f64> = (0..n).map(|_| rng.gen_range(-500.0..500.0)).collect();
        let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-500.0..500.0)).collect();
        let (ps, qs) = fft.forward_pair_real(&p, &q);
        let (p2, q2) = fft.inverse_pair_real(&ps, &qs);
        for j in 0..n {
            assert!((p[j] - p2[j]).abs() < 1e-6);
            assert!((q[j] - q2[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating_apis() {
        let n = 64;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(15);
        let p = Polynomial::from_fn(n, |_| rng.gen_range(-64i64..64));
        let q = Polynomial::from_fn(n, |_| rng.gen_range(-64i64..64));
        let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
        let mut scratch = Vec::new();

        // Deliberately dirty output buffers: _into must fully overwrite.
        let mut spec = fft.forward_int(&q);
        fft.forward_int_into(&p, &mut spec);
        assert_eq!(spec, fft.forward_int(&p));

        let mut tspec = Spectrum::zero(n);
        fft.forward_torus_into(&t, &mut tspec);
        assert_eq!(tspec, fft.forward_torus(&t));

        let (mut sp, mut sq) = (Spectrum::zero(n), Spectrum::zero(n));
        fft.forward_pair_int_into(&p, &q, &mut sp, &mut sq, &mut scratch);
        assert_eq!((sp.clone(), sq.clone()), fft.forward_pair_int(&p, &q));

        let mut out = Polynomial::zero(n);
        fft.inverse_torus_into(&tspec, &mut out, &mut scratch);
        assert_eq!(out, fft.inverse_torus(&tspec));

        let (mut op, mut oq) = (Polynomial::zero(n), Polynomial::zero(n));
        fft.inverse_pair_torus_into(&sp, &sq, &mut op, &mut oq, &mut scratch);
        assert_eq!((op, oq), fft.inverse_pair_torus(&sp, &sq));
    }

    #[test]
    fn transform_product_matches_exact_oracle() {
        let n = 256;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(13);
        // Realistic external-product operands: small signed digits times a
        // full-range torus polynomial.
        let digits = Polynomial::from_fn(n, |_| rng.gen_range(-32i64..32));
        let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
        assert_eq!(fft.mul_int_torus(&digits, &t), mul_int_torus32(&digits, &t));
    }

    #[test]
    fn spectral_accumulation_matches_sum_of_products() {
        // Accumulate 12 products in the transform domain (what POLY-ACC-REG
        // does for (k+1)·l_b = 12) and compare one IFFT against the exact sum.
        let n = 128;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(14);
        let mut acc_spec = Spectrum::zero(n);
        let mut acc_exact = Polynomial::<Torus32>::zero(n);
        for _ in 0..12 {
            let digits = Polynomial::from_fn(n, |_| rng.gen_range(-16i64..16));
            let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
            acc_spec.mul_acc(&fft.forward_int(&digits), &fft.forward_torus(&t));
            acc_exact += &mul_int_torus32(&digits, &t);
        }
        assert_eq!(fft.inverse_torus(&acc_spec), acc_exact);
    }

    #[test]
    fn works_at_all_paper_sizes() {
        for n in [512usize, 1024, 2048, 4096] {
            let fft = NegacyclicFft::new(n);
            let mut rng = StdRng::seed_from_u64(n as u64);
            let digits = Polynomial::from_fn(n, |_| rng.gen_range(-8i64..8));
            let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
            assert_eq!(
                fft.mul_int_torus(&digits, &t),
                mul_int_torus32(&digits, &t),
                "n={n}"
            );
        }
    }

    #[test]
    fn round_wrap_is_exact_for_large_in_range_values() {
        // 2^35 + 7 ≡ 7 (mod 2^32): the fast path must wrap, not clamp.
        assert_eq!(round_wrap_u32(34_359_738_375.0), 7);
        assert_eq!(round_wrap_u32(-34_359_738_375.0), 0u32.wrapping_sub(7));
        assert_eq!(round_wrap_u32(-1.25), 0xFFFF_FFFF);
    }

    // 2^63 + 5·2^11 is exactly representable (the f64 ULP at 2^63 is 2^11)
    // and ≡ 10240 (mod 2^32). The old saturating cast returned 0xFFFF_FFFF.
    const OUT_OF_RANGE: f64 = 9_223_372_036_854_775_808.0 + 10_240.0;

    #[cfg(not(debug_assertions))]
    #[test]
    fn round_wrap_regression_out_of_range_wraps_exactly() {
        assert_eq!(round_wrap_u32(OUT_OF_RANGE), 10_240);
        assert_eq!(round_wrap_u32(-OUT_OF_RANGE), 0u32.wrapping_sub(10_240));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "magnitude bound")]
    fn round_wrap_regression_out_of_range_asserts_in_debug() {
        let _ = round_wrap_u32(OUT_OF_RANGE);
    }

    /// Scalar reference for the merge-split batch schedule: transform
    /// pairs, fold the odd remainder — exactly what the external-product
    /// hot loop does with `chunks_exact(2)`.
    fn scalar_pair_forward(fft: &NegacyclicFft, polys: &[Polynomial<i64>]) -> Vec<Spectrum> {
        let mut out = Vec::with_capacity(polys.len());
        let mut chunks = polys.chunks_exact(2);
        for pair in &mut chunks {
            let (a, b) = fft.forward_pair_int(&pair[0], &pair[1]);
            out.push(a);
            out.push(b);
        }
        if let [last] = chunks.remainder() {
            out.push(fft.forward_int(last));
        }
        out
    }

    fn scalar_pair_inverse(fft: &NegacyclicFft, specs: &[Spectrum]) -> Vec<Polynomial<Torus32>> {
        let mut out = Vec::with_capacity(specs.len());
        let mut chunks = specs.chunks_exact(2);
        for pair in &mut chunks {
            let (a, b) = fft.inverse_pair_torus(&pair[0], &pair[1]);
            out.push(a);
            out.push(b);
        }
        if let [last] = chunks.remainder() {
            out.push(fft.inverse_torus(last));
        }
        out
    }

    #[test]
    fn batch_transforms_are_bit_identical_to_scalar() {
        let n = 64;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(77);
        let mut scratch = BatchScratch::new();
        for lanes in [1usize, 2, 3, 5, 8] {
            let digits: Vec<Polynomial<i64>> = (0..lanes)
                .map(|_| Polynomial::from_fn(n, |_| rng.gen_range(-64i64..64)))
                .collect();
            let torus: Vec<Polynomial<Torus32>> = (0..lanes)
                .map(|_| Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen())))
                .collect();
            let db = PolyBatch::from_polys(&digits);
            let tb = PolyBatch::from_polys(&torus);

            // Folded forward, int and torus.
            let fwd = fft.forward_int_batch(&db);
            let tfwd = fft.forward_torus_batch(&tb);
            for lane in 0..lanes {
                let mut got = Spectrum::zero(n);
                fwd.store_lane(lane, &mut got);
                assert_eq!(
                    got,
                    fft.forward_int(&digits[lane]),
                    "int lane {lane}/{lanes}"
                );
                tfwd.store_lane(lane, &mut got);
                assert_eq!(
                    got,
                    fft.forward_torus(&torus[lane]),
                    "torus lane {lane}/{lanes}"
                );
            }

            // Real forward.
            let reals: Vec<Vec<f64>> = digits
                .iter()
                .map(|p| p.coeffs().iter().map(|&c| c as f64 * 1.5).collect())
                .collect();
            let mut rb = PolyBatch::<f64>::zero(n, lanes);
            for (lane, r) in reals.iter().enumerate() {
                for (j, &v) in r.iter().enumerate() {
                    rb.set_coeff(j, lane, v);
                }
            }
            let mut rfwd = SpectrumBatch::zero(n, lanes);
            fft.forward_real_batch_into(&rb, &mut rfwd);
            for (lane, r) in reals.iter().enumerate() {
                let mut got = Spectrum::zero(n);
                rfwd.store_lane(lane, &mut got);
                assert_eq!(got, fft.forward_real(r), "real lane {lane}/{lanes}");
            }

            // Folded inverse with rounding.
            let mut inv = PolyBatch::<Torus32>::zero(n, lanes);
            fft.inverse_torus_batch_into(&tfwd, &mut inv, &mut scratch);
            let unpacked = inv.to_polys();
            for (lane, got) in unpacked.iter().enumerate() {
                let mut want_spec = Spectrum::zero(n);
                tfwd.store_lane(lane, &mut want_spec);
                assert_eq!(
                    *got,
                    fft.inverse_torus(&want_spec),
                    "inverse lane {lane}/{lanes}"
                );
            }

            // Merge-split pair forward: lane pairs + folded remainder.
            let mut pfwd = SpectrumBatch::zero(n, lanes);
            fft.forward_pair_int_batch_into(&db, &mut pfwd, &mut scratch);
            let want = scalar_pair_forward(&fft, &digits);
            for (lane, w) in want.iter().enumerate() {
                let mut got = Spectrum::zero(n);
                pfwd.store_lane(lane, &mut got);
                assert_eq!(got, *w, "pair fwd lane {lane}/{lanes}");
            }

            // Merge-split pair inverse on realistic (product) spectra.
            let prod_specs: Vec<Spectrum> = digits
                .iter()
                .zip(&torus)
                .map(|(d, t)| fft.forward_int(d).pointwise_mul(&fft.forward_torus(t)))
                .collect();
            let pb = SpectrumBatch::from_spectra(&prod_specs);
            let mut pinv = PolyBatch::<Torus32>::zero(n, lanes);
            fft.inverse_pair_torus_batch_into(&pb, &mut pinv, &mut scratch);
            let want = scalar_pair_inverse(&fft, &prod_specs);
            assert_eq!(pinv.to_polys(), want, "pair inv lanes={lanes}");

            // Full product convenience vs scalar and vs the exact oracle.
            let prod = fft.mul_int_torus_batch(&db, &tb);
            for (lane, p) in prod.to_polys().into_iter().enumerate() {
                assert_eq!(
                    p,
                    fft.mul_int_torus(&digits[lane], &torus[lane]),
                    "product lane {lane}/{lanes}"
                );
                assert_eq!(
                    p,
                    mul_int_torus32(&digits[lane], &torus[lane]),
                    "oracle lane {lane}/{lanes}"
                );
            }
        }
    }

    #[test]
    fn batch_entry_points_work_at_paper_size() {
        let n = 1024;
        let fft = NegacyclicFft::new(n);
        let mut rng = StdRng::seed_from_u64(78);
        let digits: Vec<Polynomial<i64>> = (0..8)
            .map(|_| Polynomial::from_fn(n, |_| rng.gen_range(-32i64..32)))
            .collect();
        let torus: Vec<Polynomial<Torus32>> = (0..8)
            .map(|_| Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen())))
            .collect();
        let prod = fft.mul_int_torus_batch(
            &PolyBatch::from_polys(&digits),
            &PolyBatch::from_polys(&torus),
        );
        for (lane, p) in prod.to_polys().into_iter().enumerate() {
            assert_eq!(
                p,
                mul_int_torus32(&digits[lane], &torus[lane]),
                "lane {lane}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must equal the engine size")]
    fn batch_size_mismatch_is_rejected() {
        let fft = NegacyclicFft::new(64);
        let batch = PolyBatch::<i64>::zero(32, 2);
        let _ = fft.forward_int_batch(&batch);
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // X^(N-1) · X = X^N = -1.
        let n = 16;
        let fft = NegacyclicFft::new(n);
        let mut a = Polynomial::<i64>::zero(n);
        a[n - 1] = 1;
        let mut b = Polynomial::<Torus32>::zero(n);
        b[1] = Torus32::from_raw(1 << 16);
        let prod = fft.mul_int_torus(&a, &b);
        assert_eq!(prod[0], Torus32::from_raw(0u32.wrapping_sub(1 << 16)));
        for j in 1..n {
            assert_eq!(prod[j], Torus32::ZERO, "j={j}");
        }
    }
}
