//! Cycle/occupancy model of the hardware pipelined FFT unit (§V-A.3).
//!
//! Morphling's FFT unit is a fully-pipelined multi-delay-commutator design
//! with 8-element parallelism: it accepts eight transform-domain elements
//! per cycle, contains all `log2` butterfly stages back to back, and (with
//! merge-split enabled) carries **two** real polynomials per pass. The
//! simulator uses this model to decide how many cycles a batch of forward
//! or inverse transforms occupies an FFT/IFFT unit.

/// Number of parallel lanes in the hardware FFT datapath (eight 64-bit
/// complex elements → the 512-bit transform datapath of §V-A).
pub const FFT_LANES: usize = 8;

/// Cycles a butterfly stage adds to the pipeline latency (register +
/// multiply + shuffle), a conventional value for an MDC stage.
pub const STAGE_LATENCY: u64 = 4;

/// Timing model of one pipelined FFT (or IFFT) unit.
///
/// # Example
///
/// ```
/// use morphling_transform::pipeline::PipelinedFftModel;
///
/// // Set I: N = 1024, merge-split on.
/// let fft = PipelinedFftModel::new(1024, true);
/// assert_eq!(fft.pass_cycles(), 64);          // N/16 per pass
/// assert_eq!(fft.polys_per_pass(), 2);        // merge-split carries 2
/// assert_eq!(fft.occupancy_cycles(16), 512);  // 16 polys → 8 passes
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelinedFftModel {
    poly_len: usize,
    merge_split: bool,
}

impl PipelinedFftModel {
    /// Model a unit for polynomials of size `poly_len` (power of two ≥ 16).
    ///
    /// # Panics
    ///
    /// Panics if `poly_len` is not a power of two or is below 16.
    pub fn new(poly_len: usize, merge_split: bool) -> Self {
        assert!(
            poly_len.is_power_of_two() && poly_len >= 16,
            "polynomial size must be a power of two ≥ 16, got {poly_len}"
        );
        Self {
            poly_len,
            merge_split,
        }
    }

    /// Polynomial size `N`.
    #[inline]
    pub fn poly_len(&self) -> usize {
        self.poly_len
    }

    /// Whether merge-split is enabled.
    #[inline]
    pub fn merge_split(&self) -> bool {
        self.merge_split
    }

    /// Number of butterfly stages (the unit is an `N/2`-point FFT thanks to
    /// the negacyclic fold, so `log2(N/2)` stages).
    #[inline]
    pub fn stages(&self) -> u32 {
        (self.poly_len / 2).trailing_zeros()
    }

    /// Initiation interval: cycles between successive passes. The unit
    /// streams `N/2` complex points at [`FFT_LANES`] per cycle → `N/16`.
    #[inline]
    pub fn pass_cycles(&self) -> u64 {
        (self.poly_len as u64 / 2) / FFT_LANES as u64
    }

    /// Real polynomials transformed per pass: 2 with merge-split, else 1.
    #[inline]
    pub fn polys_per_pass(&self) -> u64 {
        if self.merge_split {
            2
        } else {
            1
        }
    }

    /// Pipeline fill latency from first input to first output.
    #[inline]
    pub fn fill_latency(&self) -> u64 {
        u64::from(self.stages()) * STAGE_LATENCY
    }

    /// Cycles this unit is occupied transforming `polys` real polynomials
    /// (throughput term only; add [`Self::fill_latency`] once per dependent
    /// chain if modelling latency).
    ///
    /// A partial pass still occupies the unit for a whole pass —
    /// ceil-division, so an odd poly count with merge-split rounds up and
    /// zero polys cost zero cycles. Saturates instead of overflowing on
    /// astronomically large counts.
    #[inline]
    pub fn occupancy_cycles(&self, polys: u64) -> u64 {
        polys
            .div_ceil(self.polys_per_pass())
            .saturating_mul(self.pass_cycles())
    }

    /// Real multiplications one pass performs, for op-count accounting:
    /// an `N/2`-point complex FFT does `(N/4)·log2(N/2)` complex butterflies
    /// at 4 real multiplications each.
    #[inline]
    pub fn real_mults_per_pass(&self) -> u64 {
        (self.poly_len as u64 / 4) * u64::from(self.stages()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_i_timing_matches_the_paper_model() {
        // N=1024: pass = 64 cycles; 16 forward polys per XPU iteration over
        // 2 units with merge-split = 4 pass-slots = 256 cycles — the number
        // that reproduces Table V's 0.11 ms for set I.
        let fft = PipelinedFftModel::new(1024, true);
        let per_unit_polys = 8; // 16 polys split over 2 units
        assert_eq!(fft.occupancy_cycles(per_unit_polys), 4 * 64);
    }

    #[test]
    fn merge_split_halves_occupancy() {
        let with = PipelinedFftModel::new(2048, true);
        let without = PipelinedFftModel::new(2048, false);
        assert_eq!(with.occupancy_cycles(12) * 2, without.occupancy_cycles(12));
    }

    #[test]
    fn odd_poly_counts_round_up() {
        let fft = PipelinedFftModel::new(1024, true);
        assert_eq!(fft.occupancy_cycles(3), 2 * 64);
        assert_eq!(fft.occupancy_cycles(0), 0);
    }

    #[test]
    fn occupancy_edge_cases_hold_ceil_semantics() {
        let ms = PipelinedFftModel::new(1024, true);
        // One polynomial still fills a whole merge-split pass.
        assert_eq!(ms.occupancy_cycles(1), 64);
        assert_eq!(ms.occupancy_cycles(2), 64);
        // Without merge-split every poly is its own pass — no rounding.
        let single = PipelinedFftModel::new(1024, false);
        assert_eq!(single.occupancy_cycles(1), 64);
        assert_eq!(single.occupancy_cycles(3), 3 * 64);
        // Every odd count costs exactly one more pass than count − 1.
        for polys in (1..32u64).step_by(2) {
            assert_eq!(
                ms.occupancy_cycles(polys),
                ms.occupancy_cycles(polys + 1),
                "odd count {polys} must round up to the next pass"
            );
        }
        // Saturates instead of overflowing.
        assert_eq!(ms.occupancy_cycles(u64::MAX), u64::MAX);
    }

    #[test]
    fn stage_count_and_latency() {
        let fft = PipelinedFftModel::new(1024, true);
        assert_eq!(fft.stages(), 9); // 512-point unit
        assert_eq!(fft.fill_latency(), 36);
    }

    #[test]
    fn op_count_formula() {
        // N=1024 → N/2=512-point FFT: 256·9 butterflies ×4 = 9216 mults.
        let fft = PipelinedFftModel::new(1024, false);
        assert_eq!(fft.real_mults_per_pass(), 9216);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_small_sizes() {
        let _ = PipelinedFftModel::new(8, true);
    }
}
