//! Property-based tests: the FFT path must agree exactly with the integer
//! oracle under realistic TFHE operand distributions.

use morphling_math::negacyclic::{mul_int_torus32, mul_int_torus32_batch};
use morphling_math::{Polynomial, Torus32};
use morphling_transform::{BatchScratch, NegacyclicFft, PolyBatch, Spectrum, SpectrumBatch};
use proptest::prelude::*;

fn digit_poly(n: usize, half_beta: i64) -> impl Strategy<Value = Polynomial<i64>> {
    prop::collection::vec(-half_beta..half_beta, n).prop_map(Polynomial::from_coeffs)
}

fn torus_poly(n: usize) -> impl Strategy<Value = Polynomial<Torus32>> {
    prop::collection::vec(any::<u32>(), n)
        .prop_map(|v| Polynomial::from_coeffs(v.into_iter().map(Torus32::from_raw).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_product_is_exact_n256(d in digit_poly(256, 64), t in torus_poly(256)) {
        let fft = NegacyclicFft::new(256);
        prop_assert_eq!(fft.mul_int_torus(&d, &t), mul_int_torus32(&d, &t));
    }

    #[test]
    fn fft_product_is_exact_n1024_base_2_6(d in digit_poly(1024, 32), t in torus_poly(1024)) {
        // Paper set I/II digit range (β up to 2^6).
        let fft = NegacyclicFft::new(1024);
        prop_assert_eq!(fft.mul_int_torus(&d, &t), mul_int_torus32(&d, &t));
    }

    #[test]
    fn merge_split_equals_two_singles(d1 in digit_poly(128, 512), d2 in digit_poly(128, 512)) {
        let fft = NegacyclicFft::new(128);
        let (s1, s2) = fft.forward_pair_int(&d1, &d2);
        let r1 = fft.forward_int(&d1);
        let r2 = fft.forward_int(&d2);
        for m in 0..64 {
            prop_assert!((s1.values()[m] - r1.values()[m]).abs() < 1e-6);
            prop_assert!((s2.values()[m] - r2.values()[m]).abs() < 1e-6);
        }
    }

    #[test]
    fn merged_inverse_equals_two_inverses(
        d1 in digit_poly(128, 16),
        d2 in digit_poly(128, 16),
        t in torus_poly(128),
    ) {
        let fft = NegacyclicFft::new(128);
        let tb = fft.forward_torus(&t);
        let s1 = fft.forward_int(&d1).pointwise_mul(&tb);
        let s2 = fft.forward_int(&d2).pointwise_mul(&tb);
        let (p1, p2) = fft.inverse_pair_torus(&s1, &s2);
        prop_assert_eq!(p1, fft.inverse_torus(&s1));
        prop_assert_eq!(p2, fft.inverse_torus(&s2));
    }

    #[test]
    fn accumulated_external_product_shape_is_exact(
        seed in any::<u64>(),
    ) {
        // (k+1)·l_b = 16 accumulated products at N=512, k=3-style worst case.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 512;
        let fft = NegacyclicFft::new(n);
        let mut acc_spec = Spectrum::zero(n);
        let mut acc_exact = Polynomial::<Torus32>::zero(n);
        for _ in 0..16 {
            let d = Polynomial::from_fn(n, |_| rng.gen_range(-8i64..8));
            let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
            acc_spec.mul_acc(&fft.forward_int(&d), &fft.forward_torus(&t));
            acc_exact += &mul_int_torus32(&d, &t);
        }
        prop_assert_eq!(fft.inverse_torus(&acc_spec), acc_exact);
    }

    #[test]
    fn spectrum_addition_is_ifft_linear(d1 in digit_poly(64, 100), d2 in digit_poly(64, 100)) {
        let fft = NegacyclicFft::new(64);
        let sum_spec = &fft.forward_int(&d1) + &fft.forward_int(&d2);
        let sum_poly = fft.inverse_real(&sum_spec);
        for (j, v) in sum_poly.iter().enumerate() {
            let expect = (d1[j] + d2[j]) as f64;
            prop_assert!((v - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn batched_folded_transforms_are_bit_identical_per_lane(
        all_ds in prop::collection::vec(digit_poly(128, 64), 8),
        all_ts in prop::collection::vec(torus_poly(128), 8),
        d_lanes in 1usize..9,
        t_lanes in 1usize..9,
    ) {
        // Random batch sizes, including batch size 1: every lane of the
        // batched folded forward/inverse must equal the scalar call bit
        // for bit.
        let ds = &all_ds[..d_lanes];
        let ts = &all_ts[..t_lanes];
        let n = 128;
        let fft = NegacyclicFft::new(n);
        let mut scratch = BatchScratch::new();
        let fwd = fft.forward_int_batch(&PolyBatch::from_polys(ds));
        for (lane, d) in ds.iter().enumerate() {
            let mut got = Spectrum::zero(n);
            fwd.store_lane(lane, &mut got);
            prop_assert_eq!(got, fft.forward_int(d), "lane {}", lane);
        }
        let tfwd = fft.forward_torus_batch(&PolyBatch::from_polys(ts));
        let mut inv = PolyBatch::<Torus32>::zero(n, ts.len());
        fft.inverse_torus_batch_into(&tfwd, &mut inv, &mut scratch);
        for (lane, (p, t)) in inv.to_polys().into_iter().zip(ts).enumerate() {
            prop_assert_eq!(p, fft.inverse_torus(&fft.forward_torus(t)), "lane {}", lane);
        }
    }

    #[test]
    fn batched_pair_transforms_match_scalar_pairing_schedule(
        all_ds in prop::collection::vec(digit_poly(64, 64), 7),
        lanes in 1usize..8,
        t in torus_poly(64),
    ) {
        // The batched merge-split path must reproduce the scalar
        // chunks_exact(2)+remainder schedule exactly — including odd
        // batch sizes, where the trailing lane folds.
        let ds = &all_ds[..lanes];
        let n = 64;
        let fft = NegacyclicFft::new(n);
        let mut scratch = BatchScratch::new();

        let mut got = SpectrumBatch::zero(n, lanes);
        fft.forward_pair_int_batch_into(&PolyBatch::from_polys(ds), &mut got, &mut scratch);
        let mut want = Vec::new();
        let mut chunks = ds.chunks_exact(2);
        for pair in &mut chunks {
            let (a, b) = fft.forward_pair_int(&pair[0], &pair[1]);
            want.push(a);
            want.push(b);
        }
        if let [last] = chunks.remainder() {
            want.push(fft.forward_int(last));
        }
        for (lane, w) in want.iter().enumerate() {
            let mut s = Spectrum::zero(n);
            got.store_lane(lane, &mut s);
            prop_assert_eq!(&s, w, "fwd lane {}", lane);
        }

        // Inverse side on realistic product spectra.
        let tb = fft.forward_torus(&t);
        let specs: Vec<Spectrum> = ds.iter().map(|d| fft.forward_int(d).pointwise_mul(&tb)).collect();
        let mut pinv = PolyBatch::<Torus32>::zero(n, lanes);
        fft.inverse_pair_torus_batch_into(&SpectrumBatch::from_spectra(&specs), &mut pinv, &mut scratch);
        let mut want = Vec::new();
        let mut chunks = specs.chunks_exact(2);
        for pair in &mut chunks {
            let (a, b) = fft.inverse_pair_torus(&pair[0], &pair[1]);
            want.push(a);
            want.push(b);
        }
        if let [last] = chunks.remainder() {
            want.push(fft.inverse_torus(last));
        }
        prop_assert_eq!(pinv.to_polys(), want);
    }

    #[test]
    fn batched_product_matches_exact_batch_oracle(
        all_ds in prop::collection::vec(digit_poly(256, 32), 5),
        lanes in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ds = &all_ds[..lanes];
        let n = 256;
        let ts: Vec<Polynomial<Torus32>> = (0..lanes)
            .map(|_| Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen())))
            .collect();
        let fft = NegacyclicFft::new(n);
        let prods = fft
            .mul_int_torus_batch(&PolyBatch::from_polys(ds), &PolyBatch::from_polys(&ts))
            .to_polys();
        prop_assert_eq!(prods, mul_int_torus32_batch(ds, &ts));
    }
}
