//! Neural-network layer descriptions and their TFHE cost model.
//!
//! In TFHE-based inference (Concrete-ML style), linear layers (conv /
//! dense / pooling) are *leveled* — plaintext-weight dot products on the
//! VPU — while every activation (ReLU) is a programmable bootstrap. With
//! 8-bit quantization each activation costs [`PBS_PER_ACTIVATION`]
//! bootstraps (the non-linearity plus re-quantization), the factor that
//! makes our DeepCNN columns land on the paper's Table VI numbers.

/// Programmable bootstraps per quantized activation (ReLU + requantize).
pub const PBS_PER_ACTIVATION: u64 = 2;

/// Shape of a feature map: height × width × channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shape {
    /// Height in pixels.
    pub h: usize,
    /// Width in pixels.
    pub w: usize,
    /// Channels.
    pub c: usize,
}

impl Shape {
    /// Construct a shape.
    pub const fn new(h: usize, w: usize, c: usize) -> Self {
        Self { h, w, c }
    }

    /// Total elements.
    pub fn elements(&self) -> u64 {
        (self.h * self.w * self.c) as u64
    }
}

/// One network layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layer {
    /// 2-D convolution with square kernels.
    Conv2d {
        /// Kernel height/width.
        kernel: usize,
        /// Output channels (the paper's "filter size").
        filters: usize,
        /// Stride.
        stride: usize,
        /// Zero-padding ring width (1 for `same` 3×3 convs).
        padding: usize,
        /// Whether a ReLU (bootstrapped) follows.
        relu: bool,
    },
    /// Average pooling (leveled — a plaintext-weighted sum).
    AvgPool {
        /// Pool height/width and stride.
        size: usize,
    },
    /// Fully connected layer.
    Dense {
        /// Output neurons.
        neurons: usize,
        /// Whether a ReLU (bootstrapped) follows.
        relu: bool,
    },
}

impl Layer {
    /// Output shape given the input shape.
    ///
    /// # Panics
    ///
    /// Panics if the layer does not fit the input (kernel larger than the
    /// feature map).
    pub fn output_shape(&self, input: Shape) -> Shape {
        match *self {
            Layer::Conv2d {
                kernel,
                filters,
                stride,
                padding,
                ..
            } => {
                let (ih, iw) = (input.h + 2 * padding, input.w + 2 * padding);
                assert!(kernel <= ih && kernel <= iw, "kernel larger than input");
                let h = (ih - kernel) / stride + 1;
                let w = (iw - kernel) / stride + 1;
                Shape::new(h, w, filters)
            }
            Layer::AvgPool { size } => Shape::new(input.h / size, input.w / size, input.c),
            Layer::Dense { neurons, .. } => Shape::new(1, 1, neurons),
        }
    }

    /// Bootstraps this layer performs (activations × PBS factor).
    pub fn bootstraps(&self, input: Shape) -> u64 {
        let out = self.output_shape(input);
        match *self {
            Layer::Conv2d { relu, .. } | Layer::Dense { relu, .. } => {
                if relu {
                    out.elements() * PBS_PER_ACTIVATION
                } else {
                    0
                }
            }
            Layer::AvgPool { .. } => 0,
        }
    }

    /// Leveled multiply-accumulate operations (VPU P-ALU work).
    pub fn macs(&self, input: Shape) -> u64 {
        let out = self.output_shape(input);
        match *self {
            Layer::Conv2d { kernel, .. } => out.elements() * (kernel * kernel * input.c) as u64,
            Layer::AvgPool { size } => out.elements() * (size * size) as u64,
            Layer::Dense { .. } => out.elements() * input.elements(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes() {
        // The paper's DeepCNN front end: 8×8×1 → 3×3 conv (2 filters) →
        // 6×6×2 → 3×3 conv stride 2 (92 filters) → 2×2×92.
        let s0 = Shape::new(8, 8, 1);
        let c1 = Layer::Conv2d {
            kernel: 3,
            filters: 2,
            stride: 1,
            padding: 0,
            relu: true,
        };
        let s1 = c1.output_shape(s0);
        assert_eq!(s1, Shape::new(6, 6, 2));
        let c2 = Layer::Conv2d {
            kernel: 3,
            filters: 92,
            stride: 2,
            padding: 0,
            relu: true,
        };
        let s2 = c2.output_shape(s1);
        assert_eq!(s2, Shape::new(2, 2, 92));
        // "requires 368 ReLU" per 1×1 layer: 2×2×92 = 368 activations.
        let c3 = Layer::Conv2d {
            kernel: 1,
            filters: 92,
            stride: 1,
            padding: 0,
            relu: true,
        };
        assert_eq!(c3.output_shape(s2).elements(), 368);
        assert_eq!(c3.bootstraps(s2), 368 * PBS_PER_ACTIVATION);
    }

    #[test]
    fn pooling_is_leveled() {
        let p = Layer::AvgPool { size: 2 };
        let s = Shape::new(32, 32, 64);
        assert_eq!(p.output_shape(s), Shape::new(16, 16, 64));
        assert_eq!(p.bootstraps(s), 0);
        assert_eq!(p.macs(s), 16 * 16 * 64 * 4);
    }

    #[test]
    fn dense_macs_and_bootstraps() {
        let d = Layer::Dense {
            neurons: 10,
            relu: false,
        };
        let s = Shape::new(1, 1, 512);
        assert_eq!(d.macs(s), 5120);
        assert_eq!(d.bootstraps(s), 0);
        let d = Layer::Dense {
            neurons: 512,
            relu: true,
        };
        assert_eq!(d.bootstraps(s), 512 * PBS_PER_ACTIVATION);
    }

    #[test]
    #[should_panic(expected = "kernel larger")]
    fn oversized_kernel_panics() {
        let c = Layer::Conv2d {
            kernel: 5,
            filters: 1,
            stride: 1,
            padding: 0,
            relu: false,
        };
        let _ = c.output_shape(Shape::new(3, 3, 1));
    }
}
