//! The XG-Boost classifier workload (§VI-A): 100 estimators, depth 6.
//!
//! In Concrete-ML's privacy-preserving tree inference, every internal-node
//! threshold comparison on encrypted features is evaluated with one
//! programmable bootstrap (an oblivious evaluation touches all nodes), and
//! the per-tree leaf aggregation adds one more PBS per tree. Comparisons
//! within one depth level are independent; the paper exploits exactly this
//! for batching (§V-E).

use morphling_core::sched::Workload;

/// A gradient-boosted tree ensemble (structure only — the cost model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XgBoostModel {
    /// Number of estimators (trees).
    pub estimators: u64,
    /// Maximum tree depth.
    pub depth: u32,
}

impl XgBoostModel {
    /// The paper's benchmark model: 100 estimators, depth 6.
    pub fn paper_benchmark() -> Self {
        Self {
            estimators: 100,
            depth: 6,
        }
    }

    /// Internal (decision) nodes per tree: `2^depth − 1`.
    pub fn nodes_per_tree(&self) -> u64 {
        (1u64 << self.depth) - 1
    }

    /// Total encrypted comparisons (one PBS each) for one inference.
    pub fn total_comparisons(&self) -> u64 {
        self.estimators * self.nodes_per_tree()
    }

    /// Total bootstraps: comparisons + one aggregation PBS per tree.
    pub fn total_bootstraps(&self) -> u64 {
        self.total_comparisons() + self.estimators
    }

    /// Leveled MACs for leaf-value selection and the final sum.
    pub fn total_macs(&self) -> u64 {
        self.estimators * (1u64 << self.depth) * 2
    }

    /// Scheduling workload: the oblivious comparisons of every depth level
    /// are independent (one level per depth across all trees), followed by
    /// the per-tree aggregation level.
    pub fn workload(&self) -> Workload {
        let mut w = Workload::default();
        let mut nodes_at_depth = 1u64;
        for _ in 0..self.depth {
            w.levels.push((self.estimators * nodes_at_depth, 0));
            nodes_at_depth *= 2;
        }
        w.levels.push((self.estimators, self.total_macs()));
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_counts() {
        let m = XgBoostModel::paper_benchmark();
        assert_eq!(m.nodes_per_tree(), 63);
        assert_eq!(m.total_comparisons(), 6300);
        assert_eq!(m.total_bootstraps(), 6400);
    }

    #[test]
    fn workload_levels_follow_depth() {
        let m = XgBoostModel::paper_benchmark();
        let w = m.workload();
        assert_eq!(w.levels.len(), 7); // 6 depth levels + aggregation
        assert_eq!(w.total_bootstraps(), m.total_bootstraps());
        // Level sizes double per depth: 100, 200, ..., 3200.
        assert_eq!(w.levels[0].0, 100);
        assert_eq!(w.levels[5].0, 3200);
    }
}
