//! An encrypted quantized multi-layer perceptron — the functional heart of
//! the DeepCNN / VGG workloads: leveled (plaintext-weight) dot products
//! between layers, one programmable bootstrap per activation.

use morphling_math::{Torus32, TorusScalar};
use morphling_tfhe::{ops, BatchRequest, Bootstrapper, Lut, LweCiphertext, ServerKey, TfheError};

/// A tiny quantized MLP: 2 inputs → `H` hidden ReLU neurons → binary
/// decision. All weights are small non-negative integers and the value
/// ranges are sized so every intermediate stays inside the plaintext
/// space `[0, p)` — exactly the accumulator-bound reasoning Concrete-ML
/// applies at 8 bits, shrunk to p = 16.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MlpModel {
    /// Hidden-layer weights: `hidden[j] = (w_j0, w_j1, bias_j)`.
    pub hidden: Vec<(i64, i64, u64)>,
    /// Output weights, one per hidden neuron.
    pub output: Vec<i64>,
    /// Decision threshold on the output accumulator.
    pub threshold: u64,
    /// ReLU shift: activation = max(s − shift, 0).
    pub relu_shift: u64,
}

impl MlpModel {
    /// A fixed demo model (hand-picked so that both classes occur).
    pub fn demo() -> Self {
        Self {
            hidden: vec![(2, 1, 0), (1, 2, 1)],
            output: vec![1, 1],
            threshold: 8,
            relu_shift: 3,
        }
    }

    /// Largest value the hidden accumulator can reach for inputs `< x_max`
    /// — must stay below the plaintext modulus.
    pub fn max_hidden_acc(&self, x_max: u64) -> u64 {
        self.hidden
            .iter()
            .map(|&(w0, w1, b)| (w0 as u64 + w1 as u64) * (x_max - 1) + b)
            .max()
            .unwrap_or(0)
    }

    /// Plaintext inference (the reference): returns the class in {0, 1}.
    pub fn infer_clear(&self, x0: u64, x1: u64) -> u64 {
        let mut acc = 0u64;
        for (&(w0, w1, b), &v) in self.hidden.iter().zip(&self.output) {
            let s = (w0 as u64) * x0 + (w1 as u64) * x1 + b;
            let a = s.saturating_sub(self.relu_shift);
            acc += (v as u64) * a;
        }
        u64::from(acc >= self.threshold)
    }

    /// Programmable bootstraps per inference: one ReLU per hidden neuron
    /// plus the final decision.
    pub fn bootstraps_per_inference(&self) -> u64 {
        self.hidden.len() as u64 + 1
    }
}

/// Runs [`MlpModel`]s on encrypted inputs.
#[derive(Debug)]
pub struct EncryptedMlp<'a> {
    server: &'a ServerKey,
}

impl<'a> EncryptedMlp<'a> {
    /// Wrap a server key. The parameter set's plaintext modulus must cover
    /// the model's accumulator range.
    pub fn new(server: &'a ServerKey) -> Self {
        Self { server }
    }

    /// Encrypted inference: leveled affine layers + bootstrapped ReLU +
    /// bootstrapped threshold. Output encrypts the class in {0, 1}.
    pub fn infer(&self, model: &MlpModel, x0: &LweCiphertext, x1: &LweCiphertext) -> LweCiphertext {
        let p = self.server.params().plaintext_modulus;
        let n_poly = self.server.params().poly_size;
        let shift = model.relu_shift;
        let relu = Lut::from_fn(n_poly, p, move |s| s.saturating_sub(shift));
        let inputs = [x0.clone(), x1.clone()];
        let mut acc: Option<LweCiphertext> = None;
        for (&(w0, w1, b), &v) in model.hidden.iter().zip(&model.output) {
            // The bias joins the padded encoding: b / 2p on the torus.
            let s = ops::affine(&inputs, &[w0, w1], Torus32::encode(b, 2 * p));
            let a = self.server.programmable_bootstrap(&s, &relu);
            let term = a.scalar_mul(v);
            acc = Some(match acc {
                Some(prev) => prev.add(&term),
                None => term,
            });
        }
        let acc = acc.expect("at least one hidden neuron");
        let threshold = model.threshold;
        let decide = Lut::from_fn(n_poly, p, move |s| u64::from(s >= threshold));
        self.server.programmable_bootstrap(&acc, &decide)
    }

    /// [`infer`](Self::infer) with all hidden-layer ReLU bootstraps
    /// submitted to any [`Bootstrapper`] backend as one batch — the wave
    /// shape Morphling's scheduler feeds its cores. Works identically
    /// over a [`ServerKey`], a `ParallelServerKey`, a `BootstrapEngine`
    /// pool, or a `Dispatcher`; the backend must wrap a server key
    /// derived from the same client key as `self`. Results are
    /// bit-identical to [`infer`](Self::infer).
    ///
    /// # Errors
    ///
    /// Propagates any [`TfheError`] from the backend.
    pub fn infer_batched<B: Bootstrapper + ?Sized>(
        &self,
        backend: &B,
        model: &MlpModel,
        x0: &LweCiphertext,
        x1: &LweCiphertext,
    ) -> Result<LweCiphertext, TfheError> {
        let p = self.server.params().plaintext_modulus;
        let n_poly = self.server.params().poly_size;
        let shift = model.relu_shift;
        let relu = Lut::from_fn(n_poly, p, move |s| s.saturating_sub(shift));
        let inputs = [x0.clone(), x1.clone()];
        // Leveled affine layer for every hidden neuron (no bootstraps)...
        let sums: Vec<LweCiphertext> = model
            .hidden
            .iter()
            .map(|&(w0, w1, b)| ops::affine(&inputs, &[w0, w1], Torus32::encode(b, 2 * p)))
            .collect();
        // ...then one wave of ReLU bootstraps through the backend.
        let activations = backend.try_bootstrap_batch(&BatchRequest::shared(sums, relu))?;
        let acc = activations
            .iter()
            .zip(&model.output)
            .map(|(a, &v)| a.scalar_mul(v))
            .reduce(|acc, term| acc.add(&term))
            .expect("at least one hidden neuron");
        let threshold = model.threshold;
        let decide = Lut::from_fn(n_poly, p, move |s| u64::from(s >= threshold));
        self.server.try_programmable_bootstrap(&acc, &decide)
    }

    /// Inference returning the class **and** a decision margin — how far
    /// the output accumulator sits above the threshold, clamped to
    /// `[0, 3]` — with both LUTs evaluated from *one* blind rotation of
    /// the final accumulator via
    /// [multi-value bootstrapping](ServerKey::try_programmable_bootstrap_many).
    /// A second read of the same accumulator is free where a second
    /// bootstrap used to be the price of the extra output.
    ///
    /// Both outputs decode exactly like their single-LUT counterparts
    /// (the shared-rotation derivation adds bounded noise, absorbed by
    /// the small output ranges).
    ///
    /// # Errors
    ///
    /// Propagates any [`TfheError`] from the bootstrap.
    pub fn infer_with_margin(
        &self,
        model: &MlpModel,
        x0: &LweCiphertext,
        x1: &LweCiphertext,
    ) -> Result<(LweCiphertext, LweCiphertext), TfheError> {
        let p = self.server.params().plaintext_modulus;
        let n_poly = self.server.params().poly_size;
        let shift = model.relu_shift;
        let relu = Lut::from_fn(n_poly, p, move |s| s.saturating_sub(shift));
        let inputs = [x0.clone(), x1.clone()];
        let mut acc: Option<LweCiphertext> = None;
        for (&(w0, w1, b), &v) in model.hidden.iter().zip(&model.output) {
            let s = ops::affine(&inputs, &[w0, w1], Torus32::encode(b, 2 * p));
            let a = self.server.try_programmable_bootstrap(&s, &relu)?;
            let term = a.scalar_mul(v);
            acc = Some(match acc {
                Some(prev) => prev.add(&term),
                None => term,
            });
        }
        let acc = acc.expect("at least one hidden neuron");
        let threshold = model.threshold;
        let decide = Lut::from_fn(n_poly, p, move |s| u64::from(s >= threshold));
        let margin = Lut::from_fn(n_poly, p, move |s| s.saturating_sub(threshold).min(3));
        let mut outs = self
            .server
            .try_programmable_bootstrap_many(&acc, &[decide, margin])?;
        let margin_ct = outs.pop().expect("two outputs for two LUTs");
        let class_ct = outs.pop().expect("two outputs for two LUTs");
        Ok((class_ct, margin_ct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_tfhe::{ClientKey, ParamSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encrypted_mlp_matches_plaintext_on_all_inputs() {
        let mut rng = StdRng::seed_from_u64(201);
        let params = ParamSet::TestMedium.params().with_plaintext_modulus(16);
        let ck = ClientKey::generate(params, &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let mlp = EncryptedMlp::new(&sk);
        let model = MlpModel::demo();
        assert!(
            model.max_hidden_acc(4) < 16,
            "accumulator must fit the plaintext space"
        );
        let mut classes = [0u64; 2];
        for x0 in 0..4u64 {
            for x1 in 0..4u64 {
                let c0 = ck.encrypt(x0, &mut rng);
                let c1 = ck.encrypt(x1, &mut rng);
                let out = ck.decrypt(&mlp.infer(&model, &c0, &c1));
                assert_eq!(out, model.infer_clear(x0, x1), "x0={x0} x1={x1}");
                classes[out as usize] += 1;
            }
        }
        // Both classes occur — the demo model is not degenerate.
        assert!(classes[0] > 0 && classes[1] > 0);
    }

    #[test]
    fn bootstrap_count() {
        assert_eq!(MlpModel::demo().bootstraps_per_inference(), 3);
    }

    #[test]
    fn batched_inference_is_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(202);
        let params = ParamSet::TestMedium.params().with_plaintext_modulus(16);
        let ck = ClientKey::generate(params, &mut rng);
        let sk = std::sync::Arc::new(ServerKey::new(&ck, &mut rng));
        let engine = morphling_tfhe::BootstrapEngine::builder()
            .workers(2)
            .build(std::sync::Arc::clone(&sk))
            .unwrap();
        let mlp = EncryptedMlp::new(&sk);
        let model = MlpModel::demo();
        for (x0, x1) in [(0u64, 0u64), (1, 3), (3, 1), (3, 3)] {
            let c0 = ck.encrypt(x0, &mut rng);
            let c1 = ck.encrypt(x1, &mut rng);
            let seq = mlp.infer(&model, &c0, &c1);
            let bat = mlp.infer_batched(&engine, &model, &c0, &c1).unwrap();
            assert_eq!(seq, bat, "x0={x0} x1={x1}");
            assert_eq!(ck.decrypt(&bat), model.infer_clear(x0, x1));
        }
        // Two hidden ReLUs per inference go through the engine.
        assert_eq!(engine.stats().bootstraps, 4 * 2);
    }

    #[test]
    fn margin_inference_decodes_class_and_distance() {
        let mut rng = StdRng::seed_from_u64(206);
        let params = ParamSet::TestMedium.params().with_plaintext_modulus(16);
        let ck = ClientKey::generate(params, &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let mlp = EncryptedMlp::new(&sk);
        let model = MlpModel::demo();
        for (x0, x1) in [(0u64, 0u64), (1, 3), (3, 1), (3, 3)] {
            let c0 = ck.encrypt(x0, &mut rng);
            let c1 = ck.encrypt(x1, &mut rng);
            let (class, margin) = mlp.infer_with_margin(&model, &c0, &c1).unwrap();
            assert_eq!(
                ck.decrypt(&class),
                model.infer_clear(x0, x1),
                "x0={x0} x1={x1}"
            );
            // Clear margin: accumulator distance above the threshold, ≤ 3.
            let mut acc = 0u64;
            for (&(w0, w1, b), &v) in model.hidden.iter().zip(&model.output) {
                let s = (w0 as u64) * x0 + (w1 as u64) * x1 + b;
                acc += (v as u64) * s.saturating_sub(model.relu_shift);
            }
            let expect = acc.saturating_sub(model.threshold).min(3);
            assert_eq!(ck.decrypt(&margin), expect, "x0={x0} x1={x1}");
        }
    }
}
