//! Encrypted decision-tree inference — the functional heart of the
//! XG-Boost workload: every threshold comparison is one programmable
//! bootstrap, and leaf selection is one more (Concrete-ML's oblivious
//! evaluation, shrunk to demo size).

use morphling_tfhe::{
    BatchRequest, Bootstrapper, ClientKey, Lut, LweCiphertext, ServerKey, TfheError,
};

/// A depth-2 binary decision tree over small integer features.
///
/// Node 0 (root) tests `features[f0] ≥ t0`; node 1 is taken when the root
/// is false, node 2 when true. Leaves are indexed by the decision triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionTree {
    /// `(feature index, threshold)` of the root.
    pub root: (usize, u64),
    /// Left child test (root = 0).
    pub left: (usize, u64),
    /// Right child test (root = 1).
    pub right: (usize, u64),
    /// Leaf classes indexed by `(root, taken-child)`: `[00, 01, 10, 11]`.
    pub leaves: [u64; 4],
}

impl DecisionTree {
    /// Plaintext evaluation (the reference).
    pub fn classify_clear(&self, features: &[u64]) -> u64 {
        let d0 = u64::from(features[self.root.0] >= self.root.1);
        let child = if d0 == 1 { self.right } else { self.left };
        let d1 = u64::from(features[child.0] >= child.1);
        self.leaves[(2 * d0 + d1) as usize]
    }

    /// Distinct features the tree tests, each paired with the node tests
    /// (0 = root, 1 = left, 2 = right) that read it, in first-appearance
    /// order. This is the grouping multi-value bootstrapping exploits:
    /// every test of one feature evaluates from a *single* blind rotation,
    /// so a tree whose children share a feature costs `node_groups().len()`
    /// rotations instead of three.
    pub fn node_groups(&self) -> Vec<(usize, Vec<usize>)> {
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (node, &(feat, _)) in [self.root, self.left, self.right].iter().enumerate() {
            match groups.iter_mut().find(|(f, _)| *f == feat) {
                Some((_, nodes)) => nodes.push(node),
                None => groups.push((feat, vec![node])),
            }
        }
        groups
    }
}

/// Evaluates [`DecisionTree`]s on encrypted features.
#[derive(Debug)]
pub struct EncryptedTreeEvaluator<'a> {
    server: &'a ServerKey,
}

impl<'a> EncryptedTreeEvaluator<'a> {
    /// Wrap a server key.
    pub fn new(server: &'a ServerKey) -> Self {
        Self { server }
    }

    /// Number of programmable bootstraps one classification costs: the
    /// three oblivious comparisons plus the leaf lookup.
    pub const BOOTSTRAPS_PER_INFERENCE: u64 = 4;

    /// Classify encrypted features. All three node comparisons run
    /// obliviously (data-independent — the batching-friendly shape the
    /// paper schedules); the decision triple is packed into an index and a
    /// final bootstrap reads the leaf table.
    pub fn classify(&self, tree: &DecisionTree, features: &[LweCiphertext]) -> LweCiphertext {
        let p = self.server.params().plaintext_modulus;
        let n_poly = self.server.params().poly_size;
        let ge = |threshold: u64| Lut::from_fn(n_poly, p, move |x| u64::from(x >= threshold));
        let d0 = self
            .server
            .programmable_bootstrap(&features[tree.root.0], &ge(tree.root.1));
        let d1 = self
            .server
            .programmable_bootstrap(&features[tree.left.0], &ge(tree.left.1));
        let d2 = self
            .server
            .programmable_bootstrap(&features[tree.right.0], &ge(tree.right.1));
        // index = 4·d0 + 2·d1 + d2 ∈ [0, 8).
        let index = d0.scalar_mul(4).add(&d1.scalar_mul(2)).add(&d2);
        let leaves = tree.leaves;
        let leaf_lut = Lut::from_fn(n_poly, p, move |idx| {
            let d0 = (idx >> 2) & 1;
            let d1 = (idx >> 1) & 1;
            let d2 = idx & 1;
            let taken = if d0 == 1 { d2 } else { d1 };
            leaves[(2 * d0 + taken) as usize]
        });
        self.server.programmable_bootstrap(&index, &leaf_lut)
    }

    /// [`classify`](Self::classify) with the three oblivious comparisons
    /// submitted to any [`Bootstrapper`] backend as one multi-LUT wave
    /// (each comparison tests a different threshold, so each ciphertext
    /// routes to its own LUT). The backend must wrap a server key derived
    /// from the same client key as `self`. Results are bit-identical to
    /// [`classify`](Self::classify).
    ///
    /// # Errors
    ///
    /// Propagates any [`TfheError`] from the backend.
    pub fn classify_batched<B: Bootstrapper + ?Sized>(
        &self,
        backend: &B,
        tree: &DecisionTree,
        features: &[LweCiphertext],
    ) -> Result<LweCiphertext, TfheError> {
        let p = self.server.params().plaintext_modulus;
        let n_poly = self.server.params().poly_size;
        let ge = |threshold: u64| Lut::from_fn(n_poly, p, move |x| u64::from(x >= threshold));
        let luts = vec![ge(tree.root.1), ge(tree.left.1), ge(tree.right.1)];
        let cts = vec![
            features[tree.root.0].clone(),
            features[tree.left.0].clone(),
            features[tree.right.0].clone(),
        ];
        let req = BatchRequest::per_item(cts, luts, vec![0, 1, 2])?;
        let decisions = backend.try_bootstrap_batch(&req)?;
        let (d0, d1, d2) = (&decisions[0], &decisions[1], &decisions[2]);
        let index = d0.scalar_mul(4).add(&d1.scalar_mul(2)).add(d2);
        let leaves = tree.leaves;
        let leaf_lut = Lut::from_fn(n_poly, p, move |idx| {
            let d0 = (idx >> 2) & 1;
            let d1 = (idx >> 1) & 1;
            let d2 = idx & 1;
            let taken = if d0 == 1 { d2 } else { d1 };
            leaves[(2 * d0 + taken) as usize]
        });
        self.server.try_programmable_bootstrap(&index, &leaf_lut)
    }

    /// [`classify`](Self::classify) with the node comparisons grouped by
    /// feature into a **fanout** [`BatchRequest`]: every threshold test of
    /// one feature evaluates from a single blind rotation via multi-value
    /// bootstrapping ([`DecisionTree::node_groups`]). The demo-shaped tree
    /// whose children share a feature costs 2 rotations instead of 3.
    ///
    /// Outputs decode identically to [`classify`](Self::classify) but are
    /// *not* bit-identical: the shared-rotation derivation carries a small
    /// (bounded) noise amplification, which the final leaf-lookup
    /// bootstrap absorbs.
    ///
    /// # Errors
    ///
    /// Propagates any [`TfheError`] from the backend.
    pub fn classify_multivalue<B: Bootstrapper + ?Sized>(
        &self,
        backend: &B,
        tree: &DecisionTree,
        features: &[LweCiphertext],
    ) -> Result<LweCiphertext, TfheError> {
        let p = self.server.params().plaintext_modulus;
        let n_poly = self.server.params().poly_size;
        let ge = |threshold: u64| Lut::from_fn(n_poly, p, move |x| u64::from(x >= threshold));
        let luts = vec![ge(tree.root.1), ge(tree.left.1), ge(tree.right.1)];
        let groups = tree.node_groups();
        let cts: Vec<LweCiphertext> = groups.iter().map(|&(f, _)| features[f].clone()).collect();
        let fanout: Vec<Vec<usize>> = groups.iter().map(|(_, nodes)| nodes.clone()).collect();
        let outs = backend.try_bootstrap_batch(&BatchRequest::fanned_out(cts, luts, fanout)?)?;
        // Un-flatten the group-major outputs back into node order.
        let mut decisions: Vec<Option<LweCiphertext>> = vec![None; 3];
        let mut outs = outs.into_iter();
        for (_, nodes) in &groups {
            for &node in nodes {
                decisions[node] = outs.next();
            }
        }
        let d: Vec<LweCiphertext> = decisions
            .into_iter()
            .map(|o| o.expect("backend returned one output per node test"))
            .collect();
        let index = d[0].scalar_mul(4).add(&d[1].scalar_mul(2)).add(&d[2]);
        let leaves = tree.leaves;
        let leaf_lut = Lut::from_fn(n_poly, p, move |idx| {
            let d0 = (idx >> 2) & 1;
            let d1 = (idx >> 1) & 1;
            let d2 = idx & 1;
            let taken = if d0 == 1 { d2 } else { d1 };
            leaves[(2 * d0 + taken) as usize]
        });
        self.server.try_programmable_bootstrap(&index, &leaf_lut)
    }

    /// Classify and decrypt (testing convenience; needs the client key).
    pub fn classify_and_decrypt(
        &self,
        tree: &DecisionTree,
        features: &[LweCiphertext],
        client: &ClientKey,
    ) -> u64 {
        client.decrypt(&self.classify(tree, features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_tfhe::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encrypted_tree_matches_plaintext_on_all_inputs() {
        let mut rng = StdRng::seed_from_u64(200);
        let params = ParamSet::TestMedium.params(); // p = 8
        let ck = ClientKey::generate(params, &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let eval = EncryptedTreeEvaluator::new(&sk);
        let tree = DecisionTree {
            root: (0, 4),
            left: (1, 2),
            right: (1, 6),
            leaves: [0, 1, 2, 3],
        };
        for x0 in [0u64, 3, 4, 7] {
            for x1 in [0u64, 2, 5, 7] {
                let feats = vec![ck.encrypt(x0, &mut rng), ck.encrypt(x1, &mut rng)];
                let got = eval.classify_and_decrypt(&tree, &feats, &ck);
                assert_eq!(got, tree.classify_clear(&[x0, x1]), "x0={x0} x1={x1}");
            }
        }
    }

    #[test]
    fn batched_classification_is_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(203);
        let params = ParamSet::TestMedium.params();
        let ck = ClientKey::generate(params, &mut rng);
        let sk = std::sync::Arc::new(ServerKey::new(&ck, &mut rng));
        let engine = morphling_tfhe::BootstrapEngine::builder()
            .workers(3)
            .build(std::sync::Arc::clone(&sk))
            .unwrap();
        let eval = EncryptedTreeEvaluator::new(&sk);
        let tree = DecisionTree {
            root: (0, 4),
            left: (1, 2),
            right: (1, 6),
            leaves: [0, 1, 2, 3],
        };
        for (x0, x1) in [(0u64, 0u64), (3, 5), (4, 2), (7, 7)] {
            let feats = vec![ck.encrypt(x0, &mut rng), ck.encrypt(x1, &mut rng)];
            let seq = eval.classify(&tree, &feats);
            let bat = eval.classify_batched(&engine, &tree, &feats).unwrap();
            assert_eq!(seq, bat, "x0={x0} x1={x1}");
            assert_eq!(ck.decrypt(&bat), tree.classify_clear(&[x0, x1]));
        }
        // The three oblivious comparisons per call went through the pool.
        assert_eq!(engine.stats().bootstraps, 4 * 3);
    }

    #[test]
    fn node_groups_fold_shared_features() {
        let shared = DecisionTree {
            root: (0, 4),
            left: (1, 2),
            right: (1, 6),
            leaves: [0, 1, 2, 3],
        };
        assert_eq!(shared.node_groups(), vec![(0, vec![0]), (1, vec![1, 2])]);
        let disjoint = DecisionTree {
            root: (0, 4),
            left: (1, 2),
            right: (2, 6),
            leaves: [0, 1, 2, 3],
        };
        assert_eq!(disjoint.node_groups().len(), 3);
    }

    #[test]
    fn multivalue_classification_decodes_like_sequential() {
        let mut rng = StdRng::seed_from_u64(205);
        let params = ParamSet::TestMedium.params();
        let ck = ClientKey::generate(params, &mut rng);
        let sk = std::sync::Arc::new(ServerKey::new(&ck, &mut rng));
        let engine = morphling_tfhe::BootstrapEngine::builder()
            .workers(2)
            .build(std::sync::Arc::clone(&sk))
            .unwrap();
        let eval = EncryptedTreeEvaluator::new(&sk);
        // Both children test feature 1 → two rotations per classification.
        let tree = DecisionTree {
            root: (0, 4),
            left: (1, 2),
            right: (1, 6),
            leaves: [0, 1, 2, 3],
        };
        for (x0, x1) in [(0u64, 0u64), (3, 5), (4, 2), (7, 7)] {
            let feats = vec![ck.encrypt(x0, &mut rng), ck.encrypt(x1, &mut rng)];
            let fused = eval.classify_multivalue(&engine, &tree, &feats).unwrap();
            assert_eq!(
                ck.decrypt(&fused),
                tree.classify_clear(&[x0, x1]),
                "x0={x0} x1={x1}"
            );
        }
        // 2 rotations (not 3) per classification, still 3 extractions.
        let stats = engine.stats();
        assert_eq!(stats.bootstraps, 4 * 2);
        assert_eq!(stats.extractions, 4 * 3);
    }
}
