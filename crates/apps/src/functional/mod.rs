//! Functional encrypted-inference demos running on the real TFHE
//! substrate — small-scale versions of the Table VI applications that
//! actually compute on ciphertexts (and are verified against plaintext).

mod mlp;
mod tree;

pub use mlp::{EncryptedMlp, MlpModel};
pub use tree::{DecisionTree, EncryptedTreeEvaluator};
