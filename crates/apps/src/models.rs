//! The paper's benchmark networks (§VI-A): DeepCNN-X and VGG-9.

use morphling_core::sched::Workload;

use crate::layers::{Layer, Shape};

/// A feed-forward network: an input shape plus a layer list. Each layer is
/// one scheduling level (its activations are mutually independent; layers
/// are sequentially dependent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Network {
    /// Model name.
    pub name: String,
    /// Input feature-map shape.
    pub input: Shape,
    /// Layers in order.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Per-layer `(bootstraps, leveled MACs)` in order.
    pub fn level_costs(&self) -> Vec<(u64, u64)> {
        let mut shape = self.input;
        self.layers
            .iter()
            .map(|l| {
                let cost = (l.bootstraps(shape), l.macs(shape));
                shape = l.output_shape(shape);
                cost
            })
            .collect()
    }

    /// Total programmable bootstraps for one inference.
    pub fn total_bootstraps(&self) -> u64 {
        self.level_costs().iter().map(|&(b, _)| b).sum()
    }

    /// Total leveled MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        self.level_costs().iter().map(|&(_, m)| m).sum()
    }

    /// Convert to a schedulable [`Workload`] (one level per layer; layers
    /// with zero bootstraps fold their MACs into the previous level).
    pub fn workload(&self) -> Workload {
        let mut w = Workload::default();
        for (bootstraps, macs) in self.level_costs() {
            if bootstraps == 0 {
                if let Some(last) = w.levels.last_mut() {
                    last.1 += macs;
                    continue;
                }
            }
            w.levels.push((bootstraps, macs));
        }
        w
    }

    /// Output shape of the full network.
    pub fn output_shape(&self) -> Shape {
        self.layers
            .iter()
            .fold(self.input, |s, l| l.output_shape(s))
    }
}

/// DeepCNN-X (§VI-A): 8×8×1 input; 3×3 conv (2 filters); 3×3 conv
/// (92 filters, stride 2); `x` 1×1 conv layers (92 filters) — each costing
/// 368 ReLUs; a 2×2 conv (16 filters); a 10-neuron FC classifier.
pub fn deep_cnn(x: usize) -> Network {
    let mut layers = vec![
        Layer::Conv2d {
            kernel: 3,
            filters: 2,
            stride: 1,
            padding: 0,
            relu: true,
        },
        Layer::Conv2d {
            kernel: 3,
            filters: 92,
            stride: 2,
            padding: 0,
            relu: true,
        },
    ];
    layers.extend(std::iter::repeat_n(
        Layer::Conv2d {
            kernel: 1,
            filters: 92,
            stride: 1,
            padding: 0,
            relu: true,
        },
        x,
    ));
    layers.push(Layer::Conv2d {
        kernel: 2,
        filters: 16,
        stride: 1,
        padding: 0,
        relu: true,
    });
    layers.push(Layer::Dense {
        neurons: 10,
        relu: false,
    });
    Network {
        name: format!("DeepCNN-{x}"),
        input: Shape::new(8, 8, 1),
        layers,
    }
}

/// VGG-9 (§VI-A): 32×32×3 CIFAR-10 input; six `same`-padded 3×3 conv
/// layers with 64, 64, 128, 128, 256, 256 filters; 2×2 average pooling
/// after the 2nd and 4th conv; FC 512, 512, 10.
pub fn vgg9() -> Network {
    let conv = |filters: usize| Layer::Conv2d {
        kernel: 3,
        filters,
        stride: 1,
        padding: 1,
        relu: true,
    };
    Network {
        name: "VGG-9".to_string(),
        input: Shape::new(32, 32, 3),
        layers: vec![
            conv(64),                   // 32×32×64
            conv(64),                   // 32×32×64
            Layer::AvgPool { size: 2 }, // 16×16×64
            conv(128),                  // 16×16×128
            conv(128),                  // 16×16×128
            Layer::AvgPool { size: 2 }, // 8×8×128
            conv(256),                  // 8×8×256
            conv(256),                  // 8×8×256
            Layer::Dense {
                neurons: 512,
                relu: true,
            },
            Layer::Dense {
                neurons: 512,
                relu: true,
            },
            Layer::Dense {
                neurons: 10,
                relu: false,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::PBS_PER_ACTIVATION;

    #[test]
    fn deep_cnn_bootstrap_counts() {
        // 6×6×2 + 2×2×92 + X·(2×2×92) + 1×1×16 activations (none for the
        // final FC): each 1×1 layer costs the paper's "368 ReLU".
        for x in [20usize, 50, 100] {
            let net = deep_cnn(x);
            let acts = 72 + 368 + (x as u64) * 368 + 16;
            assert_eq!(net.total_bootstraps(), acts * PBS_PER_ACTIVATION, "X={x}");
            assert_eq!(net.output_shape().elements(), 10);
        }
    }

    #[test]
    fn deep_cnn_layer_count() {
        assert_eq!(deep_cnn(20).layers.len(), 24);
        // The bootstrap-free FC folds into the previous level.
        assert_eq!(deep_cnn(20).workload().levels.len(), 23);
    }

    #[test]
    fn vgg9_structure() {
        let net = vgg9();
        assert_eq!(net.output_shape().elements(), 10);
        // Six conv layers with ReLU + 2 FC ReLUs; ≈ 230k activations.
        let acts = net.total_bootstraps() / PBS_PER_ACTIVATION;
        assert!((200_000..260_000).contains(&acts), "acts = {acts}");
    }

    #[test]
    fn workload_folds_leveled_layers() {
        let net = vgg9();
        // Pools and the last FC have no bootstraps; they fold into the
        // previous level, so levels = layers-with-bootstraps.
        assert_eq!(net.workload().levels.len(), 8);
    }

    #[test]
    fn macs_are_positive_everywhere() {
        for (b, m) in deep_cnn(20).level_costs() {
            assert!(m > 0);
            let _ = b;
        }
    }
}
