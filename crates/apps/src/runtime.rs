//! Execution-time estimation for Table VI: applications mapped onto the
//! Morphling simulator versus a calibrated multi-core CPU baseline.

use morphling_core::sched::Workload;
use morphling_core::sim::Simulator;
use morphling_core::ArchConfig;
use morphling_tfhe::{ParamSet, TfheParams};

/// CPU baseline model: a 64-core Xeon Gold 6226R running Concrete (the
/// paper's Table VI testbed). Per-core bootstrap throughput comes from the
/// paper's own Table V CPU rows; multi-core scaling uses a parallel
/// efficiency factor (memory-bandwidth limits keep it well below 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Single-core bootstraps per second at the chosen parameter set.
    pub single_core_bs_s: f64,
    /// Number of cores.
    pub cores: u32,
    /// Parallel efficiency in (0, 1].
    pub parallel_efficiency: f64,
    /// Aggregate leveled-MAC throughput (MAC/s).
    pub mac_per_s: f64,
}

impl CpuModel {
    /// The Table VI testbed at 128-bit parameters (set III: 12 BS/s per
    /// core from Table V; 64 cores at 50% scaling).
    pub fn xeon_6226r_set_iii() -> Self {
        Self {
            single_core_bs_s: 12.0,
            cores: 64,
            parallel_efficiency: 0.5,
            mac_per_s: 5e10,
        }
    }

    /// Calibrate the single-core bootstrap rate from measured
    /// [`EngineStats`](morphling_tfhe::EngineStats) — the engine's `busy`
    /// counter sums per-worker time inside jobs, so `bootstraps / busy`
    /// *is* the per-core rate, independent of how many workers ran.
    /// Scaling (`cores`, `parallel_efficiency`) and the MAC rate are taken
    /// from `baseline` so a locally measured rate can be projected onto
    /// the paper's 64-core testbed.
    ///
    /// Returns `baseline` unchanged if the stats contain no completed
    /// bootstraps (nothing to calibrate from).
    pub fn from_engine_stats(stats: &morphling_tfhe::EngineStats, baseline: Self) -> Self {
        let rate = stats.bootstraps_per_core_sec();
        if rate > 0.0 {
            Self {
                single_core_bs_s: rate,
                ..baseline
            }
        } else {
            baseline
        }
    }

    /// Effective aggregate bootstrap throughput.
    pub fn bs_per_s(&self) -> f64 {
        self.single_core_bs_s * self.cores as f64 * self.parallel_efficiency
    }

    /// Seconds to run a workload (bootstrap-throughput bound; leveled MACs
    /// added at the aggregate MAC rate).
    pub fn workload_seconds(&self, workload: &Workload) -> f64 {
        let bs = workload.total_bootstraps() as f64 / self.bs_per_s();
        let macs: u64 = workload.levels.iter().map(|&(_, m)| m).sum();
        bs + macs as f64 / self.mac_per_s
    }
}

/// The full application runtime: accelerator simulator + parameter set +
/// CPU baseline.
#[derive(Clone, Debug)]
pub struct AppRuntime {
    sim: Simulator,
    params: TfheParams,
    cpu: CpuModel,
}

impl AppRuntime {
    /// The paper's configuration: default Morphling, 128-bit set III,
    /// 64-core CPU baseline.
    pub fn paper_default() -> Self {
        Self {
            sim: Simulator::new(ArchConfig::morphling_default()),
            params: ParamSet::III.params(),
            cpu: CpuModel::xeon_6226r_set_iii(),
        }
    }

    /// Custom construction.
    pub fn new(config: ArchConfig, params: TfheParams, cpu: CpuModel) -> Self {
        Self {
            sim: Simulator::new(config),
            params,
            cpu,
        }
    }

    /// The TFHE parameter set applications run at.
    pub fn params(&self) -> &TfheParams {
        &self.params
    }

    /// The simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Morphling execution time for a workload: per dependency level, the
    /// level's bootstraps run in waves of in-flight ciphertexts; leveled
    /// MACs run on the VPU (overlapped with the next level's bootstraps in
    /// hardware, charged serially here — they are orders of magnitude
    /// smaller).
    pub fn morphling_seconds(&self, workload: &Workload) -> f64 {
        let cfg = self.sim.config();
        let vpu_mac_s = cfg.vpu_macs_per_cycle() as f64 * cfg.clock_hz();
        workload
            .levels
            .iter()
            .map(|&(bootstraps, macs)| {
                self.sim
                    .batch_time_seconds(&self.params, bootstraps, bootstraps)
                    + macs as f64 / vpu_mac_s
            })
            .sum()
    }
}

/// A Table VI row: both platforms' execution times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Morphling execution time in seconds.
    pub morphling_seconds: f64,
    /// CPU execution time in seconds.
    pub cpu_seconds: f64,
}

impl Estimate {
    /// CPU-over-Morphling speedup.
    pub fn speedup(&self) -> f64 {
        self.cpu_seconds / self.morphling_seconds
    }
}

/// Estimate both columns of Table VI for one workload.
pub fn estimate(workload: &Workload, runtime: &AppRuntime) -> Estimate {
    Estimate {
        morphling_seconds: runtime.morphling_seconds(workload),
        cpu_seconds: runtime.cpu.workload_seconds(workload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::deep_cnn;
    use crate::xgboost::XgBoostModel;

    #[test]
    fn deep_cnn_times_land_on_table_vi() {
        let rt = AppRuntime::paper_default();
        // Paper: 0.34 / 0.84 / 1.72 s on Morphling; 33.3 / 74.9 / 180.1 s
        // on the CPU.
        for (x, paper_m, paper_c) in [(20, 0.34, 33.32), (50, 0.84, 74.94), (100, 1.72, 180.09)] {
            let est = estimate(&deep_cnn(x).workload(), &rt);
            let m_ratio = est.morphling_seconds / paper_m;
            let c_ratio = est.cpu_seconds / paper_c;
            assert!(
                (0.7..1.4).contains(&m_ratio),
                "DeepCNN-{x}: morphling {} vs {paper_m}",
                est.morphling_seconds
            );
            assert!(
                (0.7..1.4).contains(&c_ratio),
                "DeepCNN-{x}: cpu {} vs {paper_c}",
                est.cpu_seconds
            );
        }
    }

    #[test]
    fn speedups_are_in_the_papers_range() {
        // Paper: 88–144× across the five applications.
        let rt = AppRuntime::paper_default();
        let apps: Vec<morphling_core::sched::Workload> = vec![
            XgBoostModel::paper_benchmark().workload(),
            deep_cnn(20).workload(),
            deep_cnn(100).workload(),
            crate::models::vgg9().workload(),
        ];
        for w in &apps {
            let s = estimate(w, &rt).speedup();
            assert!((60.0..200.0).contains(&s), "speedup {s}");
        }
    }

    #[test]
    fn deep_cnn_runs_sub_second_up_to_50_layers() {
        // The paper's headline: "various deep learning models with
        // sub-second latency".
        let rt = AppRuntime::paper_default();
        assert!(estimate(&deep_cnn(20).workload(), &rt).morphling_seconds < 1.0);
        assert!(estimate(&deep_cnn(50).workload(), &rt).morphling_seconds < 1.0);
    }

    #[test]
    fn cpu_model_throughput() {
        let cpu = CpuModel::xeon_6226r_set_iii();
        assert!((cpu.bs_per_s() - 384.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_model_calibrates_from_engine_stats() {
        let stats = morphling_tfhe::EngineStats {
            workers: 4,
            batches: 10,
            bootstraps: 200,
            busy: std::time::Duration::from_secs(4),
            ..morphling_tfhe::EngineStats::default()
        };
        let cpu = CpuModel::from_engine_stats(&stats, CpuModel::xeon_6226r_set_iii());
        // 200 bootstraps over 4 busy core-seconds → 50 BS/s per core.
        assert!((cpu.single_core_bs_s - 50.0).abs() < 1e-9);
        assert_eq!(cpu.cores, 64);
        assert!((cpu.bs_per_s() - 50.0 * 64.0 * 0.5).abs() < 1e-6);

        let empty = morphling_tfhe::EngineStats::default();
        assert_eq!(
            CpuModel::from_engine_stats(&empty, CpuModel::xeon_6226r_set_iii()),
            CpuModel::xeon_6226r_set_iii()
        );
    }
}
