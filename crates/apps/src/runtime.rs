//! Execution-time estimation for Table VI: applications mapped onto the
//! Morphling simulator versus a calibrated multi-core CPU baseline —
//! plus the [`InferenceDriver`], a wave-batching serving front-end that
//! runs the functional demos through any [`Bootstrapper`] backend.

use crate::functional::{DecisionTree, MlpModel};
use morphling_core::sched::Workload;
use morphling_core::sim::Simulator;
use morphling_core::ArchConfig;
use morphling_math::{Torus32, TorusScalar};
use morphling_tfhe::{
    ops, BatchRequest, Bootstrapper, Lut, LweCiphertext, ParamSet, ServerKey, TfheError, TfheParams,
};

/// CPU baseline model: a 64-core Xeon Gold 6226R running Concrete (the
/// paper's Table VI testbed). Per-core bootstrap throughput comes from the
/// paper's own Table V CPU rows; multi-core scaling uses a parallel
/// efficiency factor (memory-bandwidth limits keep it well below 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Single-core bootstraps per second at the chosen parameter set.
    pub single_core_bs_s: f64,
    /// Number of cores.
    pub cores: u32,
    /// Parallel efficiency in (0, 1].
    pub parallel_efficiency: f64,
    /// Aggregate leveled-MAC throughput (MAC/s).
    pub mac_per_s: f64,
}

impl CpuModel {
    /// The Table VI testbed at 128-bit parameters (set III: 12 BS/s per
    /// core from Table V; 64 cores at 50% scaling).
    pub fn xeon_6226r_set_iii() -> Self {
        Self {
            single_core_bs_s: 12.0,
            cores: 64,
            parallel_efficiency: 0.5,
            mac_per_s: 5e10,
        }
    }

    /// Calibrate the single-core bootstrap rate from measured
    /// [`EngineStats`](morphling_tfhe::EngineStats) — the engine's `busy`
    /// counter sums per-worker time inside jobs, so `bootstraps / busy`
    /// *is* the per-core rate, independent of how many workers ran.
    /// Scaling (`cores`, `parallel_efficiency`) and the MAC rate are taken
    /// from `baseline` so a locally measured rate can be projected onto
    /// the paper's 64-core testbed.
    ///
    /// Returns `baseline` unchanged if the stats contain no completed
    /// bootstraps (nothing to calibrate from).
    pub fn from_engine_stats(stats: &morphling_tfhe::EngineStats, baseline: Self) -> Self {
        let rate = stats.bootstraps_per_core_sec();
        if rate > 0.0 {
            Self {
                single_core_bs_s: rate,
                ..baseline
            }
        } else {
            baseline
        }
    }

    /// Calibrate a model of **this machine** from measured
    /// [`EngineStats`](morphling_tfhe::EngineStats): the per-core rate
    /// from `bootstraps / busy`, the core count from the engine's own
    /// worker count. Unlike [`from_engine_stats`](Self::from_engine_stats)
    /// — which projects a measured rate onto the paper's 64-core testbed —
    /// this describes the hardware the engine actually ran on, which is
    /// what the serving autotuner needs. The MAC rate is scaled from the
    /// Table VI baseline proportionally to the core count.
    ///
    /// Returns `None` if the stats contain no completed bootstraps.
    pub fn from_engine_stats_local(stats: &morphling_tfhe::EngineStats) -> Option<Self> {
        let rate = stats.bootstraps_per_core_sec();
        if rate > 0.0 && stats.workers > 0 {
            let baseline = Self::xeon_6226r_set_iii();
            let cores = stats.workers as u32;
            Some(Self {
                single_core_bs_s: rate,
                cores,
                // Small local worker pools scale almost linearly; the 0.5
                // factor models 64-core memory-bandwidth collapse.
                parallel_efficiency: 0.85,
                mac_per_s: baseline.mac_per_s * cores as f64 / baseline.cores as f64,
            })
        } else {
            None
        }
    }

    /// Bridge into the serving autotuner: this CPU model expressed as a
    /// [`ServiceModel`](morphling_tfhe::ServiceModel) (per-bootstrap cost
    /// is the inverse single-core rate; the parallel efficiency carries
    /// over; per-batch overhead keeps the autotuner's default).
    pub fn service_model(&self) -> morphling_tfhe::ServiceModel {
        let mut model = morphling_tfhe::ServiceModel::new(std::time::Duration::from_secs_f64(
            (1.0 / self.single_core_bs_s).max(1e-9),
        ));
        model.parallel_efficiency = self.parallel_efficiency;
        model
    }

    /// Effective aggregate bootstrap throughput.
    pub fn bs_per_s(&self) -> f64 {
        self.single_core_bs_s * self.cores as f64 * self.parallel_efficiency
    }

    /// Seconds to run a workload (bootstrap-throughput bound; leveled MACs
    /// added at the aggregate MAC rate).
    pub fn workload_seconds(&self, workload: &Workload) -> f64 {
        let bs = workload.total_bootstraps() as f64 / self.bs_per_s();
        let macs: u64 = workload.levels.iter().map(|&(_, m)| m).sum();
        bs + macs as f64 / self.mac_per_s
    }
}

/// The full application runtime: accelerator simulator + parameter set +
/// CPU baseline.
#[derive(Clone, Debug)]
pub struct AppRuntime {
    sim: Simulator,
    params: TfheParams,
    cpu: CpuModel,
}

impl AppRuntime {
    /// The paper's configuration: default Morphling, 128-bit set III,
    /// 64-core CPU baseline.
    pub fn paper_default() -> Self {
        Self {
            sim: Simulator::new(ArchConfig::morphling_default()),
            params: ParamSet::III.params(),
            cpu: CpuModel::xeon_6226r_set_iii(),
        }
    }

    /// Custom construction.
    pub fn new(config: ArchConfig, params: TfheParams, cpu: CpuModel) -> Self {
        Self {
            sim: Simulator::new(config),
            params,
            cpu,
        }
    }

    /// The TFHE parameter set applications run at.
    pub fn params(&self) -> &TfheParams {
        &self.params
    }

    /// The simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Morphling execution time for a workload: per dependency level, the
    /// level's bootstraps run in waves of in-flight ciphertexts; leveled
    /// MACs run on the VPU (overlapped with the next level's bootstraps in
    /// hardware, charged serially here — they are orders of magnitude
    /// smaller).
    pub fn morphling_seconds(&self, workload: &Workload) -> f64 {
        let cfg = self.sim.config();
        let vpu_mac_s = cfg.vpu_macs_per_cycle() as f64 * cfg.clock_hz();
        workload
            .levels
            .iter()
            .map(|&(bootstraps, macs)| {
                self.sim
                    .batch_time_seconds(&self.params, bootstraps, bootstraps)
                    + macs as f64 / vpu_mac_s
            })
            .sum()
    }
}

/// A Table VI row: both platforms' execution times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Morphling execution time in seconds.
    pub morphling_seconds: f64,
    /// CPU execution time in seconds.
    pub cpu_seconds: f64,
}

impl Estimate {
    /// CPU-over-Morphling speedup.
    pub fn speedup(&self) -> f64 {
        self.cpu_seconds / self.morphling_seconds
    }
}

/// Estimate both columns of Table VI for one workload.
pub fn estimate(workload: &Workload, runtime: &AppRuntime) -> Estimate {
    Estimate {
        morphling_seconds: runtime.morphling_seconds(workload),
        cpu_seconds: runtime.cpu.workload_seconds(workload),
    }
}

/// A wave-batching serving driver: runs the functional demo models over
/// *many* encrypted inputs at once, flattening each dependency level's
/// bootstraps across requests into one [`BatchRequest`] wave — the
/// software analogue of how Morphling's SW scheduler merges independent
/// inferences to keep the cores saturated (§V).
///
/// Generic over any [`Bootstrapper`] backend: a bare
/// [`ServerKey`](morphling_tfhe::ServerKey) (sequential reference), a
/// [`ParallelServerKey`](morphling_tfhe::ParallelServerKey), a
/// [`BootstrapEngine`](morphling_tfhe::BootstrapEngine) pool, or a
/// [`Dispatcher`](morphling_tfhe::Dispatcher). All paths produce
/// bit-identical ciphertexts.
#[derive(Debug)]
pub struct InferenceDriver<'a, B: Bootstrapper + ?Sized> {
    server: &'a ServerKey,
    backend: &'a B,
}

impl<'a, B: Bootstrapper + ?Sized> InferenceDriver<'a, B> {
    /// Pair the key material (for parameters and the leveled layers) with
    /// the batch-bootstrap backend. The backend must wrap a server key
    /// derived from the same client key.
    pub fn new(server: &'a ServerKey, backend: &'a B) -> Self {
        Self { server, backend }
    }

    /// The server key the leveled layers run on.
    pub fn server(&self) -> &ServerKey {
        self.server
    }

    /// Run one MLP inference per `(x0, x1)` input pair, batching each of
    /// the model's two bootstrap levels across *all* pairs: first one
    /// wave of `pairs.len() × hidden` ReLU activations, then one wave of
    /// `pairs.len()` threshold decisions. Outputs line up with `pairs`
    /// and are bit-identical to
    /// [`EncryptedMlp::infer`](crate::functional::EncryptedMlp::infer).
    ///
    /// # Errors
    ///
    /// Propagates any [`TfheError`] from the backend.
    pub fn infer_mlp_wave(
        &self,
        model: &MlpModel,
        pairs: &[(LweCiphertext, LweCiphertext)],
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.server.params().plaintext_modulus;
        let n_poly = self.server.params().poly_size;
        let shift = model.relu_shift;
        let relu = Lut::from_fn(n_poly, p, move |s| s.saturating_sub(shift));
        // Level 1: every hidden-neuron affine sum of every request, one wave.
        let sums: Vec<LweCiphertext> = pairs
            .iter()
            .flat_map(|(x0, x1)| {
                let inputs = [x0.clone(), x1.clone()];
                model
                    .hidden
                    .iter()
                    .map(move |&(w0, w1, b)| {
                        ops::affine(&inputs, &[w0, w1], Torus32::encode(b, 2 * p))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let activations = self
            .backend
            .try_bootstrap_batch(&BatchRequest::shared(sums, relu))?;
        // Leveled output layer per request.
        let accs: Vec<LweCiphertext> = activations
            .chunks(model.hidden.len())
            .map(|acts| {
                acts.iter()
                    .zip(&model.output)
                    .map(|(a, &v)| a.scalar_mul(v))
                    .reduce(|acc, term| acc.add(&term))
                    .expect("at least one hidden neuron")
            })
            .collect();
        // Level 2: every threshold decision, one wave.
        let threshold = model.threshold;
        let decide = Lut::from_fn(n_poly, p, move |s| u64::from(s >= threshold));
        self.backend
            .try_bootstrap_batch(&BatchRequest::shared(accs, decide))
    }

    /// Classify one feature vector per entry of `feature_sets`, batching
    /// the three oblivious node comparisons of *all* requests into one
    /// per-item-LUT wave and the leaf lookups into a second. Outputs line
    /// up with `feature_sets` and are bit-identical to
    /// [`EncryptedTreeEvaluator::classify`](crate::functional::EncryptedTreeEvaluator::classify).
    ///
    /// # Errors
    ///
    /// Propagates any [`TfheError`] from the backend.
    pub fn classify_tree_wave(
        &self,
        tree: &DecisionTree,
        feature_sets: &[Vec<LweCiphertext>],
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        if feature_sets.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.server.params().plaintext_modulus;
        let n_poly = self.server.params().poly_size;
        let ge = |threshold: u64| Lut::from_fn(n_poly, p, move |x| u64::from(x >= threshold));
        let luts = vec![ge(tree.root.1), ge(tree.left.1), ge(tree.right.1)];
        let cts: Vec<LweCiphertext> = feature_sets
            .iter()
            .flat_map(|f| {
                [
                    f[tree.root.0].clone(),
                    f[tree.left.0].clone(),
                    f[tree.right.0].clone(),
                ]
            })
            .collect();
        let lut_of: Vec<usize> = (0..feature_sets.len()).flat_map(|_| [0, 1, 2]).collect();
        let decisions = self
            .backend
            .try_bootstrap_batch(&BatchRequest::per_item(cts, luts, lut_of)?)?;
        // Leveled index packing per request, then one wave of leaf lookups.
        let indices: Vec<LweCiphertext> = decisions
            .chunks(3)
            .map(|d| d[0].scalar_mul(4).add(&d[1].scalar_mul(2)).add(&d[2]))
            .collect();
        let leaves = tree.leaves;
        let leaf_lut = Lut::from_fn(n_poly, p, move |idx| {
            let d0 = (idx >> 2) & 1;
            let d1 = (idx >> 1) & 1;
            let d2 = idx & 1;
            let taken = if d0 == 1 { d2 } else { d1 };
            leaves[(2 * d0 + taken) as usize]
        });
        self.backend
            .try_bootstrap_batch(&BatchRequest::shared(indices, leaf_lut))
    }

    /// [`classify_tree_wave`](Self::classify_tree_wave) with the node
    /// comparisons of every request grouped by feature into one **fanout**
    /// wave: each distinct feature of each request blind-rotates once and
    /// all of its threshold LUTs extract from that rotation
    /// (multi-value bootstrapping; see
    /// [`DecisionTree::node_groups`](crate::functional::DecisionTree::node_groups)).
    /// A tree whose children share a feature spends `2·requests` rotations
    /// on comparisons instead of `3·requests`.
    ///
    /// Outputs decode identically to
    /// [`classify_tree_wave`](Self::classify_tree_wave) but are not
    /// bit-identical (the shared-rotation derivation adds bounded noise
    /// that the leaf-lookup wave absorbs).
    ///
    /// # Errors
    ///
    /// Propagates any [`TfheError`] from the backend.
    pub fn classify_tree_wave_fused(
        &self,
        tree: &DecisionTree,
        feature_sets: &[Vec<LweCiphertext>],
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        if feature_sets.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.server.params().plaintext_modulus;
        let n_poly = self.server.params().poly_size;
        let ge = |threshold: u64| Lut::from_fn(n_poly, p, move |x| u64::from(x >= threshold));
        let luts = vec![ge(tree.root.1), ge(tree.left.1), ge(tree.right.1)];
        let groups = tree.node_groups();
        // One ciphertext per (request, distinct feature); its fanout list
        // names every node test reading that feature.
        let cts: Vec<LweCiphertext> = feature_sets
            .iter()
            .flat_map(|f| groups.iter().map(|&(feat, _)| f[feat].clone()))
            .collect();
        let fanout: Vec<Vec<usize>> = feature_sets
            .iter()
            .flat_map(|_| groups.iter().map(|(_, nodes)| nodes.clone()))
            .collect();
        let outs = self
            .backend
            .try_bootstrap_batch(&BatchRequest::fanned_out(cts, luts, fanout)?)?;
        // Per request: three group-major outputs → node-order decisions →
        // packed index. Then one wave of leaf lookups.
        let mut outs = outs.into_iter();
        let mut indices = Vec::with_capacity(feature_sets.len());
        for _ in feature_sets {
            let mut decisions: Vec<Option<LweCiphertext>> = vec![None; 3];
            for (_, nodes) in &groups {
                for &node in nodes {
                    decisions[node] = outs.next();
                }
            }
            let d: Vec<LweCiphertext> = decisions
                .into_iter()
                .map(|o| o.expect("backend returned one output per node test"))
                .collect();
            indices.push(d[0].scalar_mul(4).add(&d[1].scalar_mul(2)).add(&d[2]));
        }
        let leaves = tree.leaves;
        let leaf_lut = Lut::from_fn(n_poly, p, move |idx| {
            let d0 = (idx >> 2) & 1;
            let d1 = (idx >> 1) & 1;
            let d2 = idx & 1;
            let taken = if d0 == 1 { d2 } else { d1 };
            leaves[(2 * d0 + taken) as usize]
        });
        self.backend
            .try_bootstrap_batch(&BatchRequest::shared(indices, leaf_lut))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::deep_cnn;
    use crate::xgboost::XgBoostModel;

    #[test]
    fn deep_cnn_times_land_on_table_vi() {
        let rt = AppRuntime::paper_default();
        // Paper: 0.34 / 0.84 / 1.72 s on Morphling; 33.3 / 74.9 / 180.1 s
        // on the CPU.
        for (x, paper_m, paper_c) in [(20, 0.34, 33.32), (50, 0.84, 74.94), (100, 1.72, 180.09)] {
            let est = estimate(&deep_cnn(x).workload(), &rt);
            let m_ratio = est.morphling_seconds / paper_m;
            let c_ratio = est.cpu_seconds / paper_c;
            assert!(
                (0.7..1.4).contains(&m_ratio),
                "DeepCNN-{x}: morphling {} vs {paper_m}",
                est.morphling_seconds
            );
            assert!(
                (0.7..1.4).contains(&c_ratio),
                "DeepCNN-{x}: cpu {} vs {paper_c}",
                est.cpu_seconds
            );
        }
    }

    #[test]
    fn speedups_are_in_the_papers_range() {
        // Paper: 88–144× across the five applications.
        let rt = AppRuntime::paper_default();
        let apps: Vec<morphling_core::sched::Workload> = vec![
            XgBoostModel::paper_benchmark().workload(),
            deep_cnn(20).workload(),
            deep_cnn(100).workload(),
            crate::models::vgg9().workload(),
        ];
        for w in &apps {
            let s = estimate(w, &rt).speedup();
            assert!((60.0..200.0).contains(&s), "speedup {s}");
        }
    }

    #[test]
    fn deep_cnn_runs_sub_second_up_to_50_layers() {
        // The paper's headline: "various deep learning models with
        // sub-second latency".
        let rt = AppRuntime::paper_default();
        assert!(estimate(&deep_cnn(20).workload(), &rt).morphling_seconds < 1.0);
        assert!(estimate(&deep_cnn(50).workload(), &rt).morphling_seconds < 1.0);
    }

    #[test]
    fn inference_driver_waves_match_sequential_paths() {
        use crate::functional::{EncryptedMlp, EncryptedTreeEvaluator};
        use morphling_tfhe::{ClientKey, Dispatcher};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(204);
        let params = ParamSet::TestMedium.params().with_plaintext_modulus(16);
        let ck = ClientKey::generate(params, &mut rng);
        let sk = Arc::new(ServerKey::new(&ck, &mut rng));
        // Wave through a Dispatcher (coalescing front-end over the key)...
        let dispatcher = Dispatcher::builder()
            .max_batch_size(16)
            .build(Arc::clone(&sk));
        let driver = InferenceDriver::new(&sk, &dispatcher);

        let model = MlpModel::demo();
        let mlp = EncryptedMlp::new(&sk);
        let pairs: Vec<_> = [(0u64, 0u64), (1, 3), (3, 3)]
            .iter()
            .map(|&(x0, x1)| (ck.encrypt(x0, &mut rng), ck.encrypt(x1, &mut rng)))
            .collect();
        let outs = driver.infer_mlp_wave(&model, &pairs).unwrap();
        assert_eq!(outs.len(), pairs.len());
        for (out, (c0, c1)) in outs.iter().zip(&pairs) {
            assert_eq!(*out, mlp.infer(&model, c0, c1));
        }

        // ...and a tree wave straight through the bare server key.
        let driver_seq = InferenceDriver::new(&sk, &*sk);
        let tree = DecisionTree {
            root: (0, 4),
            left: (1, 2),
            right: (1, 6),
            leaves: [0, 1, 2, 3],
        };
        let eval = EncryptedTreeEvaluator::new(&sk);
        let feats: Vec<Vec<_>> = [(0u64, 7u64), (5, 1)]
            .iter()
            .map(|&(x0, x1)| vec![ck.encrypt(x0, &mut rng), ck.encrypt(x1, &mut rng)])
            .collect();
        let outs = driver_seq.classify_tree_wave(&tree, &feats).unwrap();
        for (out, f) in outs.iter().zip(&feats) {
            assert_eq!(*out, eval.classify(&tree, f));
        }
        // Empty waves are no-ops.
        assert!(driver_seq.infer_mlp_wave(&model, &[]).unwrap().is_empty());
    }

    #[test]
    fn fused_tree_wave_decodes_like_sequential_with_fewer_rotations() {
        use crate::functional::EncryptedTreeEvaluator;
        use morphling_tfhe::{BootstrapEngine, ClientKey};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(207);
        let params = ParamSet::TestMedium.params();
        let ck = ClientKey::generate(params, &mut rng);
        let sk = Arc::new(ServerKey::new(&ck, &mut rng));
        let engine = BootstrapEngine::builder()
            .workers(2)
            .build(Arc::clone(&sk))
            .unwrap();
        let driver = InferenceDriver::new(&sk, &engine);
        // Both children test feature 1 → two comparison rotations per
        // request instead of three.
        let tree = DecisionTree {
            root: (0, 4),
            left: (1, 2),
            right: (1, 6),
            leaves: [0, 1, 2, 3],
        };
        let eval = EncryptedTreeEvaluator::new(&sk);
        let inputs = [(0u64, 7u64), (5, 1), (4, 6), (7, 0)];
        let feats: Vec<Vec<_>> = inputs
            .iter()
            .map(|&(x0, x1)| vec![ck.encrypt(x0, &mut rng), ck.encrypt(x1, &mut rng)])
            .collect();
        let outs = driver.classify_tree_wave_fused(&tree, &feats).unwrap();
        assert_eq!(outs.len(), feats.len());
        for ((out, f), &(x0, x1)) in outs.iter().zip(&feats).zip(&inputs) {
            assert_eq!(
                ck.decrypt(out),
                tree.classify_clear(&[x0, x1]),
                "x0={x0} x1={x1}"
            );
            assert_eq!(ck.decrypt(out), ck.decrypt(&eval.classify(&tree, f)));
        }
        // Comparison wave: 2 rotations / 3 extractions per request; leaf
        // wave: 1 rotation = 1 extraction per request.
        let stats = engine.stats();
        assert_eq!(stats.bootstraps, 4 * 2 + 4);
        assert_eq!(stats.extractions, 4 * 3 + 4);
        // Empty fused waves are no-ops too.
        assert!(driver
            .classify_tree_wave_fused(&tree, &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cpu_model_throughput() {
        let cpu = CpuModel::xeon_6226r_set_iii();
        assert!((cpu.bs_per_s() - 384.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_model_calibrates_from_engine_stats() {
        let stats = morphling_tfhe::EngineStats {
            workers: 4,
            batches: 10,
            bootstraps: 200,
            busy: std::time::Duration::from_secs(4),
            ..morphling_tfhe::EngineStats::default()
        };
        let cpu = CpuModel::from_engine_stats(&stats, CpuModel::xeon_6226r_set_iii());
        // 200 bootstraps over 4 busy core-seconds → 50 BS/s per core.
        assert!((cpu.single_core_bs_s - 50.0).abs() < 1e-9);
        assert_eq!(cpu.cores, 64);
        assert!((cpu.bs_per_s() - 50.0 * 64.0 * 0.5).abs() < 1e-6);

        let empty = morphling_tfhe::EngineStats::default();
        assert_eq!(
            CpuModel::from_engine_stats(&empty, CpuModel::xeon_6226r_set_iii()),
            CpuModel::xeon_6226r_set_iii()
        );
    }

    #[test]
    fn local_calibration_describes_the_measured_machine() {
        let stats = morphling_tfhe::EngineStats {
            workers: 4,
            batches: 10,
            bootstraps: 200,
            busy: std::time::Duration::from_secs(4),
            ..morphling_tfhe::EngineStats::default()
        };
        let cpu = CpuModel::from_engine_stats_local(&stats).unwrap();
        // 200 bootstraps over 4 busy core-seconds → 50 BS/s per core, on
        // the 4 cores that actually ran.
        assert!((cpu.single_core_bs_s - 50.0).abs() < 1e-9);
        assert_eq!(cpu.cores, 4);
        // MAC rate scales with the core count: 4/64 of the testbed.
        assert!((cpu.mac_per_s - 5e10 / 16.0).abs() < 1.0);

        // No completed bootstraps → nothing to calibrate from.
        let empty = morphling_tfhe::EngineStats::default();
        assert!(CpuModel::from_engine_stats_local(&empty).is_none());
    }

    #[test]
    fn service_model_bridge_inverts_the_per_core_rate() {
        let cpu = CpuModel {
            single_core_bs_s: 100.0,
            cores: 4,
            parallel_efficiency: 0.9,
            mac_per_s: 1e9,
        };
        let model = cpu.service_model();
        // 100 BS/s per core → 10 ms per bootstrap.
        assert_eq!(model.bootstrap_ns, 10_000_000);
        assert!((model.parallel_efficiency - 0.9).abs() < 1e-12);
        // The bridged capacity tracks the CPU model's own aggregate
        // throughput to within the per-batch overhead.
        let bridged = model.capacity_bs(cpu.cores as usize);
        assert!(
            (bridged - cpu.bs_per_s()).abs() / cpu.bs_per_s() < 0.05,
            "bridged {bridged} vs cpu {}",
            cpu.bs_per_s()
        );
    }
}
