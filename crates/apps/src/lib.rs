//! Application workloads of the Morphling evaluation (§VI-A, Table VI).
//!
//! Two layers:
//!
//! - **Workload models** ([`models`], [`xgboost`]): the exact network /
//!   ensemble structures the paper benchmarks (DeepCNN-20/50/100, VGG-9,
//!   the 100-estimator depth-6 XG-Boost), reduced to per-level
//!   programmable-bootstrap counts and mapped onto the accelerator through
//!   the SW/HW schedulers. [`runtime`] pairs them with a calibrated
//!   64-core CPU baseline to regenerate Table VI.
//! - **Functional demos** ([`functional`]): small but *real* encrypted
//!   inference running on the TFHE substrate — an encrypted decision tree
//!   and an encrypted quantized MLP — proving the same API end to end.
//!
//! # Example
//!
//! ```
//! use morphling_apps::{models, runtime};
//! use morphling_core::ArchConfig;
//!
//! let net = models::deep_cnn(20);
//! let est = runtime::estimate(&net.workload(), &runtime::AppRuntime::paper_default());
//! // Table VI: DeepCNN-20 runs in 0.34 s on Morphling, 33.32 s on the CPU.
//! assert!(est.morphling_seconds < 1.0);
//! assert!(est.speedup() > 50.0);
//! # let _ = ArchConfig::morphling_default();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod functional;
pub mod layers;
pub mod models;
pub mod runtime;
pub mod xgboost;
