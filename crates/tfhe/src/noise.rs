//! Noise measurement and prediction utilities.
//!
//! TFHE's correctness argument is statistical: every homomorphic operation
//! grows the ciphertext error, and bootstrapping must reset it below the
//! decryption threshold. These helpers measure actual errors (given the
//! secret key) and predict the dominant variance terms, so tests can assert
//! the implementation stays inside its noise budget.

use morphling_math::{Torus32, TorusScalar};

use crate::keys::ClientKey;
use crate::lwe::LweCiphertext;
use crate::params::TfheParams;

/// Signed torus distance between a ciphertext's phase and the intended
/// message — the realized noise of one sample.
pub fn measured_error(client: &ClientKey, ct: &LweCiphertext, intended: Torus32) -> f64 {
    (client.decrypt_torus(ct) - intended).to_f64_signed()
}

/// Sample standard deviation of a set of measured errors.
pub fn error_std(errors: &[f64]) -> f64 {
    let n = errors.len() as f64;
    let mean = errors.iter().sum::<f64>() / n;
    (errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n).sqrt()
}

/// Predicted variance added by one external product (one blind-rotation
/// step), dominated by the BSK noise term
/// `(k+1) · l_b · N · (β/2)² · σ_bsk² / 3` plus the gadget rounding term
/// `(1 + k·N) · ε²` with `ε = 1/(2 β^l_b)`.
pub fn external_product_variance(params: &TfheParams) -> f64 {
    let k = params.glwe_dim as f64;
    let n = params.poly_size as f64;
    let l = params.bsk_decomp.level() as f64;
    let beta = params.bsk_decomp.base() as f64;
    let sigma = params.glwe_noise_std;
    let noise_term = (k + 1.0) * l * n * (beta / 2.0) * (beta / 2.0) * sigma * sigma / 3.0;
    let eps = 0.5 / beta.powf(l);
    let rounding_term = (1.0 + k * n) * eps * eps / 12.0;
    noise_term + rounding_term
}

/// Predicted variance of a fresh bootstrap output (before key switching):
/// `n` accumulated external products.
pub fn bootstrap_output_variance(params: &TfheParams) -> f64 {
    params.lwe_dim as f64 * external_product_variance(params)
}

/// Predicted variance added by the key switch:
/// `kN · l_k · E[d²] · σ_lwe²` plus the `kN` rounding term.
pub fn key_switch_variance(params: &TfheParams) -> f64 {
    let kn = params.extracted_lwe_dim() as f64;
    let l = params.ksk_decomp.level() as f64;
    let beta = params.ksk_decomp.base() as f64;
    let digit_ms = beta * beta / 12.0; // E[d²] for balanced digits.
    let noise_term = kn * l * digit_ms * params.lwe_noise_std * params.lwe_noise_std;
    let eps = 0.5 / beta.powf(l);
    let rounding_term = kn * eps * eps / 12.0 * 0.5; // key bits are 0/1 w.p. ½
    noise_term + rounding_term
}

/// Predicted total standard deviation of a freshly bootstrapped, key-
/// switched ciphertext.
pub fn post_bootstrap_std(params: &TfheParams) -> f64 {
    (bootstrap_output_variance(params) + key_switch_variance(params)).sqrt()
}

/// The decryption margin for plaintext modulus `p` with a padding bit:
/// decoding succeeds while `|error| < 1/(4p)`; bootstrapping additionally
/// requires `|error| + MS error < 1/(4p)` at the rotation step.
pub fn decryption_margin(p: u64) -> f64 {
    1.0 / (4.0 * p as f64)
}

/// Complementary error function, via the Abramowitz–Stegun 7.1.26
/// rational approximation (|ε| < 1.5·10⁻⁷) — good enough for failure-rate
/// estimates spanning many orders of magnitude.
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let e = poly * (-x * x).exp();
    if sign_negative {
        2.0 - e
    } else {
        e
    }
}

/// Estimated probability that one decryption (or one PBS landing) misses
/// its margin, given a Gaussian error of standard deviation `sigma` and
/// plaintext modulus `p`: `erfc(margin / (σ√2))`.
pub fn failure_probability(sigma: f64, p: u64) -> f64 {
    if sigma <= 0.0 {
        return 0.0;
    }
    erfc(decryption_margin(p) / (sigma * std::f64::consts::SQRT_2))
}

/// Predicted per-bootstrap failure probability for a parameter set at its
/// default plaintext modulus.
pub fn bootstrap_failure_probability(params: &TfheParams) -> f64 {
    failure_probability(post_bootstrap_std(params), params.plaintext_modulus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use crate::server::ServerKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn functional_sets_have_noise_budget() {
        // Every set marked `functional` must predict a post-bootstrap noise
        // std at least 4 sigma below the decryption margin.
        for set in crate::params::ALL_PAPER_SETS {
            let p = set.params();
            if !p.functional {
                continue;
            }
            let sigma = post_bootstrap_std(&p);
            let margin = decryption_margin(p.plaintext_modulus);
            assert!(
                sigma * 4.0 < margin,
                "set {}: 4σ = {} exceeds margin {}",
                p.name,
                sigma * 4.0,
                margin
            );
        }
    }

    #[test]
    fn measured_bootstrap_noise_is_within_prediction() {
        let mut rng = StdRng::seed_from_u64(90);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let mut errors = Vec::new();
        for _ in 0..12 {
            let ct = ck.encrypt(2, &mut rng);
            let out = sk.bootstrap(&ct);
            errors.push(measured_error(&ck, &out, Torus32::encode(2, 8)));
        }
        let measured = error_std(&errors);
        let predicted = post_bootstrap_std(&params);
        // Measured std should be the same order as predicted (within 8×
        // given only 12 samples) and must not exceed the margin.
        assert!(
            measured < predicted * 8.0,
            "measured {measured} vs predicted {predicted}"
        );
        assert!(measured < decryption_margin(params.plaintext_modulus));
    }

    #[test]
    fn error_std_of_constant_is_zero() {
        assert_eq!(error_std(&[0.5, 0.5, 0.5]), 0.0);
    }

    #[test]
    fn erfc_matches_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-11);
    }

    #[test]
    fn functional_sets_have_low_failure_probability() {
        for set in crate::params::ALL_PAPER_SETS {
            let p = set.params();
            if !p.functional {
                continue;
            }
            let fail = bootstrap_failure_probability(&p);
            assert!(fail < 1e-4, "set {}: failure probability {fail}", p.name);
        }
    }

    #[test]
    fn failure_probability_is_monotone_in_sigma() {
        assert!(failure_probability(1e-3, 4) < failure_probability(1e-2, 4));
        assert_eq!(failure_probability(0.0, 4), 0.0);
    }
}
