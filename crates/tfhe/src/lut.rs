//! Test polynomials / lookup tables for programmable bootstrapping.
//!
//! The test polynomial `TP` "stores all function values of any function
//! f(m)" (§II-A). With one bit of padding (messages encoded as `m/2p`,
//! living in the half-torus), the blind rotation lands the accumulator on
//! the coefficient block of `f(m)`; the half-block pre-rotation below
//! absorbs symmetric noise without a negacyclic sign flip.

use morphling_math::{Polynomial, Torus32, TorusScalar};

use crate::error::TfheError;

/// A lookup table for programmable bootstrapping over `Z_p`.
#[derive(Clone, Debug, PartialEq)]
pub struct Lut {
    poly: Polynomial<Torus32>,
    plaintext_modulus: u64,
}

impl Lut {
    /// Build the test polynomial for `f : Z_p → Z_p` at polynomial size
    /// `N`, with the standard padding-bit encoding (`m ↦ m/2p`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a power of two, or `p > N/2`; use
    /// [`try_from_fn`](Self::try_from_fn) for a `Result`.
    pub fn from_fn(poly_size: usize, p: u64, f: impl FnMut(u64) -> u64) -> Self {
        match Self::try_from_fn(poly_size, p, f) {
            Ok(lut) => lut,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`from_fn`](Self::from_fn).
    ///
    /// # Errors
    ///
    /// [`TfheError::PlaintextModulusNotPowerOfTwo`] or
    /// [`TfheError::PlaintextModulusTooLarge`].
    pub fn try_from_fn(
        poly_size: usize,
        p: u64,
        mut f: impl FnMut(u64) -> u64,
    ) -> Result<Self, TfheError> {
        Self::try_from_torus_fn(poly_size, p, |m| Torus32::encode(f(m) % p, 2 * p))
    }

    /// Build a test polynomial whose output values are arbitrary torus
    /// elements (e.g. re-scaled constants for gate bootstrapping).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a power of two, or `p > N/2`; use
    /// [`try_from_torus_fn`](Self::try_from_torus_fn) for a `Result`.
    pub fn from_torus_fn(poly_size: usize, p: u64, f: impl FnMut(u64) -> Torus32) -> Self {
        match Self::try_from_torus_fn(poly_size, p, f) {
            Ok(lut) => lut,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`from_torus_fn`](Self::from_torus_fn).
    ///
    /// # Errors
    ///
    /// [`TfheError::PlaintextModulusNotPowerOfTwo`] if `p` is not a power
    /// of two; [`TfheError::PlaintextModulusTooLarge`] if `p > N/2`.
    pub fn try_from_torus_fn(
        poly_size: usize,
        p: u64,
        mut f: impl FnMut(u64) -> Torus32,
    ) -> Result<Self, TfheError> {
        if !p.is_power_of_two() {
            return Err(TfheError::PlaintextModulusNotPowerOfTwo { modulus: p });
        }
        if p as usize > poly_size / 2 {
            return Err(TfheError::PlaintextModulusTooLarge {
                modulus: p,
                poly_size,
            });
        }
        let box_size = poly_size / p as usize;
        let blocks = Polynomial::from_fn(poly_size, |j| f((j / box_size) as u64));
        // Pre-rotate by half a block so that ±half-box noise around each
        // block center stays inside the block (no negacyclic wrap at m=0).
        let poly = blocks.monomial_mul(-((box_size / 2) as i64));
        Ok(Self {
            poly,
            plaintext_modulus: p,
        })
    }

    /// The identity LUT (a plain noise-resetting bootstrap).
    pub fn identity(poly_size: usize, p: u64) -> Self {
        Self::from_fn(poly_size, p, |m| m)
    }

    /// The constant `+1/8` test polynomial used by gate bootstrapping: the
    /// blind rotation turns it into `+1/8` for phases in `(0, 1/2)` and
    /// `−1/8` for phases in `(−1/2, 0)`.
    pub fn bool_gate(poly_size: usize) -> Self {
        let eighth = Torus32::from_f64(0.125);
        Self {
            poly: Polynomial::from_fn(poly_size, |_| eighth),
            plaintext_modulus: 2,
        }
    }

    /// The test polynomial (already pre-rotated).
    pub fn polynomial(&self) -> &Polynomial<Torus32> {
        &self.poly
    }

    /// The plaintext modulus `p` this LUT expects.
    pub fn plaintext_modulus(&self) -> u64 {
        self.plaintext_modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_lut_blocks_hold_the_encoded_value() {
        let p = 4u64;
        let n = 64;
        let lut = Lut::identity(n, p);
        // Undo the pre-rotation and check the block structure.
        let blocks = lut.polynomial().monomial_mul((n / p as usize / 2) as i64);
        let box_size = n / p as usize;
        for m in 0..p {
            for j in 0..box_size {
                assert_eq!(
                    blocks[m as usize * box_size + j],
                    Torus32::encode(m, 2 * p),
                    "m={m} j={j}"
                );
            }
        }
    }

    #[test]
    fn bool_gate_is_constant() {
        let lut = Lut::bool_gate(32);
        for j in 0..32 {
            assert_eq!(lut.polynomial()[j], Torus32::from_f64(0.125));
        }
    }

    #[test]
    fn from_fn_applies_the_function() {
        let lut = Lut::from_fn(64, 4, |m| (m * 3) % 4);
        let blocks = lut.polynomial().monomial_mul(8);
        assert_eq!(blocks[0], Torus32::encode(0, 8));
        assert_eq!(blocks[16], Torus32::encode(3, 8));
        assert_eq!(blocks[32], Torus32::encode(2, 8));
        assert_eq!(blocks[48], Torus32::encode(1, 8));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn rejects_oversized_modulus() {
        let _ = Lut::identity(64, 64);
    }
}
