//! GLWE ciphertexts: `(A_1(X), …, A_k(X), B(X)) ∈ T_(q,N)[X]^(k+1)` (§II-A).

use morphling_math::{sampling, Polynomial, Torus32};
use rand::Rng;

use crate::keys::GlweSecretKey;

/// A GLWE ciphertext: `k` mask polynomials plus a body polynomial.
///
/// The blind rotation's accumulator (`ACC` in Algorithm 1) is a value of
/// this type; the paper stores it in the Private-A1 buffer and rotates it
/// with the double-pointer method.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlweCiphertext {
    masks: Vec<Polynomial<Torus32>>,
    body: Polynomial<Torus32>,
}

impl GlweCiphertext {
    /// Encrypt a torus message polynomial under `key` with coefficient-wise
    /// Gaussian noise.
    pub fn encrypt<R: Rng + ?Sized>(
        message: &Polynomial<Torus32>,
        key: &GlweSecretKey,
        noise_std: f64,
        rng: &mut R,
    ) -> Self {
        assert_eq!(message.len(), key.poly_size(), "message size must equal N");
        let n = key.poly_size();
        let masks: Vec<Polynomial<Torus32>> = (0..key.dim())
            .map(|_| sampling::uniform_torus_poly(n, rng))
            .collect();
        let mut body = message.clone();
        if noise_std > 0.0 {
            body += &sampling::gaussian_torus_poly(n, noise_std, rng);
        }
        // Binary key × uniform mask is exact through the f64 FFT (products
        // stay far below the 53-bit mantissa); the FFT path keeps key
        // generation fast at N = 1024–4096.
        let fft = crate::fft_cache::fft_for(n);
        for (a, s) in masks.iter().zip(key.polys()) {
            body += &fft.mul_int_torus(s, a);
        }
        Self { masks, body }
    }

    /// A trivial (keyless) encryption: zero masks, body = message. Used for
    /// the test polynomial `TP` at the start of the blind rotation.
    pub fn trivial(message: Polynomial<Torus32>, glwe_dim: usize) -> Self {
        let n = message.len();
        Self {
            masks: vec![Polynomial::zero(n); glwe_dim],
            body: message,
        }
    }

    /// The all-zero ciphertext (trivial encryption of 0).
    pub fn zero(glwe_dim: usize, poly_size: usize) -> Self {
        Self::trivial(Polynomial::zero(poly_size), glwe_dim)
    }

    /// Assemble from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if mask and body sizes disagree.
    pub fn from_parts(masks: Vec<Polynomial<Torus32>>, body: Polynomial<Torus32>) -> Self {
        for m in &masks {
            assert_eq!(m.len(), body.len(), "mask/body size mismatch");
        }
        Self { masks, body }
    }

    /// GLWE dimension `k`.
    pub fn dim(&self) -> usize {
        self.masks.len()
    }

    /// Polynomial size `N`.
    pub fn poly_size(&self) -> usize {
        self.body.len()
    }

    /// The mask polynomials `A_1 … A_k`.
    pub fn masks(&self) -> &[Polynomial<Torus32>] {
        &self.masks
    }

    /// The body polynomial `B`.
    pub fn body(&self) -> &Polynomial<Torus32> {
        &self.body
    }

    /// All `k+1` components in order `A_1, …, A_k, B` — the layout the
    /// external product decomposes.
    pub fn components(&self) -> impl Iterator<Item = &Polynomial<Torus32>> {
        self.masks.iter().chain(std::iter::once(&self.body))
    }

    /// Mutable view of the `k+1` components in `A_1, …, A_k, B` order.
    pub(crate) fn components_mut(&mut self) -> impl Iterator<Item = &mut Polynomial<Torus32>> {
        self.masks.iter_mut().chain(std::iter::once(&mut self.body))
    }

    /// Add `comps` (in `A_1, …, A_k, B` order) into this ciphertext —
    /// the final `+ ACC` of Algorithm 1 line 4, done in place.
    ///
    /// # Panics
    ///
    /// Panics if `comps.len() != k + 1`.
    pub(crate) fn add_assign_components(&mut self, comps: &[Polynomial<Torus32>]) {
        assert_eq!(comps.len(), self.dim() + 1, "component count mismatch");
        for (dst, src) in self.components_mut().zip(comps) {
            *dst += src;
        }
    }

    /// Build from `k+1` components in `A_1, …, A_k, B` order.
    ///
    /// # Panics
    ///
    /// Panics if `comps` is empty.
    pub fn from_components(mut comps: Vec<Polynomial<Torus32>>) -> Self {
        let body = comps
            .pop()
            .expect("at least one component (the body) is required");
        Self::from_parts(comps, body)
    }

    /// Homomorphic addition.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(self.dim(), rhs.dim(), "GLWE dimension mismatch");
        Self {
            masks: self
                .masks
                .iter()
                .zip(&rhs.masks)
                .map(|(a, b)| a + b)
                .collect(),
            body: &self.body + &rhs.body,
        }
    }

    /// Homomorphic subtraction.
    #[must_use]
    pub fn sub(&self, rhs: &Self) -> Self {
        assert_eq!(self.dim(), rhs.dim(), "GLWE dimension mismatch");
        Self {
            masks: self
                .masks
                .iter()
                .zip(&rhs.masks)
                .map(|(a, b)| a - b)
                .collect(),
            body: &self.body - &rhs.body,
        }
    }

    /// Multiply every component by the monomial `X^power` — the ACC
    /// rotation `X^ã · ACC` of the blind rotation, which Morphling
    /// implements with the double-pointer read in Private-A1 (§V-C).
    #[must_use]
    pub fn monomial_mul(&self, power: i64) -> Self {
        Self {
            masks: self.masks.iter().map(|a| a.monomial_mul(power)).collect(),
            body: self.body.monomial_mul(power),
        }
    }

    /// `X^power · self − self`, fused (the `Λ` operand of Algorithm 1
    /// line 4).
    #[must_use]
    pub fn monomial_mul_minus_one(&self, power: i64) -> Self {
        let mut out = Self::zero(self.dim(), self.poly_size());
        self.monomial_mul_minus_one_into(power, &mut out);
        out
    }

    /// [`monomial_mul_minus_one`](Self::monomial_mul_minus_one) into a
    /// caller-owned ciphertext; every coefficient of `out` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `out` has a different shape than `self`.
    pub fn monomial_mul_minus_one_into(&self, power: i64, out: &mut Self) {
        assert_eq!(out.dim(), self.dim(), "GLWE dimension mismatch");
        for (src, dst) in self.components().zip(out.components_mut()) {
            src.monomial_mul_minus_one_into(power, dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_math::TorusScalar;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(n: usize, seed: u32) -> Polynomial<Torus32> {
        // Messages on a coarse grid so noise cannot flip them.
        Polynomial::from_fn(n, |j| {
            Torus32::from_raw(((j as u32).wrapping_mul(seed) % 8) << 29)
        })
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut rng = StdRng::seed_from_u64(20);
        let key = GlweSecretKey::generate(2, 64, &mut rng);
        let m = msg(64, 7);
        let ct = GlweCiphertext::encrypt(&m, &key, 2f64.powi(-25), &mut rng);
        let phase = key.phase(&ct);
        for j in 0..64 {
            assert_eq!(phase[j].decode(8), m[j].decode(8), "j={j}");
        }
    }

    #[test]
    fn trivial_has_zero_masks() {
        let ct = GlweCiphertext::trivial(msg(32, 3), 2);
        let key = GlweSecretKey::generate(2, 32, &mut StdRng::seed_from_u64(21));
        assert_eq!(key.phase(&ct), msg(32, 3));
    }

    #[test]
    fn homomorphic_add_sub() {
        let mut rng = StdRng::seed_from_u64(22);
        let key = GlweSecretKey::generate(1, 32, &mut rng);
        let m1 = msg(32, 5);
        let m2 = msg(32, 11);
        let c1 = GlweCiphertext::encrypt(&m1, &key, 0.0, &mut rng);
        let c2 = GlweCiphertext::encrypt(&m2, &key, 0.0, &mut rng);
        assert_eq!(key.phase(&c1.add(&c2)), &m1 + &m2);
        assert_eq!(key.phase(&c1.sub(&c2)), &m1 - &m2);
    }

    #[test]
    fn rotation_commutes_with_decryption() {
        let mut rng = StdRng::seed_from_u64(23);
        let key = GlweSecretKey::generate(1, 32, &mut rng);
        let m = msg(32, 9);
        let ct = GlweCiphertext::encrypt(&m, &key, 0.0, &mut rng);
        for a in [0i64, 1, 31, 32, 45, 63] {
            assert_eq!(key.phase(&ct.monomial_mul(a)), m.monomial_mul(a), "a={a}");
        }
    }

    #[test]
    fn monomial_mul_minus_one_into_overwrites_dirty_buffer() {
        let mut rng = StdRng::seed_from_u64(24);
        let key = GlweSecretKey::generate(2, 32, &mut rng);
        let ct = GlweCiphertext::encrypt(&msg(32, 13), &key, 0.0, &mut rng);
        // Start from garbage so any coefficient the in-place path skips
        // would show up as a mismatch.
        let mut out = GlweCiphertext::trivial(msg(32, 17), 2);
        for power in [0i64, 1, 31, 32, 63, 64, 100] {
            ct.monomial_mul_minus_one_into(power, &mut out);
            assert_eq!(out, ct.monomial_mul_minus_one(power), "power={power}");
        }
    }

    #[test]
    fn add_assign_components_matches_add() {
        let mut rng = StdRng::seed_from_u64(25);
        let key = GlweSecretKey::generate(2, 32, &mut rng);
        let a = GlweCiphertext::encrypt(&msg(32, 3), &key, 0.0, &mut rng);
        let b = GlweCiphertext::encrypt(&msg(32, 5), &key, 0.0, &mut rng);
        let comps: Vec<_> = b.components().cloned().collect();
        let mut sum = a.clone();
        sum.add_assign_components(&comps);
        assert_eq!(sum, a.add(&b));
    }

    #[test]
    fn components_roundtrip() {
        let ct = GlweCiphertext::trivial(msg(16, 2), 3);
        let comps: Vec<_> = ct.components().cloned().collect();
        assert_eq!(comps.len(), 4);
        assert_eq!(GlweCiphertext::from_components(comps), ct);
    }
}
