//! GGSW ciphertexts and their transform-domain (Fourier) form (§II-A).
//!
//! A GGSW ciphertext of a small integer `m` is a `(k+1)·l × (k+1)` matrix
//! of torus polynomials: for each component `i ∈ 0..=k` and level
//! `j ∈ 0..l`, the row `(i, j)` is a fresh GLWE encryption of zero with
//! `m · q/β^(j+1)` added to component `i`. The external product of a GGSW
//! with a GLWE ciphertext multiplies the decomposed GLWE (the row vector of
//! eq. (1)) against this matrix (eq. (2)).
//!
//! [`FourierGgsw`] stores every row polynomial as its negacyclic spectrum —
//! the exact format Morphling keeps in the Private-A2 buffer, so that the
//! BSK never needs a forward transform at run time.

use morphling_math::{Polynomial, Torus32, TorusScalar};
use morphling_transform::{NegacyclicFft, Spectrum};
use rand::Rng;

use crate::glwe::GlweCiphertext;
use crate::keys::GlweSecretKey;
use crate::params::TfheParams;

/// A GGSW ciphertext in the coefficient domain: `(k+1)·l` rows, each a
/// GLWE ciphertext.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GgswCiphertext {
    rows: Vec<GlweCiphertext>,
    glwe_dim: usize,
    level: usize,
}

impl GgswCiphertext {
    /// Encrypt a small signed integer `m` (for bootstrapping keys, a key
    /// bit in {0, 1}).
    ///
    /// Uses `params.bsk_decomp` for the gadget and `params.glwe_noise_std`
    /// for the per-row noise.
    pub fn encrypt<R: Rng + ?Sized>(
        m: i64,
        key: &GlweSecretKey,
        params: &TfheParams,
        rng: &mut R,
    ) -> Self {
        let k = key.dim();
        let n = key.poly_size();
        let l = params.bsk_decomp.level();
        let base_log = params.bsk_decomp.base_log();
        let zero = Polynomial::<Torus32>::zero(n);
        let mut rows = Vec::with_capacity((k + 1) * l);
        for comp in 0..=k {
            for level in 0..l {
                let mut row = GlweCiphertext::encrypt(&zero, key, params.glwe_noise_std, rng);
                // Gadget element: m · q / β^(level+1) added to component
                // `comp` (a mask for comp < k, the body for comp = k).
                let shift = 32 - base_log * (level as u32 + 1);
                let g = Torus32::from_raw(1u32 << shift).scalar_mul(m);
                let mut comps: Vec<Polynomial<Torus32>> = row.components().cloned().collect();
                comps[comp][0] += g;
                row = GlweCiphertext::from_components(comps);
                rows.push(row);
            }
        }
        Self {
            rows,
            glwe_dim: k,
            level: l,
        }
    }

    /// Rebuild from explicit rows (deserialization path).
    ///
    /// # Panics
    ///
    /// Panics unless there are exactly `(glwe_dim + 1) · level` rows, every
    /// row has `glwe_dim` masks, and all rows share one polynomial size.
    pub fn from_rows(rows: Vec<GlweCiphertext>, glwe_dim: usize, level: usize) -> Self {
        assert_eq!(
            rows.len(),
            (glwe_dim + 1) * level,
            "GGSW row count mismatch"
        );
        assert!(
            rows.iter().all(|r| r.dim() == glwe_dim),
            "GGSW row GLWE dimension mismatch"
        );
        let n = rows[0].poly_size();
        assert!(
            rows.iter().all(|r| r.poly_size() == n),
            "GGSW row polynomial size mismatch"
        );
        Self {
            rows,
            glwe_dim,
            level,
        }
    }

    /// The matrix rows in `(component, level)` order — row `i·l + j` holds
    /// component `i`, level `j`.
    pub fn rows(&self) -> &[GlweCiphertext] {
        &self.rows
    }

    /// GLWE dimension `k`.
    pub fn glwe_dim(&self) -> usize {
        self.glwe_dim
    }

    /// Decomposition level `l`.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Polynomial size `N`.
    pub fn poly_size(&self) -> usize {
        self.rows[0].poly_size()
    }

    /// Precompute the transform-domain form (what the accelerator's
    /// Private-A2 buffer holds).
    pub fn to_fourier(&self, fft: &NegacyclicFft) -> FourierGgsw {
        assert_eq!(fft.poly_len(), self.poly_size(), "FFT engine size mismatch");
        let rows = self
            .rows
            .iter()
            .map(|row| row.components().map(|p| fft.forward_torus(p)).collect())
            .collect();
        FourierGgsw {
            rows,
            glwe_dim: self.glwe_dim,
            level: self.level,
            poly_size: self.poly_size(),
        }
    }
}

/// A GGSW ciphertext with every polynomial stored as its negacyclic
/// spectrum. This is the operand format of the VPE array: BSK values flow
/// down the columns already in the transform domain.
#[derive(Clone, Debug)]
pub struct FourierGgsw {
    /// `rows[r][u]` = spectrum of the `u`-th component of row `r`.
    rows: Vec<Vec<Spectrum>>,
    glwe_dim: usize,
    level: usize,
    poly_size: usize,
}

impl FourierGgsw {
    /// The spectra of row `r` (its `k+1` component polynomials).
    pub fn row(&self, r: usize) -> &[Spectrum] {
        &self.rows[r]
    }

    /// Number of rows, `(k+1)·l`.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// GLWE dimension `k`.
    pub fn glwe_dim(&self) -> usize {
        self.glwe_dim
    }

    /// Decomposition level `l`.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Polynomial size `N`.
    pub fn poly_size(&self) -> usize {
        self.poly_size
    }

    /// Bytes this ciphertext occupies in the transform domain (8 bytes per
    /// spectrum point) — the Private-A2 footprint of one `BSK_i`.
    pub fn fourier_bytes(&self) -> u64 {
        (self.rows.len() as u64) * (self.glwe_dim as u64 + 1) * (self.poly_size as u64 / 2) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ggsw_shape_matches_definition() {
        let mut rng = StdRng::seed_from_u64(30);
        let params = ParamSet::Test.params();
        let key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        let ggsw = GgswCiphertext::encrypt(1, &key, &params, &mut rng);
        // (k+1)·l rows of (k+1) polynomials.
        assert_eq!(
            ggsw.rows().len(),
            (params.glwe_dim + 1) * params.bsk_decomp.level()
        );
        assert_eq!(ggsw.rows()[0].dim(), params.glwe_dim);
    }

    #[test]
    fn ggsw_of_zero_rows_decrypt_to_zero() {
        let mut rng = StdRng::seed_from_u64(31);
        let params = ParamSet::Test.params().noiseless();
        let key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        let ggsw = GgswCiphertext::encrypt(0, &key, &params, &mut rng);
        for row in ggsw.rows() {
            let phase = key.phase(row);
            for j in 0..params.poly_size {
                assert_eq!(phase[j], Torus32::ZERO);
            }
        }
    }

    #[test]
    fn ggsw_body_rows_contain_gadget_times_message() {
        let mut rng = StdRng::seed_from_u64(32);
        let params = ParamSet::Test.params().noiseless();
        let key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        let ggsw = GgswCiphertext::encrypt(1, &key, &params, &mut rng);
        let k = params.glwe_dim;
        let l = params.bsk_decomp.level();
        let b = params.bsk_decomp.base_log();
        // Body-component rows (comp = k) decrypt to exactly the gadget.
        for level in 0..l {
            let row = &ggsw.rows()[k * l + level];
            let phase = key.phase(row);
            let expect = Torus32::from_raw(1u32 << (32 - b * (level as u32 + 1)));
            assert_eq!(phase[0], expect, "level={level}");
        }
    }

    #[test]
    fn fourier_bytes_matches_params_formula() {
        let mut rng = StdRng::seed_from_u64(33);
        let params = ParamSet::Test.params();
        let key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        let fft = NegacyclicFft::new(params.poly_size);
        let fourier = GgswCiphertext::encrypt(1, &key, &params, &mut rng).to_fourier(&fft);
        assert_eq!(fourier.fourier_bytes(), params.bsk_iter_bytes_fourier());
    }
}
