//! Key switching (Algorithm 1, line 6) — the memory-intensive stage the
//! paper assigns to the VPU with prioritized HBM channels (§IV-C).

use morphling_math::{SignedDecomposer, Torus32, TorusScalar};
use rand::Rng;

use crate::error::TfheError;
use crate::keys::LweSecretKey;
use crate::lwe::LweCiphertext;
use crate::params::TfheParams;

/// A key-switching key: `dim_in × l_k` LWE ciphertexts under the output
/// key, where `KSK_(i,j)` encrypts `s_in_i · q/β^(j+1)`.
#[derive(Clone, Debug)]
pub struct KeySwitchKey {
    /// `rows[i][j]` = KSK for input mask `i`, level `j`.
    rows: Vec<Vec<LweCiphertext>>,
    decomposer: SignedDecomposer<Torus32>,
    dim_out: usize,
}

impl KeySwitchKey {
    /// Generate a KSK from `key_in` (e.g. the extracted `k·N` key) to
    /// `key_out` (the original LWE key), using `params.ksk_decomp` and the
    /// LWE noise level.
    pub fn generate<R: Rng + ?Sized>(
        key_in: &LweSecretKey,
        key_out: &LweSecretKey,
        params: &TfheParams,
        rng: &mut R,
    ) -> Self {
        let decomposer = SignedDecomposer::new(params.ksk_decomp);
        let base_log = params.ksk_decomp.base_log();
        let l = params.ksk_decomp.level();
        let rows = key_in
            .bits()
            .iter()
            .map(|&s| {
                (0..l)
                    .map(|j| {
                        let g = Torus32::from_raw(1u32 << (32 - base_log * (j as u32 + 1)));
                        LweCiphertext::encrypt(g.scalar_mul(s), key_out, params.lwe_noise_std, rng)
                    })
                    .collect()
            })
            .collect();
        Self {
            rows,
            decomposer,
            dim_out: key_out.dim(),
        }
    }

    /// Rebuild from explicit rows (deserialization path).
    ///
    /// # Panics
    ///
    /// Panics if any row's level count or ciphertext dimension disagrees
    /// with `decomp`/`dim_out`.
    pub fn from_rows(
        rows: Vec<Vec<LweCiphertext>>,
        decomp: morphling_math::DecompParams,
        dim_out: usize,
    ) -> Self {
        assert!(
            rows.iter()
                .all(|r| r.len() == decomp.level() && r.iter().all(|c| c.dim() == dim_out)),
            "KSK row shape mismatch"
        );
        Self {
            rows,
            decomposer: SignedDecomposer::new(decomp),
            dim_out,
        }
    }

    /// The KSK rows: `rows()[i][j]` is input mask `i`, level `j`.
    pub fn rows(&self) -> &[Vec<LweCiphertext>] {
        &self.rows
    }

    /// The decomposition parameters (base log + level).
    pub fn decomp_params(&self) -> morphling_math::DecompParams {
        self.decomposer.params()
    }

    /// Input dimension (`k·N` for a post-extraction switch).
    pub fn dim_in(&self) -> usize {
        self.rows.len()
    }

    /// Output dimension `n`.
    pub fn dim_out(&self) -> usize {
        self.dim_out
    }

    /// Decomposition level `l_k`.
    pub fn level(&self) -> usize {
        self.decomposer.params().level()
    }

    /// Total size in bytes (`dim_in · l_k · (dim_out+1)` 32-bit words) —
    /// the KSK traffic the paper's DMA prioritization is about.
    pub fn bytes(&self) -> u64 {
        (self.dim_in() as u64) * (self.level() as u64) * (self.dim_out as u64 + 1) * 4
    }

    /// Switch `ct` (under `key_in`) to the output key:
    /// `c'' = (0, …, 0, b) − Σ_i Σ_j ⟨a_i⟩_j · KSK_(i,j)`.
    ///
    /// # Panics
    ///
    /// Panics if `ct.dim() != dim_in()`; use
    /// [`try_key_switch`](Self::try_key_switch) for a `Result`.
    pub fn key_switch(&self, ct: &LweCiphertext) -> LweCiphertext {
        match self.try_key_switch(ct) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`key_switch`](Self::key_switch).
    ///
    /// # Errors
    ///
    /// [`TfheError::KeySwitchDimensionMismatch`] if `ct.dim() != dim_in()`.
    pub fn try_key_switch(&self, ct: &LweCiphertext) -> Result<LweCiphertext, TfheError> {
        if ct.dim() != self.dim_in() {
            return Err(TfheError::KeySwitchDimensionMismatch {
                expected: self.dim_in(),
                got: ct.dim(),
            });
        }
        let mut out = LweCiphertext::trivial(ct.body(), self.dim_out);
        for (a_i, row) in ct.mask().iter().zip(&self.rows) {
            let digits = self.decomposer.decompose_scalar(*a_i);
            for (d, ksk_ij) in digits.iter().zip(row) {
                if *d != 0 {
                    out = out.sub(&ksk_ij.scalar_mul(*d));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use morphling_math::TorusScalar;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn key_switch_preserves_the_message() {
        let mut rng = StdRng::seed_from_u64(50);
        let params = ParamSet::Test.params();
        let key_in = LweSecretKey::generate(256, &mut rng);
        let key_out = LweSecretKey::generate(params.lwe_dim, &mut rng);
        let ksk = KeySwitchKey::generate(&key_in, &key_out, &params, &mut rng);
        for m in 0..4u64 {
            let mu = Torus32::encode(m, 8);
            let ct = LweCiphertext::encrypt(mu, &key_in, params.lwe_noise_std, &mut rng);
            let switched = ksk.key_switch(&ct);
            assert_eq!(switched.dim(), params.lwe_dim);
            assert_eq!(key_out.phase(&switched).decode(8), m, "m={m}");
        }
    }

    #[test]
    fn key_switch_noise_is_bounded() {
        let mut rng = StdRng::seed_from_u64(51);
        let params = ParamSet::Test.params();
        let key_in = LweSecretKey::generate(256, &mut rng);
        let key_out = LweSecretKey::generate(params.lwe_dim, &mut rng);
        let ksk = KeySwitchKey::generate(&key_in, &key_out, &params, &mut rng);
        let mu = Torus32::from_f64(0.25);
        let mut worst = 0.0f64;
        for _ in 0..20 {
            let ct = LweCiphertext::encrypt(mu, &key_in, params.lwe_noise_std, &mut rng);
            let err = (key_out.phase(&ksk.key_switch(&ct)) - mu)
                .to_f64_signed()
                .abs();
            worst = worst.max(err);
        }
        // Decomposition keeps 12 bits (base 2^3, l=4): rounding error alone
        // is ≤ 256·2^-13; noise adds a little more.
        assert!(worst < 0.05, "worst error {worst}");
    }

    #[test]
    fn ksk_bytes_formula() {
        let mut rng = StdRng::seed_from_u64(52);
        let params = ParamSet::Test.params();
        let key_in = LweSecretKey::generate(params.extracted_lwe_dim(), &mut rng);
        let key_out = LweSecretKey::generate(params.lwe_dim, &mut rng);
        let ksk = KeySwitchKey::generate(&key_in, &key_out, &params, &mut rng);
        assert_eq!(ksk.bytes(), params.ksk_total_bytes());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_input_dimension() {
        let mut rng = StdRng::seed_from_u64(53);
        let params = ParamSet::Test.params();
        let key_in = LweSecretKey::generate(64, &mut rng);
        let key_out = LweSecretKey::generate(params.lwe_dim, &mut rng);
        let ksk = KeySwitchKey::generate(&key_in, &key_out, &params, &mut rng);
        let ct = LweCiphertext::trivial(Torus32::ZERO, 32);
        let _ = ksk.key_switch(&ct);
    }
}
