//! The bootstrapping key: `n` GGSW encryptions of the LWE key bits.

use morphling_transform::NegacyclicFft;
use rand::Rng;

use crate::ggsw::{FourierGgsw, GgswCiphertext};
use crate::keys::ClientKey;

/// `BSK = (BSK_1, …, BSK_n)` where `BSK_i = GGSW(s_i)` under the GLWE key.
///
/// Both the coefficient-domain form (for the exact oracle) and the
/// transform-domain form (what the accelerator's Private-A2 buffer streams)
/// are kept.
#[derive(Clone, Debug)]
pub struct BootstrapKey {
    coefficient: Vec<GgswCiphertext>,
    fourier: Vec<FourierGgsw>,
}

impl BootstrapKey {
    /// Generate a bootstrapping key for `client`'s LWE key under its GLWE
    /// key.
    pub fn generate<R: Rng + ?Sized>(client: &ClientKey, rng: &mut R) -> Self {
        let params = client.params();
        let fft = NegacyclicFft::new(params.poly_size);
        let coefficient: Vec<GgswCiphertext> = client
            .lwe_key()
            .bits()
            .iter()
            .map(|&s| GgswCiphertext::encrypt(s, client.glwe_key(), params, rng))
            .collect();
        let fourier = coefficient.iter().map(|g| g.to_fourier(&fft)).collect();
        Self {
            coefficient,
            fourier,
        }
    }

    /// Rebuild from coefficient-domain GGSWs (deserialization path): the
    /// transform-domain form is recomputed, never trusted from the wire.
    ///
    /// # Panics
    ///
    /// Panics if `coefficient` is empty or the GGSWs disagree on shape.
    pub fn from_coefficient(coefficient: Vec<GgswCiphertext>) -> Self {
        assert!(
            !coefficient.is_empty(),
            "bootstrap key needs at least one GGSW"
        );
        let n = coefficient[0].poly_size();
        let k = coefficient[0].glwe_dim();
        let l = coefficient[0].level();
        assert!(
            coefficient
                .iter()
                .all(|g| g.poly_size() == n && g.glwe_dim() == k && g.level() == l),
            "bootstrap key GGSWs must share one shape"
        );
        let fft = NegacyclicFft::new(n);
        let fourier = coefficient.iter().map(|g| g.to_fourier(&fft)).collect();
        Self {
            coefficient,
            fourier,
        }
    }

    /// Number of GGSWs, equal to the LWE dimension `n`.
    pub fn lwe_dim(&self) -> usize {
        self.coefficient.len()
    }

    /// The coefficient-domain `BSK_i` (1-indexed in the paper; 0-indexed
    /// here).
    pub fn coefficient(&self, i: usize) -> &GgswCiphertext {
        &self.coefficient[i]
    }

    /// The transform-domain `BSK_i`.
    pub fn fourier(&self, i: usize) -> &FourierGgsw {
        &self.fourier[i]
    }

    /// Total transform-domain bytes — the working set the paper reports in
    /// Fig 1 (≈100 MB at 128-bit parameters).
    pub fn fourier_bytes(&self) -> u64 {
        self.fourier.iter().map(FourierGgsw::fourier_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bsk_has_one_ggsw_per_key_bit() {
        let mut rng = StdRng::seed_from_u64(70);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let bsk = BootstrapKey::generate(&ck, &mut rng);
        assert_eq!(bsk.lwe_dim(), ck.params().lwe_dim);
        assert_eq!(bsk.fourier_bytes(), ck.params().bsk_total_bytes_fourier());
    }
}
