//! Deadline-aware dynamic-batching dispatcher — the software analogue of
//! Morphling's SW scheduler.
//!
//! The paper's throughput comes from two places: a fast datapath, and a
//! scheduler that keeps 16 bootstrapping cores saturated with *large
//! batches* formed from an incoming request stream (§V, with the batch
//! size driven by HBM bandwidth). The [`BootstrapEngine`] is the fast
//! datapath; this module is the batch-forming layer in front of it:
//!
//! - callers [`submit`](Dispatcher::submit) individual
//!   `(ciphertext, LUT)` requests, each with an optional deadline, and
//!   get back a [`Ticket`] to wait on; a multi-value caller
//!   [`submit_many`](Dispatcher::submit_many)s one ciphertext with
//!   *several* LUTs and gets a [`MultiTicket`] — downstream the batcher
//!   encodes such requests as a fanout [`BatchRequest`], so a
//!   multi-value-capable backend pays one blind rotation for all of the
//!   request's outputs;
//! - a batcher thread coalesces queued requests into micro-batches under
//!   a [`max_batch_size`](DispatcherBuilder::max_batch_size) /
//!   [`max_linger`](DispatcherBuilder::max_linger) policy: a batch is
//!   flushed as soon as it is full, or when its oldest member has waited
//!   `max_linger`, whichever comes first — bounded latency at low load,
//!   full batches at high load;
//! - admission runs through a **bounded queue**:
//!   [`try_submit`](Dispatcher::try_submit) rejects with
//!   [`TfheError::QueueFull`] instead of queueing unboundedly
//!   (backpressure), while [`submit`](Dispatcher::submit) blocks until
//!   space frees up;
//! - requests can be [cancelled](Ticket::cancel) while queued, and a
//!   request whose deadline passes before its batch starts is dropped
//!   with [`TfheError::DeadlineExceeded`] rather than doing late work;
//! - [`shutdown`](Dispatcher::shutdown) (also run on `Drop`) closes
//!   admission, **drains** everything already queued, then joins the
//!   batcher — no request is silently lost;
//! - every request's queue/execute timeline is journaled as a
//!   [`DispatchSpan`] (rendered into the Chrome trace by
//!   `morphling_core::trace`), and [`DispatcherStats`] exposes
//!   p50/p95/p99 latency plus throughput — sampled by a fixed-size
//!   deterministic reservoir, so week-long runs keep bounded memory and
//!   reproducible percentiles;
//! - multi-tenant serving: a request submitted
//!   [for a tenant](Dispatcher::submit_for) only batches with
//!   *same-tenant* traffic (key affinity), so a
//!   [`KeyStore`]-backed backend
//!   ([`KeyStoreBootstrapper`](crate::KeyStoreBootstrapper)) serves each
//!   micro-batch under exactly one pinned key; [`DispatcherStats`]
//!   breaks latency out [per tenant](TenantDispatchStats) and folds in
//!   the key cache's hit/miss/eviction counters when a store is wired in
//!   via [`DispatcherBuilder::key_store`];
//! - the front-end is fault-aware (see [`crate::resilience`]): an
//!   optional [`RetryPolicy`] re-dispatches requests that hit retryable
//!   backend faults with jittered backoff, an optional [`CircuitBreaker`]
//!   sheds admissions with [`TfheError::Overloaded`] while the backend is
//!   sick, and every retry/shed lands in a [`ResilienceJournal`] next to
//!   the breaker's own transitions.
//!
//! The backend is anything implementing [`Bootstrapper`], so the same
//! dispatcher fronts a [`ServerKey`](crate::ServerKey), a
//! [`ParallelServerKey`](crate::ParallelServerKey), or — the intended
//! production shape — a [`BootstrapEngine`]. The dispatcher itself
//! implements [`Bootstrapper`] too, so whole-batch callers and
//! single-request callers share one service.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use morphling_tfhe::{ClientKey, Dispatcher, Lut, ParamSet, ServerKey};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(11);
//! let params = ParamSet::Test.params();
//! let ck = ClientKey::generate(params.clone(), &mut rng);
//! let sk = Arc::new(ServerKey::new(&ck, &mut rng));
//!
//! let dispatcher = Dispatcher::builder().max_batch_size(8).build(sk);
//! let lut = Arc::new(Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4));
//! let ticket = dispatcher.submit(ck.encrypt(2, &mut rng), Arc::clone(&lut), None).unwrap();
//! assert_eq!(ck.decrypt(&ticket.wait().unwrap()), 3);
//! ```

// Tighter than the crate-wide `warn`: serving code must never unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::bootstrapper::{BatchRequest, Bootstrapper};
use crate::error::TfheError;
use crate::faults;
use crate::keystore::{KeyStore, TenantId};
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::resilience::{
    CircuitBreaker, ResilienceEvent, ResilienceEventKind, ResilienceJournal, RetryPolicy,
};
use crate::serving::{RetryConfig, ServingConfig};

/// Journal scope for dispatcher-originated resilience events.
const DISPATCHER_SCOPE: &str = "dispatcher";

/// Ignore a poisoned lock: the dispatcher's shared state stays consistent
/// across panics (counters are atomics; the queue is drained defensively).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One queued request: one input ciphertext through one or more LUTs
/// (`luts.len()` outputs, in LUT order). Multi-LUT requests become fanout
/// entries of the formed batch and cost a single blind rotation on a
/// multi-value-capable backend.
struct Pending {
    id: u64,
    ct: LweCiphertext,
    luts: Vec<Arc<Lut>>,
    /// Key affinity: which tenant's server key must serve this request.
    /// `None` means "the backend's default key" — its own affinity class.
    tenant: Option<TenantId>,
    deadline: Option<Instant>,
    enqueued: Instant,
    cancelled: Arc<AtomicBool>,
    reply: Sender<Result<Vec<LweCiphertext>, TfheError>>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    /// `false` once shutdown begins: admission closed, batcher draining.
    open: bool,
}

/// Latency samples kept per reservoir. 4096 points give sub-percent
/// error on p99 while bounding memory at 32 KiB per reservoir no matter
/// how long the dispatcher serves.
const LATENCY_RESERVOIR_CAP: usize = 4096;
/// Hash domain separating reservoir replacement decisions from the fault
/// injector's other deterministic draws.
const RESERVOIR_DOMAIN: u64 = 0x7265_7376; // "rsv"

/// Fixed-size latency sample: Algorithm R with the crate's seeded hash
/// ([`faults::unit_sample`]) in place of an RNG, so long-running servers
/// keep bounded memory *and* byte-reproducible percentiles.
///
/// Below capacity the reservoir stores every sample exactly, so
/// percentiles over small runs are identical to the unbounded history
/// the dispatcher used to keep. Past capacity, sample `i` (1-based)
/// replaces a hash-chosen resident with probability `cap / i` — the
/// classic uniform reservoir, minus the nondeterminism.
struct LatencyReservoir {
    seed: u64,
    samples: Vec<u64>,
    seen: u64,
}

impl LatencyReservoir {
    fn new(seed: u64) -> Self {
        Self {
            seed,
            samples: Vec::new(),
            seen: 0,
        }
    }

    fn push(&mut self, ns: u64) {
        self.seen += 1;
        if self.samples.len() < LATENCY_RESERVOIR_CAP {
            self.samples.push(ns);
            return;
        }
        // unit_sample is uniform on [0, 1), so j is uniform on
        // [0, seen); the sample survives iff j lands inside the
        // reservoir — probability cap/seen, exactly Algorithm R.
        let j = (faults::unit_sample(self.seed, RESERVOIR_DOMAIN, self.seen, 0) * self.seen as f64)
            as u64;
        if (j as usize) < self.samples.len() {
            self.samples[j as usize] = ns;
        }
    }

    /// Samples observed over the reservoir's lifetime (not the resident
    /// count, which caps at [`LATENCY_RESERVOIR_CAP`]).
    #[cfg(test)]
    fn seen(&self) -> u64 {
        self.seen
    }

    /// Ascending copy of the resident samples, ready for [`percentile`].
    fn sorted(&self) -> Vec<u64> {
        let mut v = self.samples.clone();
        v.sort_unstable();
        v
    }
}

impl Default for LatencyReservoir {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Per-tenant slice of the completion metrics.
struct TenantCounters {
    completed: u64,
    reservoir: LatencyReservoir,
}

#[derive(Default)]
struct DispatchCounters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
    retries: AtomicU64,
    shed: AtomicU64,
    /// First submission / last completion, ns since the epoch (`u64::MAX`
    /// / `0` while unset) — the throughput window.
    first_ns: AtomicU64,
    last_ns: AtomicU64,
    latencies: Mutex<LatencyReservoir>,
    per_tenant: Mutex<HashMap<u64, TenantCounters>>,
    spans: Mutex<Vec<DispatchSpan>>,
}

struct Shared {
    /// The serving knobs this dispatcher was built from (batch/linger/
    /// queue/slack are read from here; retry and breaker are materialized
    /// into the fields below at build time).
    config: ServingConfig,
    epoch: Instant,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    counters: DispatchCounters,
    /// Per-request retry policy applied by the batcher on retryable
    /// backend faults ([`RetryPolicy::none`] by default).
    retry: RetryPolicy,
    /// Optional admission gate; when open, submissions are shed with
    /// [`TfheError::Overloaded`] instead of queueing doomed work.
    breaker: Option<Arc<CircuitBreaker>>,
    /// Timeline of retry/shed events (shared with the breaker's journal
    /// when the caller wires one in).
    journal: Arc<ResilienceJournal>,
    /// The key store serving the backend, when the backend is a
    /// [`KeyStoreBootstrapper`](crate::KeyStoreBootstrapper) — lets
    /// [`Dispatcher::stats`] fold cache hit/miss/eviction counters into
    /// one serving snapshot.
    key_store: Option<Arc<KeyStore>>,
}

impl Shared {
    fn ns_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Deliver a terminal result to a request and bump the matching
    /// counter. The reply channel holds one slot and sees one send ever,
    /// so this never blocks; a dropped ticket just discards the send.
    fn resolve(&self, p: Pending, result: Result<Vec<LweCiphertext>, TfheError>) {
        let counter = match &result {
            Ok(_) => &self.counters.completed,
            Err(TfheError::Cancelled) => &self.counters.cancelled,
            Err(TfheError::DeadlineExceeded) => &self.counters.expired,
            Err(_) => &self.counters.failed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if result.is_ok() {
            self.counters
                .last_ns
                .fetch_max(self.ns_since_epoch(Instant::now()), Ordering::Relaxed);
        }
        let _ = p.reply.send(result);
    }

    /// Feed one backend-call outcome to the admission breaker, if any.
    /// Only service-health signals are recorded (successes and retryable
    /// faults); validation errors and cancellations never reach here.
    fn record_breaker(&self, success: bool) {
        if let Some(b) = &self.breaker {
            b.record(success);
        }
    }
}

/// Outcome ticket for one submitted request.
///
/// Hold it to [`wait`](Self::wait) for the result, poll with
/// [`try_wait`](Self::try_wait), or [`cancel`](Self::cancel) the request.
/// Dropping the ticket abandons the result (the request still executes
/// unless cancelled first).
pub struct Ticket {
    id: u64,
    cancelled: Arc<AtomicBool>,
    reply: Receiver<Result<Vec<LweCiphertext>, TfheError>>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("id", &self.id)
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// The dispatcher-assigned request id (monotonic per dispatcher).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Request cancellation. Best-effort: a request still queued (or
    /// picked but not yet executing) resolves to
    /// [`TfheError::Cancelled`]; one already executing completes
    /// normally.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Block until the request resolves.
    ///
    /// # Errors
    ///
    /// Whatever the request resolved to — [`TfheError::Cancelled`],
    /// [`TfheError::DeadlineExceeded`], a backend error — or
    /// [`TfheError::DispatcherShutDown`] if the batcher died without
    /// resolving it.
    pub fn wait(self) -> Result<LweCiphertext, TfheError> {
        match self.reply.recv() {
            Ok(result) => single(result),
            Err(_) => Err(TfheError::DispatcherShutDown),
        }
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<LweCiphertext, TfheError>> {
        match self.reply.try_recv() {
            Ok(result) => Some(single(result)),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(TfheError::DispatcherShutDown)),
        }
    }

    /// Bounded [`wait`](Self::wait): block at most `timeout` for the
    /// result. On timeout the request is **still in flight** — the ticket
    /// remains usable (wait again, poll, or [`cancel`](Self::cancel)),
    /// which is what lets a caller stop blocking on a wedged backend
    /// without losing the request. A delivered result is consumed: a
    /// second wait on the same ticket reports
    /// [`TfheError::DispatcherShutDown`].
    ///
    /// # Errors
    ///
    /// [`TfheError::WaitTimedOut`] (retryable) if `timeout` elapses
    /// first; otherwise as [`wait`](Self::wait).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<LweCiphertext, TfheError> {
        match self.reply.recv_timeout(timeout) {
            Ok(result) => single(result),
            Err(RecvTimeoutError::Timeout) => Err(TfheError::WaitTimedOut { timeout }),
            Err(RecvTimeoutError::Disconnected) => Err(TfheError::DispatcherShutDown),
        }
    }
}

/// Unwrap a single-LUT request's resolution: exactly one output. A
/// different shape is a backend contract violation, surfaced as the same
/// dead-service error the batcher uses for malformed backend replies.
fn single(result: Result<Vec<LweCiphertext>, TfheError>) -> Result<LweCiphertext, TfheError> {
    let mut outs = result?;
    match (outs.pop(), outs.is_empty()) {
        (Some(out), true) => Ok(out),
        _ => Err(TfheError::DispatcherShutDown),
    }
}

/// Outcome ticket for a multi-LUT request
/// ([`Dispatcher::submit_many`]): resolves to one output per submitted
/// LUT, in LUT order.
pub struct MultiTicket {
    id: u64,
    cancelled: Arc<AtomicBool>,
    reply: Receiver<Result<Vec<LweCiphertext>, TfheError>>,
}

impl std::fmt::Debug for MultiTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiTicket")
            .field("id", &self.id)
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl MultiTicket {
    /// The dispatcher-assigned request id (monotonic per dispatcher).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Request cancellation, with [`Ticket::cancel`]'s best-effort
    /// semantics.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Block until the request resolves; on success the outputs follow
    /// the submitted LUT order.
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait`].
    pub fn wait(self) -> Result<Vec<LweCiphertext>, TfheError> {
        match self.reply.recv() {
            Ok(result) => result,
            Err(_) => Err(TfheError::DispatcherShutDown),
        }
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Vec<LweCiphertext>, TfheError>> {
        match self.reply.try_recv() {
            Ok(result) => Some(result),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(TfheError::DispatcherShutDown)),
        }
    }

    /// Bounded [`wait`](Self::wait), with [`Ticket::wait_timeout`]'s
    /// semantics: [`TfheError::WaitTimedOut`] (retryable) leaves the
    /// request in flight and the ticket usable.
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait_timeout`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Vec<LweCiphertext>, TfheError> {
        match self.reply.recv_timeout(timeout) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(TfheError::WaitTimedOut { timeout }),
            Err(RecvTimeoutError::Disconnected) => Err(TfheError::DispatcherShutDown),
        }
    }
}

/// One request's life through the dispatcher, journaled for the Chrome
/// trace. All instants are durations since the dispatcher's construction
/// (its epoch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchSpan {
    /// Request id (see [`Ticket::id`]).
    pub id: u64,
    /// Micro-batch this request executed in.
    pub batch: u64,
    /// When the request entered the queue.
    pub enqueued: Duration,
    /// Time spent queued (enqueue → batch execution start).
    pub queued: Duration,
    /// When the batch started executing.
    pub exec_start: Duration,
    /// Batch execution time.
    pub exec: Duration,
}

/// Aggregate dispatcher metrics (see [`Dispatcher::stats`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DispatcherStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// `try_submit` rejections (queue full).
    pub rejected: u64,
    /// Requests cancelled before execution.
    pub cancelled: u64,
    /// Requests dropped because their deadline passed while queued.
    pub expired: u64,
    /// Requests that completed with a result.
    pub completed: u64,
    /// Requests that resolved to a backend error.
    pub failed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests that entered a micro-batch (completed + failed).
    pub batched: u64,
    /// Single-request re-dispatches after retryable backend faults
    /// (see [`DispatcherBuilder::retry_policy`]).
    pub retries: u64,
    /// Submissions shed at admission by an open circuit breaker
    /// (see [`DispatcherBuilder::circuit_breaker`]).
    pub shed: u64,
    /// `batched / batches` — the dynamic-batching figure of merit.
    pub mean_batch_size: f64,
    /// Median end-to-end latency (enqueue → result) of completed requests.
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
    /// Completed bootstraps per second over the first-submit → last-done
    /// window.
    pub throughput_bs: f64,
    /// Per-tenant completion/latency breakdown (ascending tenant id),
    /// for requests submitted with a tenant
    /// ([`Dispatcher::submit_for`] and friends).
    pub per_tenant: Vec<TenantDispatchStats>,
    /// Key-cache hits, when a [`KeyStore`] is wired in via
    /// [`DispatcherBuilder::key_store`] (0 otherwise).
    pub key_hits: u64,
    /// Key-cache misses.
    pub key_misses: u64,
    /// Key-cache evictions.
    pub key_evictions: u64,
    /// Key bytes currently resident in the cache.
    pub key_bytes_resident: u64,
}

/// One tenant's slice of [`DispatcherStats`]: completion count and
/// end-to-end latency percentiles over that tenant's requests only
/// (sampled by the same bounded reservoir as the global percentiles).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantDispatchStats {
    /// The tenant (raw id, see [`TenantId::raw`]).
    pub tenant: u64,
    /// Requests completed for this tenant.
    pub completed: u64,
    /// Median end-to-end latency (enqueue → result).
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
}

/// Nearest-rank percentile over an ascending-sorted ns array.
///
/// Uses the zero-based nearest-rank index `ceil((len − 1) · q)`, so the
/// quantile is monotone in `q`, stays within `[min, max]`, is exact on
/// singletons, and — unlike the naive `ceil(len · q)` rank — does not
/// under-report on tiny samples (the p50 of `[a, b]` is `b`, not `a`).
pub(crate) fn percentile(sorted: &[u64], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = (((sorted.len() - 1) as f64) * q.clamp(0.0, 1.0)).ceil() as usize;
    Duration::from_nanos(sorted[idx.min(sorted.len() - 1)])
}

/// Builder for [`Dispatcher`], mirroring
/// [`BootstrapEngineBuilder`](crate::BootstrapEngineBuilder)'s consuming
/// style. All knobs clamp to sane minimums, so `build` is infallible.
///
/// This is the **legacy path**, kept so existing call sites compile
/// unchanged: since the [`ServingConfig`] redesign it is a thin wrapper
/// that assembles a config plus the runtime-only wiring (a shared breaker
/// instance, a shared journal, a live key store). New code — and anything
/// consuming an autotuner recommendation — should prefer
/// [`Dispatcher::from_config`], which validates loudly instead of
/// clamping.
#[derive(Clone, Debug, Default)]
pub struct DispatcherBuilder {
    config: ServingConfig,
    breaker: Option<Arc<CircuitBreaker>>,
    journal: Option<Arc<ResilienceJournal>>,
    key_store: Option<Arc<KeyStore>>,
}

impl DispatcherBuilder {
    /// Defaults: batch up to 32, linger up to 2 ms, queue 1024 deep
    /// ([`ServingConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start from an explicit [`ServingConfig`] (e.g. an autotuner
    /// recommendation read back from `autotune_config.json`), keeping the
    /// builder available for runtime-only wiring
    /// ([`key_store`](Self::key_store),
    /// [`resilience_journal`](Self::resilience_journal), a shared
    /// [`circuit_breaker`](Self::circuit_breaker) instance).
    ///
    /// # Errors
    ///
    /// [`TfheError::InvalidServingConfig`] if `config` fails
    /// [`ServingConfig::validate`] — degenerate knobs are rejected here,
    /// not clamped.
    pub fn from_config(config: &ServingConfig) -> Result<Self, TfheError> {
        config.validate()?;
        Ok(Self {
            config: config.clone(),
            ..Self::default()
        })
    }

    /// Flush a batch as soon as it reaches this many requests (the
    /// paper's per-wave batch sizing; clamped to ≥ 1). `1` disables
    /// coalescing — every request executes alone, the baseline the bench
    /// compares against.
    pub fn max_batch_size(mut self, n: usize) -> Self {
        self.config.max_batch_size = n.max(1);
        self
    }

    /// Flush a non-full batch once its oldest member has waited this
    /// long — the latency bound a mostly-idle dispatcher adds.
    pub fn max_linger(mut self, linger: Duration) -> Self {
        self.config.max_linger = linger;
        self
    }

    /// Admission-queue depth (clamped to ≥ 1). Beyond it, `try_submit`
    /// rejects with [`TfheError::QueueFull`] and `submit` blocks.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.config.queue_capacity = cap.max(1);
        self
    }

    /// Start a deadline-triggered flush this much before the deadline
    /// itself, so the request it rescues still starts in time despite
    /// condvar wake-up jitter. Default 500 µs.
    pub fn deadline_slack(mut self, slack: Duration) -> Self {
        self.config.deadline_slack = slack;
        self
    }

    /// Retry requests that hit a *retryable* backend fault
    /// ([`TfheError::is_retryable`]) — the batcher re-dispatches the
    /// failed request alone, up to the policy's budget, sleeping the
    /// policy's (deterministically jittered) backoff between attempts.
    /// Default: [`RetryPolicy::none`], preserving fail-fast semantics.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = RetryConfig::from(policy);
        self
    }

    /// Gate admission behind `breaker`: while it is open, `submit` /
    /// `try_submit` fail fast with [`TfheError::Overloaded`] instead of
    /// queueing work a sick backend will drop. Execution outcomes feed
    /// the breaker (successes and retryable faults), so half-open probe
    /// traffic can close it again.
    pub fn circuit_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Journal retry/shed events into `journal` — share one journal
    /// across the breaker, a [`FailoverBootstrapper`](crate::FailoverBootstrapper)
    /// backend, and this dispatcher for a single merged timeline.
    /// Default: a fresh private journal.
    pub fn resilience_journal(mut self, journal: Arc<ResilienceJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Surface `store`'s cache counters through [`Dispatcher::stats`]
    /// (key hits/misses/evictions/resident bytes). Purely observational:
    /// pass the same store's
    /// [`KeyStoreBootstrapper`](crate::KeyStoreBootstrapper) as the
    /// `build` backend to actually serve through it.
    pub fn key_store(mut self, store: Arc<KeyStore>) -> Self {
        self.key_store = Some(store);
        self
    }

    /// Spawn the batcher thread over `backend` and start serving.
    ///
    /// A declarative [`ServingConfig::breaker`] (reached via
    /// [`from_config`](Self::from_config)) is materialized into a fresh
    /// [`CircuitBreaker`] here, journaling into the dispatcher's journal;
    /// an explicit [`circuit_breaker`](Self::circuit_breaker) instance
    /// takes precedence.
    pub fn build<B>(self, backend: B) -> Dispatcher
    where
        B: Bootstrapper + Send + Sync + 'static,
    {
        let journal = self.journal.unwrap_or_default();
        let breaker = self.breaker.or_else(|| {
            self.config.breaker.as_ref().map(|b| {
                Arc::new(
                    b.to_builder()
                        .name("dispatcher-breaker")
                        .journal(Arc::clone(&journal))
                        .build(),
                )
            })
        });
        let retry = self.config.retry.policy();
        let shared = Arc::new(Shared {
            config: self.config,
            epoch: Instant::now(),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            counters: DispatchCounters {
                first_ns: AtomicU64::new(u64::MAX),
                ..DispatchCounters::default()
            },
            retry,
            breaker,
            journal,
            key_store: self.key_store,
        });
        let backend: Arc<dyn Bootstrapper + Send + Sync> = Arc::new(backend);
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::spawn(move || batcher_loop(&batcher_shared, backend.as_ref()));
        Dispatcher {
            shared,
            batcher: Some(batcher),
            next_id: AtomicU64::new(0),
        }
    }
}

/// The dynamic-batching front-end. See the [module docs](self).
pub struct Dispatcher {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Dispatcher {
    /// Configure batch sizing, linger, and queue depth before building.
    pub fn builder() -> DispatcherBuilder {
        DispatcherBuilder::new()
    }

    /// Wrap `backend` with default policy (batch ≤ 32, linger ≤ 2 ms,
    /// queue 1024).
    pub fn new<B>(backend: B) -> Self
    where
        B: Bootstrapper + Send + Sync + 'static,
    {
        Self::builder().build(backend)
    }

    /// Build a dispatcher from a validated [`ServingConfig`] — the
    /// consumption side of the autotuner loop (`report autotune` emits
    /// the config; this turns it back into a serving front-end).
    ///
    /// `config.workers` does not spawn anything here (the dispatcher
    /// fronts whatever `backend` it is given); pair with
    /// [`ServingConfig::build_engine`] to size the backend too. A
    /// `config.breaker` section materializes into a fresh
    /// [`CircuitBreaker`]; use [`DispatcherBuilder::from_config`] when
    /// runtime wiring (shared breaker/journal/key store) is needed.
    ///
    /// # Errors
    ///
    /// [`TfheError::InvalidServingConfig`] if `config` fails
    /// [`ServingConfig::validate`] — degenerate knobs (`workers == 0`,
    /// `max_batch_size == 0`, a zero queue) are rejected loudly here
    /// instead of panicking (or being silently clamped) deeper in.
    pub fn from_config<B>(config: &ServingConfig, backend: B) -> Result<Self, TfheError>
    where
        B: Bootstrapper + Send + Sync + 'static,
    {
        Ok(DispatcherBuilder::from_config(config)?.build(backend))
    }

    /// Submit one request, blocking while the admission queue is full.
    ///
    /// `deadline` is the latest acceptable *execution start*: if the
    /// batcher has not started the request's batch by then, the request
    /// resolves to [`TfheError::DeadlineExceeded`] instead of running
    /// late. A deadline sooner than the linger window flushes the batch
    /// early.
    ///
    /// # Errors
    ///
    /// [`TfheError::DispatcherShutDown`] after
    /// [`shutdown`](Self::shutdown).
    pub fn submit(
        &self,
        ct: LweCiphertext,
        lut: Arc<Lut>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, TfheError> {
        let (id, cancelled, reply) = self.enqueue(ct, vec![lut], None, deadline, true)?;
        Ok(Ticket {
            id,
            cancelled,
            reply,
        })
    }

    /// [`submit`](Self::submit) on behalf of `tenant`: the batcher only
    /// coalesces this request with batch-mates of the *same* tenant (key
    /// affinity — every formed batch is servable by one tenant's key),
    /// and a [`KeyStoreBootstrapper`](crate::KeyStoreBootstrapper)
    /// backend resolves the tenant's key per batch.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_for(
        &self,
        tenant: TenantId,
        ct: LweCiphertext,
        lut: Arc<Lut>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, TfheError> {
        let (id, cancelled, reply) = self.enqueue(ct, vec![lut], Some(tenant), deadline, true)?;
        Ok(Ticket {
            id,
            cancelled,
            reply,
        })
    }

    /// Submit one ciphertext to be evaluated through **several** LUTs —
    /// one output per LUT, in order. The batcher encodes the request as a
    /// fanout entry of its micro-batch, so a multi-value-capable backend
    /// (any [`ServerKey`](crate::ServerKey)-derived path) produces all
    /// the outputs from a *single* blind rotation. Blocks while the
    /// admission queue is full, like [`submit`](Self::submit); the whole
    /// request occupies one queue slot.
    ///
    /// # Errors
    ///
    /// [`TfheError::NoLutProvided`] if `luts` is empty,
    /// [`TfheError::DispatcherShutDown`] after [`shutdown`](Self::shutdown).
    pub fn submit_many(
        &self,
        ct: LweCiphertext,
        luts: Vec<Arc<Lut>>,
        deadline: Option<Instant>,
    ) -> Result<MultiTicket, TfheError> {
        let (id, cancelled, reply) = self.enqueue(ct, luts, None, deadline, true)?;
        Ok(MultiTicket {
            id,
            cancelled,
            reply,
        })
    }

    /// [`submit_many`](Self::submit_many) on behalf of `tenant`, with
    /// [`submit_for`](Self::submit_for)'s key-affinity semantics.
    ///
    /// # Errors
    ///
    /// As [`submit_many`](Self::submit_many).
    pub fn submit_many_for(
        &self,
        tenant: TenantId,
        ct: LweCiphertext,
        luts: Vec<Arc<Lut>>,
        deadline: Option<Instant>,
    ) -> Result<MultiTicket, TfheError> {
        let (id, cancelled, reply) = self.enqueue(ct, luts, Some(tenant), deadline, true)?;
        Ok(MultiTicket {
            id,
            cancelled,
            reply,
        })
    }

    /// Non-blocking [`submit`](Self::submit): rejects with
    /// [`TfheError::QueueFull`] instead of waiting — the backpressure
    /// signal for callers that can shed or defer load.
    ///
    /// # Errors
    ///
    /// [`TfheError::QueueFull`] at capacity,
    /// [`TfheError::DispatcherShutDown`] after shutdown.
    pub fn try_submit(
        &self,
        ct: LweCiphertext,
        lut: Arc<Lut>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, TfheError> {
        let (id, cancelled, reply) = self.enqueue(ct, vec![lut], None, deadline, false)?;
        Ok(Ticket {
            id,
            cancelled,
            reply,
        })
    }

    /// [`try_submit`](Self::try_submit) on behalf of `tenant`, with
    /// [`submit_for`](Self::submit_for)'s key-affinity semantics.
    ///
    /// # Errors
    ///
    /// As [`try_submit`](Self::try_submit).
    pub fn try_submit_for(
        &self,
        tenant: TenantId,
        ct: LweCiphertext,
        lut: Arc<Lut>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, TfheError> {
        let (id, cancelled, reply) = self.enqueue(ct, vec![lut], Some(tenant), deadline, false)?;
        Ok(Ticket {
            id,
            cancelled,
            reply,
        })
    }

    #[allow(clippy::type_complexity)]
    fn enqueue(
        &self,
        ct: LweCiphertext,
        luts: Vec<Arc<Lut>>,
        tenant: Option<TenantId>,
        deadline: Option<Instant>,
        block: bool,
    ) -> Result<
        (
            u64,
            Arc<AtomicBool>,
            Receiver<Result<Vec<LweCiphertext>, TfheError>>,
        ),
        TfheError,
    > {
        if luts.is_empty() {
            return Err(TfheError::NoLutProvided);
        }
        let shared = &self.shared;
        // Breaker-gated admission: an open breaker sheds the request at
        // the front door (fail fast) rather than queueing doomed work.
        if let Some(b) = &shared.breaker {
            if let Err(e) = b.try_acquire() {
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                shared
                    .journal
                    .record(DISPATCHER_SCOPE, ResilienceEventKind::Shed);
                return Err(e);
            }
        }
        let mut st = lock(&shared.state);
        loop {
            if !st.open {
                return Err(TfheError::DispatcherShutDown);
            }
            if st.queue.len() < shared.config.queue_capacity {
                break;
            }
            if !block {
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(TfheError::QueueFull {
                    capacity: shared.config.queue_capacity,
                });
            }
            st = shared
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel::bounded(1);
        let cancelled = Arc::new(AtomicBool::new(false));
        let enqueued = Instant::now();
        st.queue.push_back(Pending {
            id,
            ct,
            luts,
            tenant,
            deadline,
            enqueued,
            cancelled: Arc::clone(&cancelled),
            reply: reply_tx,
        });
        drop(st);
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .first_ns
            .fetch_min(shared.ns_since_epoch(enqueued), Ordering::Relaxed);
        shared.not_empty.notify_one();
        Ok((id, cancelled, reply_rx))
    }

    /// Aggregate metrics since construction.
    pub fn stats(&self) -> DispatcherStats {
        let c = &self.shared.counters;
        let lats = lock(&c.latencies).sorted();
        let mut per_tenant: Vec<TenantDispatchStats> = {
            let map = lock(&c.per_tenant);
            map.iter()
                .map(|(&tenant, tc)| {
                    let s = tc.reservoir.sorted();
                    TenantDispatchStats {
                        tenant,
                        completed: tc.completed,
                        p50_latency: percentile(&s, 0.50),
                        p95_latency: percentile(&s, 0.95),
                        p99_latency: percentile(&s, 0.99),
                    }
                })
                .collect()
        };
        per_tenant.sort_unstable_by_key(|t| t.tenant);
        let key = self
            .shared
            .key_store
            .as_ref()
            .map(|s| s.stats())
            .unwrap_or_default();
        let batches = c.batches.load(Ordering::Relaxed);
        let batched = c.batched.load(Ordering::Relaxed);
        let completed = c.completed.load(Ordering::Relaxed);
        let first = c.first_ns.load(Ordering::Relaxed);
        let last = c.last_ns.load(Ordering::Relaxed);
        let throughput_bs = if completed > 0 && last > first {
            completed as f64 / ((last - first) as f64 / 1e9)
        } else {
            0.0
        };
        DispatcherStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            completed,
            failed: c.failed.load(Ordering::Relaxed),
            batches,
            batched,
            mean_batch_size: if batches > 0 {
                batched as f64 / batches as f64
            } else {
                0.0
            },
            retries: c.retries.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            p50_latency: percentile(&lats, 0.50),
            p95_latency: percentile(&lats, 0.95),
            p99_latency: percentile(&lats, 0.99),
            throughput_bs,
            per_tenant,
            key_hits: key.hits,
            key_misses: key.misses,
            key_evictions: key.evictions,
            key_bytes_resident: key.bytes_resident,
        }
    }

    /// The key store wired in via [`DispatcherBuilder::key_store`], if
    /// any — for journal access (event reconciliation, trace export).
    pub fn key_store(&self) -> Option<&Arc<KeyStore>> {
        self.shared.key_store.as_ref()
    }

    /// Snapshot of the per-request queue/execute journal.
    pub fn spans(&self) -> Vec<DispatchSpan> {
        lock(&self.shared.counters.spans).clone()
    }

    /// Snapshot of the resilience timeline: retries and sheds journaled
    /// by this dispatcher, plus whatever else shares the journal (breaker
    /// transitions, failover events) when one was wired in via
    /// [`DispatcherBuilder::resilience_journal`].
    pub fn resilience_events(&self) -> Vec<ResilienceEvent> {
        self.shared.journal.events()
    }

    /// The journal behind [`resilience_events`](Self::resilience_events).
    pub fn resilience_journal(&self) -> &Arc<ResilienceJournal> {
        &self.shared.journal
    }

    /// The instant request/span timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.shared.epoch
    }

    /// Admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.config.queue_capacity
    }

    /// Batch-size cap.
    pub fn max_batch_size(&self) -> usize {
        self.shared.config.max_batch_size
    }

    /// Linger bound.
    pub fn max_linger(&self) -> Duration {
        self.shared.config.max_linger
    }

    /// How far before a member's deadline a batch is flushed early.
    pub fn deadline_slack(&self) -> Duration {
        self.shared.config.deadline_slack
    }

    /// The serving knobs this dispatcher runs under. From the
    /// [`from_config`](Self::from_config) path this is the caller's
    /// config verbatim; from the legacy [`builder`](Self::builder) path
    /// it is the equivalent assembled config (ready to serialize and pin).
    pub fn config(&self) -> &ServingConfig {
        &self.shared.config
    }

    /// Graceful shutdown: close admission, **drain** every request
    /// already queued (each resolves normally), then join the batcher.
    /// Idempotent; also run by `Drop`. Later submissions fail with
    /// [`TfheError::DispatcherShutDown`].
    pub fn shutdown(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.open = false;
        }
        // Wake the batcher (to notice the close) and any blocked
        // submitters (to fail fast).
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("max_batch_size", &self.shared.config.max_batch_size)
            .field("max_linger", &self.shared.config.max_linger)
            .field("queue_capacity", &self.shared.config.queue_capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Whole-batch callers can treat the dispatcher as just another backend:
/// the request is split into individual submissions (sharing the
/// request's deadline), which the batcher is free to coalesce with
/// traffic from other callers — cross-request batching, the paper's
/// SW-scheduler behavior. Results come back in input order.
impl Bootstrapper for Dispatcher {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        if req.is_empty() {
            return Ok(Vec::new());
        }
        let luts: Vec<Arc<Lut>> = req.luts().iter().cloned().map(Arc::new).collect();
        let tenant = req.tenant();
        if let Some(map) = req.fanout() {
            // Each fanout input becomes one multi-LUT submission, so the
            // batcher keeps the input's LUTs together (one rotation per
            // input downstream) while still coalescing across inputs.
            // The request's tenant rides along on every submission, so
            // key affinity holds across the split.
            let mut tickets = Vec::with_capacity(req.len());
            for (ct, list) in req.ciphertexts().iter().zip(map) {
                let picked: Vec<Arc<Lut>> = list.iter().map(|&j| Arc::clone(&luts[j])).collect();
                let (id, cancelled, reply) =
                    self.enqueue(ct.clone(), picked, tenant, req.deadline(), true)?;
                tickets.push(MultiTicket {
                    id,
                    cancelled,
                    reply,
                });
            }
            let mut out = Vec::with_capacity(req.output_len());
            let mut first_err: Option<TfheError> = None;
            for ticket in tickets {
                match ticket.wait() {
                    Ok(item) => out.extend(item),
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            return match first_err {
                Some(e) => Err(e),
                None => Ok(out),
            };
        }
        let mut tickets = Vec::with_capacity(req.len());
        for (i, ct) in req.ciphertexts().iter().enumerate() {
            let lut = match req.selectors() {
                Some(sel) => &luts[sel[i]],
                None => &luts[0],
            };
            let (id, cancelled, reply) = self.enqueue(
                ct.clone(),
                vec![Arc::clone(lut)],
                tenant,
                req.deadline(),
                true,
            )?;
            tickets.push(Ticket {
                id,
                cancelled,
                reply,
            });
        }
        let mut out = Vec::with_capacity(tickets.len());
        let mut first_err: Option<TfheError> = None;
        for ticket in tickets {
            match ticket.wait() {
                Ok(ct) => out.push(ct),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

/// Has `deadline` passed at `now`? The boundary counts as expired: a
/// deadline is the latest acceptable *execution start*, and work picked
/// up exactly at `d == now` cannot start before it.
fn deadline_expired(deadline: Option<Instant>, now: Instant) -> bool {
    deadline.is_some_and(|d| d <= now)
}

/// The one cancellation/deadline sweep every pickup point runs (queue
/// pop in `take_first` / `collect_linger`, and the last look in
/// `execute_batch`): a cancelled or expired request is resolved on the
/// spot and filtered out; a live one is handed back.
fn admit_live(shared: &Shared, p: Pending, now: Instant) -> Option<Pending> {
    if p.cancelled.load(Ordering::SeqCst) {
        shared.resolve(p, Err(TfheError::Cancelled));
        None
    } else if deadline_expired(p.deadline, now) {
        shared.resolve(p, Err(TfheError::DeadlineExceeded));
        None
    } else {
        Some(p)
    }
}

/// Pop the next live request, blocking until one arrives or shutdown
/// completes the drain. Cancelled / expired requests are resolved on the
/// spot and skipped.
fn take_first(shared: &Shared) -> Option<Pending> {
    let mut st = lock(&shared.state);
    loop {
        while let Some(p) = st.queue.pop_front() {
            shared.not_full.notify_all();
            if let Some(p) = admit_live(shared, p, Instant::now()) {
                return Some(p);
            }
        }
        if !st.open {
            return None;
        }
        st = shared
            .not_empty
            .wait(st)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Grow `batch` (seeded with one request) until it is full, the linger
/// window of its oldest member closes, a member's deadline forces an
/// early flush, or shutdown ends the wait.
///
/// Key affinity: only requests sharing the seed's tenant join the batch,
/// so every formed batch is servable by exactly one server key (a
/// key-store backend then pins one key per backend call instead of
/// thrashing between tenants mid-batch). Other tenants' requests are
/// left queued **in order**; cancelled or expired requests of any tenant
/// are still swept and resolved during the scan.
fn collect_linger(shared: &Shared, batch: &mut Vec<Pending>) {
    let flush_for = |p: &Pending| -> Option<Instant> {
        p.deadline
            .map(|d| d.checked_sub(shared.config.deadline_slack).unwrap_or(d))
    };
    let affinity = batch[0].tenant;
    let mut flush_at = batch[0].enqueued + shared.config.max_linger;
    if let Some(d) = flush_for(&batch[0]) {
        flush_at = flush_at.min(d);
    }
    if shared.config.max_batch_size <= 1 {
        return;
    }
    let mut st = lock(&shared.state);
    loop {
        let mut i = 0;
        while batch.len() < shared.config.max_batch_size && i < st.queue.len() {
            let now = Instant::now();
            let doomed = st.queue[i].cancelled.load(Ordering::SeqCst)
                || deadline_expired(st.queue[i].deadline, now);
            if !doomed && st.queue[i].tenant != affinity {
                i += 1;
                continue;
            }
            let Some(p) = st.queue.remove(i) else {
                break;
            };
            shared.not_full.notify_all();
            let Some(p) = admit_live(shared, p, now) else {
                continue;
            };
            if let Some(d) = flush_for(&p) {
                flush_at = flush_at.min(d);
            }
            batch.push(p);
        }
        if batch.len() >= shared.config.max_batch_size || !st.open {
            return;
        }
        let now = Instant::now();
        let Some(wait) = flush_at
            .checked_duration_since(now)
            .filter(|w| !w.is_zero())
        else {
            return;
        };
        let (guard, _timed_out) = shared
            .not_empty
            .wait_timeout(st, wait)
            .unwrap_or_else(PoisonError::into_inner);
        st = guard;
    }
}

/// Execute one formed micro-batch: a last cancellation/deadline sweep,
/// LUT deduplication by `Arc` identity, one backend call, then result
/// distribution and journaling. If a multi-request batch fails as a
/// whole, each member is rerun alone so one malformed request cannot
/// poison its batch-mates; single-request failures then go through the
/// retry policy before surfacing.
fn execute_batch(shared: &Shared, backend: &dyn Bootstrapper, batch: Vec<Pending>) {
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for p in batch {
        if let Some(p) = admit_live(shared, p, now) {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }
    // Key-affinity split: `collect_linger` forms single-tenant batches,
    // but a batch seeded at `max_batch <= 1` or raced by future callers
    // could still mix tenants — lower each tenant group as its own
    // backend call, so one call never needs two server keys.
    let mut groups: Vec<Vec<Pending>> = Vec::new();
    for p in live {
        match groups.iter_mut().find(|g| g[0].tenant == p.tenant) {
            Some(g) => g.push(p),
            None => groups.push(vec![p]),
        }
    }
    for mut live in groups {
        let batch_id = shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .batched
            .fetch_add(live.len() as u64, Ordering::Relaxed);
        let exec_start = Instant::now();
        match run_as_batch(backend, &live) {
            Ok(outs) => {
                shared.record_breaker(true);
                distribute(shared, batch_id, exec_start, live, outs);
            }
            Err(e) => {
                if e.is_retryable() {
                    shared.record_breaker(false);
                }
                if live.len() > 1 {
                    // Poison-pill isolation: rerun each member alone so
                    // only the malformed (or genuinely failing) requests
                    // see the error; `finish_single` layers the retry
                    // policy on top.
                    for p in live {
                        finish_single(shared, backend, batch_id, exec_start, p, None);
                    }
                } else if let Some(p) = live.pop() {
                    // The lone member already observed this failure —
                    // hand it to the retry loop instead of re-executing
                    // to rediscover the same error.
                    finish_single(shared, backend, batch_id, exec_start, p, Some(e));
                }
            }
        }
    }
}

/// Run one request alone until it resolves: success distributes, a
/// retryable fault retries within [`Shared::retry`]'s budget (journaled,
/// counted, backed off with deterministic jitter), anything else — or an
/// exhausted budget — surfaces to the caller. `first_err` carries a
/// failure the caller already observed for this request, consumed as
/// attempt zero so the work is not repeated just to rediscover it.
fn finish_single(
    shared: &Shared,
    backend: &dyn Bootstrapper,
    batch_id: u64,
    exec_start: Instant,
    p: Pending,
    mut first_err: Option<TfheError>,
) {
    let mut attempt: u32 = 0;
    loop {
        let err = match first_err.take() {
            Some(e) => e,
            None => match run_as_batch(backend, std::slice::from_ref(&p)) {
                Ok(outs) if outs.len() == p.luts.len() => {
                    shared.record_breaker(true);
                    distribute(shared, batch_id, exec_start, vec![p], outs);
                    return;
                }
                Ok(_) => {
                    shared.resolve(p, Err(TfheError::DispatcherShutDown));
                    return;
                }
                Err(e) => {
                    if e.is_retryable() {
                        shared.record_breaker(false);
                    }
                    e
                }
            },
        };
        if shared.retry.should_retry(&err, attempt) {
            attempt += 1;
            shared.counters.retries.fetch_add(1, Ordering::Relaxed);
            shared
                .journal
                .record(DISPATCHER_SCOPE, ResilienceEventKind::Retry { attempt });
            let backoff = shared.retry.backoff(p.id, attempt);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            continue;
        }
        shared.resolve(p, Err(err));
        return;
    }
}

/// Build a [`BatchRequest`] for `live` (deduplicating LUTs by `Arc`
/// identity) and run it on the backend. Returns the flat output vector:
/// pending `i` owns the next `live[i].luts.len()` outputs in order.
fn run_as_batch(
    backend: &dyn Bootstrapper,
    live: &[Pending],
) -> Result<Vec<LweCiphertext>, TfheError> {
    let mut luts: Vec<Arc<Lut>> = Vec::new();
    let mut lists: Vec<Vec<usize>> = Vec::with_capacity(live.len());
    for p in live {
        let mut list = Vec::with_capacity(p.luts.len());
        for lut in &p.luts {
            let idx = match luts.iter().position(|l| Arc::ptr_eq(l, lut)) {
                Some(idx) => idx,
                None => {
                    luts.push(Arc::clone(lut));
                    luts.len() - 1
                }
            };
            list.push(idx);
        }
        lists.push(list);
    }
    let cts: Vec<LweCiphertext> = live.iter().map(|p| p.ct.clone()).collect();
    let mut owned: Vec<Lut> = luts.iter().map(|l| (**l).clone()).collect();
    let req = if lists.iter().any(|l| l.len() > 1) {
        // At least one multi-LUT member: encode the whole batch as a
        // fanout request so the backend can fuse rotations per input.
        BatchRequest::fanned_out(cts, owned, lists)?
    } else if owned.len() == 1 {
        BatchRequest::shared(cts, owned.swap_remove(0))
    } else {
        let selectors: Vec<usize> = lists
            .iter()
            .map(|l| l.first().copied().unwrap_or(0))
            .collect();
        BatchRequest::per_item(cts, owned, selectors)?
    };
    // `live` is single-tenant by construction (affinity collect + the
    // execute-time split), so the group's tenant is its first member's.
    let req = match live[0].tenant {
        Some(t) => req.with_tenant(t),
        None => req,
    };
    let outs = backend.try_bootstrap_batch(&req)?;
    let expected: usize = live.iter().map(|p| p.luts.len()).sum();
    if outs.len() != expected {
        // A backend returning the wrong shape is a contract violation;
        // surface it as a dead-service error rather than misdelivering.
        return Err(TfheError::DispatcherShutDown);
    }
    Ok(outs)
}

/// Hand each member its output and journal the batch's spans. The whole
/// batch shares one execution window; each request's queue time runs from
/// its own enqueue to that window's start.
fn distribute(
    shared: &Shared,
    batch_id: u64,
    exec_start: Instant,
    live: Vec<Pending>,
    outs: Vec<LweCiphertext>,
) {
    let exec_end = Instant::now();
    let exec = exec_end.saturating_duration_since(exec_start);
    {
        let mut spans = lock(&shared.counters.spans);
        let mut lats = lock(&shared.counters.latencies);
        let mut per_tenant = lock(&shared.counters.per_tenant);
        for p in &live {
            let ns = exec_end.saturating_duration_since(p.enqueued).as_nanos() as u64;
            lats.push(ns);
            if let Some(t) = p.tenant {
                // Seed each tenant's reservoir with its id, so tenants'
                // replacement patterns decorrelate deterministically.
                let tc = per_tenant.entry(t.raw()).or_insert_with(|| TenantCounters {
                    completed: 0,
                    reservoir: LatencyReservoir::new(t.raw()),
                });
                tc.completed += 1;
                tc.reservoir.push(ns);
            }
            spans.push(DispatchSpan {
                id: p.id,
                batch: batch_id,
                enqueued: p.enqueued.saturating_duration_since(shared.epoch),
                queued: exec_start.saturating_duration_since(p.enqueued),
                exec_start: exec_start.saturating_duration_since(shared.epoch),
                exec,
            });
        }
    }
    // Slice the flat outputs by each member's LUT count (single-LUT
    // members take exactly one).
    let mut outs = outs.into_iter();
    for p in live {
        let item: Vec<LweCiphertext> = outs.by_ref().take(p.luts.len()).collect();
        shared.resolve(p, Ok(item));
    }
}

fn batcher_loop(shared: &Shared, backend: &dyn Bootstrapper) {
    while let Some(first) = take_first(shared) {
        let mut batch = vec![first];
        collect_linger(shared, &mut batch);
        execute_batch(shared, backend, batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use crate::server::ServerKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Echo backend: returns the inputs unchanged, recording each batch's
    /// size and optionally blocking on a gate until released — the
    /// deterministic scaffolding for batching/backpressure tests.
    struct EchoBackend {
        sizes: Mutex<Vec<usize>>,
        /// The tenant each backend call was made for, in call order.
        tenants: Mutex<Vec<Option<u64>>>,
        started: Sender<()>,
        gate: Receiver<()>,
        gated: bool,
    }

    fn echo(gated: bool) -> (Arc<EchoBackend>, Receiver<()>, Sender<()>) {
        let (started_tx, started_rx) = channel::unbounded();
        let (gate_tx, gate_rx) = channel::unbounded();
        (
            Arc::new(EchoBackend {
                sizes: Mutex::new(Vec::new()),
                tenants: Mutex::new(Vec::new()),
                started: started_tx,
                gate: gate_rx,
                gated,
            }),
            started_rx,
            gate_tx,
        )
    }

    impl Bootstrapper for EchoBackend {
        fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
            lock(&self.sizes).push(req.len());
            lock(&self.tenants).push(req.tenant().map(TenantId::raw));
            let _ = self.started.send(());
            if self.gated {
                let _ = self.gate.recv();
            }
            // Echo each input once per output it owes (fanout-aware).
            let mut out = Vec::with_capacity(req.output_len());
            for (i, ct) in req.ciphertexts().iter().enumerate() {
                out.extend(std::iter::repeat_with(|| ct.clone()).take(req.output_count(i)));
            }
            Ok(out)
        }
    }

    fn dummy_ct(tag: u64) -> LweCiphertext {
        LweCiphertext::trivial(morphling_math::Torus32::from_raw(tag as u32), 4)
    }

    fn dummy_lut() -> Arc<Lut> {
        Arc::new(Lut::identity(256, 4))
    }

    #[test]
    fn coalesces_under_load_and_keeps_request_identity() {
        let (backend, started, gate) = echo(true);
        let d = Dispatcher::builder()
            .max_batch_size(4)
            .max_linger(Duration::from_millis(50))
            .build(Arc::clone(&backend));
        let lut = dummy_lut();
        // First request gets picked up alone and blocks in the backend...
        let t0 = d.submit(dummy_ct(0), Arc::clone(&lut), None).unwrap();
        started.recv().unwrap();
        // ...while seven more pile up behind it.
        let tickets: Vec<Ticket> = (1..8)
            .map(|i| d.submit(dummy_ct(i), Arc::clone(&lut), None).unwrap())
            .collect();
        gate.send(()).unwrap();
        started.recv().unwrap();
        gate.send(()).unwrap();
        started.recv().unwrap();
        gate.send(()).unwrap();
        assert_eq!(t0.wait().unwrap(), dummy_ct(0));
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap(), dummy_ct(i as u64 + 1), "i={i}");
        }
        // 8 requests in 3 batches: 1 (the lone first pick) + 4 + 3.
        assert_eq!(lock(&backend.sizes).clone(), vec![1, 4, 3]);
        let stats = d.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.batches, 3);
        assert!((stats.mean_batch_size - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn try_submit_backpressures_at_capacity() {
        let (backend, started, gate) = echo(true);
        let d = Dispatcher::builder()
            .max_batch_size(1)
            .queue_capacity(1)
            .build(Arc::clone(&backend));
        let lut = dummy_lut();
        let t0 = d.submit(dummy_ct(0), Arc::clone(&lut), None).unwrap();
        started.recv().unwrap(); // batcher is now wedged in the backend
        let t1 = d.try_submit(dummy_ct(1), Arc::clone(&lut), None).unwrap();
        let err = d
            .try_submit(dummy_ct(2), Arc::clone(&lut), None)
            .unwrap_err();
        assert_eq!(err, TfheError::QueueFull { capacity: 1 });
        gate.send(()).unwrap();
        started.recv().unwrap();
        gate.send(()).unwrap();
        assert!(t0.wait().is_ok());
        assert!(t1.wait().is_ok());
        let stats = d.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn cancellation_resolves_without_executing() {
        let (backend, started, gate) = echo(true);
        let d = Dispatcher::builder()
            .max_batch_size(1)
            .build(Arc::clone(&backend));
        let lut = dummy_lut();
        let t0 = d.submit(dummy_ct(0), Arc::clone(&lut), None).unwrap();
        started.recv().unwrap();
        let t1 = d.submit(dummy_ct(1), Arc::clone(&lut), None).unwrap();
        assert!(t1.try_wait().is_none());
        t1.cancel();
        gate.send(()).unwrap();
        assert!(t0.wait().is_ok());
        assert_eq!(t1.wait().unwrap_err(), TfheError::Cancelled);
        let stats = d.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 1);
        // The cancelled request never reached the backend.
        assert_eq!(lock(&backend.sizes).clone(), vec![1]);
    }

    #[test]
    fn expired_deadline_drops_the_request() {
        let (backend, started, gate) = echo(true);
        let d = Dispatcher::builder()
            .max_batch_size(1)
            .build(Arc::clone(&backend));
        let lut = dummy_lut();
        let t0 = d.submit(dummy_ct(0), Arc::clone(&lut), None).unwrap();
        started.recv().unwrap();
        // Deadline already in the past by the time the batcher gets to it.
        let past = Instant::now() - Duration::from_millis(5);
        let t1 = d.submit(dummy_ct(1), Arc::clone(&lut), Some(past)).unwrap();
        // A generous deadline sails through.
        let future = Instant::now() + Duration::from_secs(60);
        let t2 = d
            .submit(dummy_ct(2), Arc::clone(&lut), Some(future))
            .unwrap();
        gate.send(()).unwrap();
        started.recv().unwrap();
        gate.send(()).unwrap();
        assert!(t0.wait().is_ok());
        assert_eq!(t1.wait().unwrap_err(), TfheError::DeadlineExceeded);
        assert!(t2.wait().is_ok());
        assert_eq!(d.stats().expired, 1);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (backend, started, gate) = echo(true);
        let mut d = Dispatcher::builder()
            .max_batch_size(2)
            .max_linger(Duration::from_secs(5))
            .build(Arc::clone(&backend));
        let lut = dummy_lut();
        let tickets: Vec<Ticket> = (0..5)
            .map(|i| d.submit(dummy_ct(i), Arc::clone(&lut), None).unwrap())
            .collect();
        started.recv().unwrap();
        // Release the gate for every remaining batch, then shut down: the
        // queue must drain, not drop.
        for _ in 0..4 {
            let _ = gate.send(());
        }
        d.shutdown();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap(), dummy_ct(i as u64), "i={i}");
        }
        assert_eq!(d.stats().completed, 5);
        assert_eq!(
            d.submit(dummy_ct(9), lut, None).unwrap_err(),
            TfheError::DispatcherShutDown
        );
    }

    #[test]
    fn spans_cover_every_completed_request() {
        let (backend, _started, _gate) = echo(false);
        let d = Dispatcher::builder()
            .max_batch_size(4)
            .max_linger(Duration::from_millis(1))
            .build(backend);
        let lut = dummy_lut();
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| d.submit(dummy_ct(i), Arc::clone(&lut), None).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let spans = d.spans();
        assert_eq!(spans.len(), 6);
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<u64>>());
        for s in &spans {
            assert!(s.exec_start >= s.enqueued, "{s:?}");
        }
        let stats = d.stats();
        assert!(stats.p50_latency <= stats.p95_latency);
        assert!(stats.p95_latency <= stats.p99_latency);
        assert!(stats.throughput_bs > 0.0);
    }

    #[test]
    fn submit_many_coalesces_with_singles() {
        let (backend, started, gate) = echo(true);
        let d = Dispatcher::builder()
            .max_batch_size(4)
            .max_linger(Duration::from_millis(50))
            .build(Arc::clone(&backend));
        let lut_a = dummy_lut();
        let lut_b = dummy_lut();
        // Wedge the batcher on a lone single, then queue one multi-LUT
        // and one single request: they must form ONE mixed batch.
        let t0 = d.submit(dummy_ct(0), Arc::clone(&lut_a), None).unwrap();
        started.recv().unwrap();
        let many = d
            .submit_many(
                dummy_ct(1),
                vec![Arc::clone(&lut_a), Arc::clone(&lut_b)],
                None,
            )
            .unwrap();
        let t2 = d.submit(dummy_ct(2), Arc::clone(&lut_b), None).unwrap();
        gate.send(()).unwrap();
        started.recv().unwrap();
        gate.send(()).unwrap();
        assert_eq!(t0.wait().unwrap(), dummy_ct(0));
        assert_eq!(many.wait().unwrap(), vec![dummy_ct(1), dummy_ct(1)]);
        assert_eq!(t2.wait().unwrap(), dummy_ct(2));
        // Two batches of (1 request) and (2 requests) — the multi-LUT
        // member counts once toward batch size.
        assert_eq!(lock(&backend.sizes).clone(), vec![1, 2]);
        assert_eq!(d.stats().completed, 3);
    }

    #[test]
    fn submit_many_requires_a_lut() {
        let (backend, _started, _gate) = echo(false);
        let d = Dispatcher::new(backend);
        assert_eq!(
            d.submit_many(dummy_ct(0), Vec::new(), None).unwrap_err(),
            TfheError::NoLutProvided
        );
    }

    #[test]
    fn submit_many_matches_server_key_multi_value_path() {
        let mut rng = StdRng::seed_from_u64(781);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = Arc::new(ServerKey::new(&ck, &mut rng));
        let luts = [
            Lut::identity(params.poly_size, 4),
            Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4),
            Lut::from_fn(params.poly_size, 4, |m| (3 * m) % 4),
        ];
        let ct = ck.encrypt(2, &mut rng);
        let want = sk.try_programmable_bootstrap_many(&ct, &luts).unwrap();

        let d = Dispatcher::builder()
            .max_batch_size(4)
            .max_linger(Duration::from_millis(5))
            .build(Arc::clone(&sk));
        let arcs: Vec<Arc<Lut>> = luts.iter().cloned().map(Arc::new).collect();
        let got = d.submit_many(ct, arcs, None).unwrap().wait().unwrap();
        // Per-input derivation is independent of batch-mates, so the
        // dispatched result is bit-identical to the direct fused call.
        assert_eq!(got, want);
        for (out, f) in got
            .iter()
            .zip([|m: u64| m, |m: u64| (m + 1) % 4, |m: u64| (3 * m) % 4])
        {
            assert_eq!(ck.decrypt(out), f(2));
        }
    }

    #[test]
    fn fanout_batch_requests_round_trip_through_the_dispatcher() {
        let mut rng = StdRng::seed_from_u64(782);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = Arc::new(ServerKey::new(&ck, &mut rng));
        let luts = vec![
            Lut::identity(params.poly_size, 4),
            Lut::from_fn(params.poly_size, 4, |m| (m + 2) % 4),
        ];
        let cts: Vec<_> = (0..3).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let req = BatchRequest::many(cts, luts).unwrap();
        let want = sk.try_bootstrap_batch(&req).unwrap();
        let d = Dispatcher::new(Arc::clone(&sk));
        assert_eq!(d.try_bootstrap_batch(&req).unwrap(), want);
    }

    #[test]
    fn real_backend_matches_direct_server_key_path() {
        let mut rng = StdRng::seed_from_u64(777);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = Arc::new(ServerKey::new(&ck, &mut rng));
        let lut = Lut::from_fn(params.poly_size, 4, |m| (m + 3) % 4);
        let cts: Vec<_> = (0..6).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let want = sk
            .try_bootstrap_batch(&BatchRequest::shared(cts.clone(), lut.clone()))
            .unwrap();

        let d = Dispatcher::builder()
            .max_batch_size(4)
            .max_linger(Duration::from_millis(5))
            .build(Arc::clone(&sk));
        let alut = Arc::new(lut);
        let tickets: Vec<Ticket> = cts
            .iter()
            .map(|ct| d.submit(ct.clone(), Arc::clone(&alut), None).unwrap())
            .collect();
        for (i, (t, w)) in tickets.into_iter().zip(&want).enumerate() {
            assert_eq!(&t.wait().unwrap(), w, "i={i}");
        }
    }

    #[test]
    fn dispatcher_is_a_bootstrapper() {
        let mut rng = StdRng::seed_from_u64(778);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = Arc::new(ServerKey::new(&ck, &mut rng));
        let plus1 = Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4);
        let double = Lut::from_fn(params.poly_size, 4, |m| (2 * m) % 4);
        let cts: Vec<_> = (0..4).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let req = BatchRequest::per_item(cts, vec![plus1, double], vec![0, 1, 0, 1]).unwrap();
        let want = sk.try_bootstrap_batch(&req).unwrap();
        let d = Dispatcher::new(Arc::clone(&sk));
        assert_eq!(d.try_bootstrap_batch(&req).unwrap(), want);
    }

    #[test]
    fn malformed_request_cannot_poison_batch_mates() {
        let mut rng = StdRng::seed_from_u64(779);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = Arc::new(ServerKey::new(&ck, &mut rng));
        let lut = Arc::new(Lut::identity(params.poly_size, 4));
        let d = Dispatcher::builder()
            .max_batch_size(4)
            .max_linger(Duration::from_millis(100))
            .build(Arc::clone(&sk));
        // One good request and one with the wrong LWE dimension, lingering
        // into the same micro-batch.
        let good = d
            .submit(ck.encrypt(1, &mut rng), Arc::clone(&lut), None)
            .unwrap();
        let bad = d.submit(dummy_ct(0), Arc::clone(&lut), None).unwrap();
        assert_eq!(ck.decrypt(&good.wait().unwrap()), 1);
        assert!(matches!(
            bad.wait().unwrap_err(),
            TfheError::LweDimensionMismatch { .. }
        ));
        let stats = d.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn deadline_boundary_counts_as_expired() {
        let now = Instant::now();
        // The pinned boundary: `d == now` is already too late to *start
        // before* the deadline.
        assert!(deadline_expired(Some(now), now));
        assert!(deadline_expired(Some(now - Duration::from_nanos(1)), now));
        assert!(!deadline_expired(Some(now + Duration::from_millis(1)), now));
        assert!(!deadline_expired(None, now));
    }

    #[test]
    fn wait_timeout_leaves_the_request_in_flight() {
        let (backend, started, gate) = echo(true);
        let d = Dispatcher::builder()
            .max_batch_size(1)
            .build(Arc::clone(&backend));
        let t = d.submit(dummy_ct(0), dummy_lut(), None).unwrap();
        started.recv().unwrap(); // backend wedged on the gate
        let err = t.wait_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(
            err,
            TfheError::WaitTimedOut {
                timeout: Duration::from_millis(10)
            }
        );
        assert!(err.is_retryable(), "a bounded wait elapsing is transient");
        // The request is still in flight: release the backend and the
        // same ticket delivers the result.
        gate.send(()).unwrap();
        assert_eq!(t.wait_timeout(Duration::from_secs(5)).unwrap(), dummy_ct(0));
    }

    #[test]
    fn multi_ticket_wait_timeout_round_trips() {
        let (backend, started, gate) = echo(true);
        let d = Dispatcher::builder()
            .max_batch_size(1)
            .build(Arc::clone(&backend));
        let lut = dummy_lut();
        let t = d
            .submit_many(dummy_ct(3), vec![Arc::clone(&lut), lut], None)
            .unwrap();
        started.recv().unwrap();
        assert!(matches!(
            t.wait_timeout(Duration::from_millis(5)),
            Err(TfheError::WaitTimedOut { .. })
        ));
        gate.send(()).unwrap();
        assert_eq!(
            t.wait_timeout(Duration::from_secs(5)).unwrap(),
            vec![dummy_ct(3), dummy_ct(3)]
        );
    }

    /// Backend that fails its first `fail_first` calls with a retryable
    /// fault, then echoes — the scaffolding for retry/breaker tests.
    struct FlakyEcho {
        fail_first: u64,
        calls: AtomicU64,
    }

    impl FlakyEcho {
        fn new(fail_first: u64) -> Arc<Self> {
            Arc::new(Self {
                fail_first,
                calls: AtomicU64::new(0),
            })
        }
    }

    impl Bootstrapper for FlakyEcho {
        fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
            if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_first {
                return Err(TfheError::WorkerPanicked { worker: 0 });
            }
            let mut out = Vec::with_capacity(req.output_len());
            for (i, ct) in req.ciphertexts().iter().enumerate() {
                out.extend(std::iter::repeat_with(|| ct.clone()).take(req.output_count(i)));
            }
            Ok(out)
        }
    }

    #[test]
    fn retry_policy_rescues_transient_faults() {
        use crate::resilience::RetryPolicy;
        let d = Dispatcher::builder()
            .max_batch_size(1)
            .retry_policy(RetryPolicy::new(3).with_base_backoff(Duration::ZERO))
            .build(FlakyEcho::new(2));
        let t = d.submit(dummy_ct(5), dummy_lut(), None).unwrap();
        assert_eq!(t.wait().unwrap(), dummy_ct(5));
        let stats = d.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.retries, 2, "two faults absorbed by the budget");
        // Counters and journal agree.
        let events = d.resilience_events();
        assert_eq!(
            events.iter().filter(|e| e.kind.label() == "retry").count(),
            2
        );
        assert!(events.iter().all(|e| e.scope == "dispatcher"));
    }

    #[test]
    fn exhausted_retry_budget_surfaces_the_fault() {
        use crate::resilience::RetryPolicy;
        let d = Dispatcher::builder()
            .max_batch_size(1)
            .retry_policy(RetryPolicy::new(1).with_base_backoff(Duration::ZERO))
            .build(FlakyEcho::new(u64::MAX));
        let t = d.submit(dummy_ct(0), dummy_lut(), None).unwrap();
        assert_eq!(
            t.wait().unwrap_err(),
            TfheError::WorkerPanicked { worker: 0 }
        );
        let stats = d.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn open_breaker_sheds_submissions_and_recovers() {
        use crate::resilience::{BreakerState, CircuitBreaker};
        let breaker = Arc::new(
            CircuitBreaker::builder()
                .min_samples(1)
                .failure_threshold(0.5)
                .cooldown(Duration::ZERO)
                .build(),
        );
        let (backend, _started, _gate) = echo(false);
        let d = Dispatcher::builder()
            .max_batch_size(1)
            .circuit_breaker(Arc::clone(&breaker))
            .build(backend);
        // Trip the breaker out-of-band (as a failing backend would).
        breaker.record(false);
        assert_eq!(breaker.state(), BreakerState::Open);
        // Cooldown is zero, so this admission is the half-open probe; its
        // success (recorded by the batcher) closes the breaker.
        let probe = d.submit(dummy_ct(1), dummy_lut(), None).unwrap();
        assert_eq!(probe.wait().unwrap(), dummy_ct(1));
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(d.stats().shed, 0);

        // Re-trip with a long cooldown path: shed is observable.
        let slow = Arc::new(
            CircuitBreaker::builder()
                .min_samples(1)
                .failure_threshold(0.5)
                .cooldown(Duration::from_secs(60))
                .build(),
        );
        let (backend2, _s2, _g2) = echo(false);
        let d2 = Dispatcher::builder()
            .max_batch_size(1)
            .circuit_breaker(Arc::clone(&slow))
            .build(backend2);
        slow.record(false);
        let err = d2.submit(dummy_ct(2), dummy_lut(), None).unwrap_err();
        assert!(matches!(err, TfheError::Overloaded { .. }));
        let stats = d2.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.submitted, 0, "shed requests never enter the queue");
        assert_eq!(
            d2.resilience_events()
                .iter()
                .filter(|e| e.kind.label() == "shed")
                .count(),
            1
        );
    }

    #[test]
    fn percentile_pinned_definition_on_small_samples() {
        // The regression this pins down: ceil(len·q) under-reported on tiny
        // samples — the old code returned `a` for the median of [a, b].
        assert_eq!(percentile(&[], 0.50), Duration::ZERO);
        assert_eq!(percentile(&[7], 0.0), Duration::from_nanos(7));
        assert_eq!(percentile(&[7], 0.50), Duration::from_nanos(7));
        assert_eq!(percentile(&[7], 1.0), Duration::from_nanos(7));
        assert_eq!(percentile(&[10, 20], 0.50), Duration::from_nanos(20));
        assert_eq!(percentile(&[10, 20, 30], 0.50), Duration::from_nanos(20));
        assert_eq!(percentile(&[10, 20], 0.0), Duration::from_nanos(10));
        assert_eq!(percentile(&[10, 20], 1.0), Duration::from_nanos(20));
        // p95/p99 of a small sample land on the max, never out of bounds.
        assert_eq!(percentile(&[1, 2, 3], 0.99), Duration::from_nanos(3));
    }

    #[test]
    fn reservoir_memory_stays_bounded_across_a_million_pushes() {
        // The regression this pins down: `latencies` was an unbounded
        // Vec<u64>, leaking ~8 bytes per completion for the life of the
        // dispatcher. A week at 10k bootstraps/s is ~48 GB.
        let mut r = LatencyReservoir::new(42);
        for i in 0..1_000_000u64 {
            r.push(i);
        }
        assert_eq!(r.seen(), 1_000_000);
        assert!(r.samples.len() <= LATENCY_RESERVOIR_CAP);
        // Percentiles stay inside the observed range and ordered.
        let s = r.sorted();
        let p50 = percentile(&s, 0.50);
        let p99 = percentile(&s, 0.99);
        assert!(p50 <= p99);
        assert!(p99 <= Duration::from_nanos(999_999));
        // Over a uniform 0..1M stream the sampled median should land
        // near 500k — a loose sanity band, not a statistical test.
        assert!(
            (200_000..800_000).contains(&(p50.as_nanos() as u64)),
            "sampled p50 {p50:?} wildly off a uniform stream's median"
        );
        // Determinism: the same stream reproduces the same reservoir.
        let mut r2 = LatencyReservoir::new(42);
        for i in 0..1_000_000u64 {
            r2.push(i);
        }
        assert_eq!(r.sorted(), r2.sorted());
    }

    #[test]
    fn reservoir_below_capacity_is_exact() {
        // Small samples must keep every point, so percentiles are
        // identical to the unbounded history the dispatcher used to
        // keep.
        let mut r = LatencyReservoir::new(7);
        let mut exact: Vec<u64> = Vec::new();
        for i in (0..1000u64).rev() {
            r.push(i * 31);
            exact.push(i * 31);
        }
        exact.sort_unstable();
        assert_eq!(r.sorted(), exact);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&r.sorted(), q), percentile(&exact, q));
        }
    }

    #[test]
    fn tenant_affinity_forms_single_tenant_batches() {
        let (backend, started, gate) = echo(true);
        let d = Dispatcher::builder()
            .max_batch_size(8)
            .max_linger(Duration::from_millis(50))
            .build(Arc::clone(&backend));
        let lut = dummy_lut();
        let t_a = TenantId::new(1);
        let t_b = TenantId::new(2);
        // Wedge the batcher on a lone tenant-A request...
        let first = d
            .submit_for(t_a, dummy_ct(0), Arc::clone(&lut), None)
            .unwrap();
        started.recv().unwrap();
        // ...then interleave tenants behind it: A B A B A.
        let rest: Vec<Ticket> = [t_a, t_b, t_a, t_b, t_a]
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                d.submit_for(t, dummy_ct(i as u64 + 1), Arc::clone(&lut), None)
                    .unwrap()
            })
            .collect();
        gate.send(()).unwrap(); // flush batch 2: all queued A's
        started.recv().unwrap();
        gate.send(()).unwrap(); // flush batch 3: the B's
        started.recv().unwrap();
        gate.send(()).unwrap();
        first.wait().unwrap();
        for t in rest {
            t.wait().unwrap();
        }
        // Key affinity regrouped the interleaved queue: [A], [A A A], [B B]
        // — never a mixed batch, and B's relative order preserved.
        assert_eq!(lock(&backend.sizes).clone(), vec![1, 3, 2]);
        assert_eq!(
            lock(&backend.tenants).clone(),
            vec![Some(1), Some(1), Some(2)]
        );
        let stats = d.stats();
        assert_eq!(stats.per_tenant.len(), 2);
        assert_eq!(stats.per_tenant[0].tenant, 1);
        assert_eq!(stats.per_tenant[0].completed, 4);
        assert_eq!(stats.per_tenant[1].tenant, 2);
        assert_eq!(stats.per_tenant[1].completed, 2);
        for t in &stats.per_tenant {
            assert!(t.p50_latency <= t.p99_latency);
            assert!(t.p99_latency > Duration::ZERO);
        }
    }

    #[test]
    fn tenantless_and_tenant_traffic_never_share_a_batch() {
        let (backend, started, gate) = echo(true);
        let d = Dispatcher::builder()
            .max_batch_size(8)
            .max_linger(Duration::from_millis(50))
            .build(Arc::clone(&backend));
        let lut = dummy_lut();
        let first = d.submit(dummy_ct(0), Arc::clone(&lut), None).unwrap();
        started.recv().unwrap();
        let anon = d.submit(dummy_ct(1), Arc::clone(&lut), None).unwrap();
        let tenanted = d
            .submit_for(TenantId::new(5), dummy_ct(2), Arc::clone(&lut), None)
            .unwrap();
        gate.send(()).unwrap();
        started.recv().unwrap();
        gate.send(()).unwrap();
        started.recv().unwrap();
        gate.send(()).unwrap();
        first.wait().unwrap();
        anon.wait().unwrap();
        tenanted.wait().unwrap();
        // `None` is its own affinity class: [anon], [anon], [tenant 5].
        assert_eq!(lock(&backend.sizes).clone(), vec![1, 1, 1]);
        assert_eq!(lock(&backend.tenants).clone(), vec![None, None, Some(5)]);
        // Tenantless traffic contributes to global stats only.
        let stats = d.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.per_tenant.len(), 1);
        assert_eq!(stats.per_tenant[0].tenant, 5);
    }

    #[test]
    fn keystore_backed_dispatcher_reports_cache_counters() {
        use crate::keystore::{KeyStoreBootstrapper, MemoryBackend};

        let mut rng = StdRng::seed_from_u64(0xD15);
        let params = ParamSet::Test.params();
        let backend = Arc::new(MemoryBackend::new());
        let mut clients = Vec::new();
        for t in 0..2u64 {
            let ck = ClientKey::generate(params.clone(), &mut rng);
            let sk = ServerKey::new(&ck, &mut rng);
            backend.insert_server_key(TenantId::new(t), &sk);
            clients.push(ck);
        }
        let budget = 4 * (params.bsk_total_bytes_fourier() + params.ksk_total_bytes());
        let store = Arc::new(KeyStore::new(backend, budget));
        let d = Dispatcher::builder()
            .max_batch_size(4)
            .max_linger(Duration::from_millis(1))
            .key_store(Arc::clone(&store))
            .build(KeyStoreBootstrapper::new(Arc::clone(&store)));
        let lut = Arc::new(Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4));
        let mut tickets = Vec::new();
        for round in 0..3u64 {
            for (t, ck) in clients.iter().enumerate() {
                let ct = ck.encrypt((round + t as u64) % 4, &mut rng);
                tickets.push((
                    t,
                    (round + t as u64 + 1) % 4,
                    d.submit_for(TenantId::new(t as u64), ct, Arc::clone(&lut), None)
                        .unwrap(),
                ));
            }
        }
        for (t, want, ticket) in tickets {
            let out = ticket.wait().unwrap();
            assert_eq!(clients[t].decrypt(&out), want, "tenant {t}");
        }
        // Second wave against warm keys: both tenants are resident now,
        // so these batches must hit the cache, not reload.
        for (t, ck) in clients.iter().enumerate() {
            let ct = ck.encrypt(0, &mut rng);
            let out = d
                .submit_for(TenantId::new(t as u64), ct, Arc::clone(&lut), None)
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(ck.decrypt(&out), 1, "warm tenant {t}");
        }
        let stats = d.stats();
        assert_eq!(stats.completed, 8);
        // One cold miss per tenant, hits after that, nothing evicted.
        assert_eq!(stats.key_misses, 2);
        assert_eq!(stats.key_evictions, 0);
        assert!(stats.key_hits >= 1, "warm batches must hit the cache");
        assert!(stats.key_bytes_resident > 0);
        // Dispatcher stats agree with the store's own counters.
        let ks = store.stats();
        assert_eq!(stats.key_hits, ks.hits);
        assert_eq!(stats.key_misses, ks.misses);
        // All pins were released once the batches finished.
        let events = store.events();
        let pins = events.iter().filter(|e| e.kind.label() == "pin").count();
        let unpins = events.iter().filter(|e| e.kind.label() == "unpin").count();
        assert_eq!(pins, unpins);
    }

    #[test]
    fn from_config_honors_every_knob() {
        let cfg = ServingConfig::builder()
            .workers(3)
            .max_batch_size(7)
            .max_linger(Duration::from_millis(9))
            .queue_capacity(11)
            .deadline_slack(Duration::from_micros(250))
            .build()
            .unwrap();
        let (backend, _started, _gate) = echo(false);
        let d = Dispatcher::from_config(&cfg, Arc::clone(&backend)).unwrap();
        assert_eq!(d.config(), &cfg);
        assert_eq!(d.max_batch_size(), 7);
        assert_eq!(d.queue_capacity(), 11);
        assert_eq!(d.max_linger(), Duration::from_millis(9));
        assert_eq!(d.deadline_slack(), Duration::from_micros(250));
        // And it actually serves traffic.
        let t = d.submit(dummy_ct(1), dummy_lut(), None).unwrap();
        assert_eq!(t.wait().unwrap(), dummy_ct(1));
    }

    #[test]
    fn from_config_rejects_degenerate_knobs() {
        let cfg = ServingConfig {
            max_batch_size: 0,
            ..Default::default()
        };
        let (backend, _started, _gate) = echo(false);
        let err = Dispatcher::from_config(&cfg, backend).unwrap_err();
        assert!(
            matches!(
                err,
                TfheError::InvalidServingConfig {
                    field: "max_batch_size",
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn legacy_builder_and_config_agree() {
        // The legacy builder is a thin wrapper: the config it assembles is
        // observable on the running dispatcher and round-trips through the
        // declarative path.
        let (backend, _started, _gate) = echo(false);
        let d = Dispatcher::builder()
            .max_batch_size(5)
            .max_linger(Duration::from_millis(3))
            .queue_capacity(17)
            .retry_policy(RetryPolicy::new(2))
            .build(Arc::clone(&backend));
        let cfg = d.config().clone();
        assert_eq!(cfg.max_batch_size, 5);
        assert_eq!(cfg.max_linger, Duration::from_millis(3));
        assert_eq!(cfg.queue_capacity, 17);
        assert_eq!(cfg.retry.max_retries, 2);
        let d2 = Dispatcher::from_config(&cfg, backend).unwrap();
        assert_eq!(d2.config(), &cfg);
    }

    #[test]
    fn builder_clamps_zero_knobs_but_config_path_rejects_them() {
        // Historic builder behavior: zeros are clamped up, never panics.
        let (backend, _started, _gate) = echo(false);
        let d = Dispatcher::builder()
            .max_batch_size(0)
            .queue_capacity(0)
            .build(backend);
        assert_eq!(d.max_batch_size(), 1);
        assert_eq!(d.queue_capacity(), 1);
        // The declarative path makes the same degenerate input a typed error.
        let cfg = ServingConfig {
            workers: 0,
            ..Default::default()
        };
        assert!(matches!(
            DispatcherBuilder::from_config(&cfg).unwrap_err(),
            TfheError::InvalidServingConfig {
                field: "workers",
                ..
            }
        ));
    }

    mod percentile_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn monotone_in_q_and_bounded(
                xs in prop::collection::vec(0u64..1_000_000, 16),
                len in 1usize..17,
                q1 in 0.0f64..1.0,
                q2 in 0.0f64..1.0,
            ) {
                let mut xs = xs;
                xs.truncate(len);
                xs.sort_unstable();
                let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
                let p_lo = percentile(&xs, lo);
                let p_hi = percentile(&xs, hi);
                prop_assert!(p_lo <= p_hi, "percentile not monotone: q{lo} > q{hi}");
                prop_assert!(p_lo >= Duration::from_nanos(xs[0]));
                prop_assert!(p_hi <= Duration::from_nanos(*xs.last().unwrap()));
            }

            #[test]
            fn exact_on_singletons(x in any::<u64>(), q in 0.0f64..1.0) {
                prop_assert_eq!(percentile(&[x], q), Duration::from_nanos(x));
            }

            #[test]
            fn extremes_hit_min_and_max(
                xs in prop::collection::vec(0u64..1_000_000, 8),
                len in 1usize..9,
            ) {
                let mut xs = xs;
                xs.truncate(len);
                xs.sort_unstable();
                prop_assert_eq!(percentile(&xs, 0.0), Duration::from_nanos(xs[0]));
                prop_assert_eq!(percentile(&xs, 1.0), Duration::from_nanos(*xs.last().unwrap()));
            }
        }
    }
}
