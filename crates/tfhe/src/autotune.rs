//! Simulator-in-the-loop autotuning: search the serving-config space for
//! a target arrival rate and p99 SLO.
//!
//! The paper sizes its hardware from a cycle-accurate co-simulation
//! (Morphling §VI); this module closes the same loop for the *serving*
//! layer. A [`ServiceModel`] — calibrated from measured [`EngineStats`]
//! (or from the cycle-accurate accelerator simulator in
//! `morphling-core`, which can emit one from a `SimReport`) — feeds a
//! deterministic **event-driven simulation of the dispatcher's batching
//! policy**: the [`Dispatcher`](crate::Dispatcher)'s batcher is a single
//! server that seeds a batch from the queue head, absorbs same-affinity
//! arrivals until the batch fills or the oldest member's linger window
//! (or deadline minus slack) closes, and executes the batch on the
//! backend. [`simulate`] replays a seeded open-loop arrival process
//! through exactly that policy and reports the latency profile;
//! [`autotune`] grid-searches worker count, `max_batch_size`,
//! `max_linger`, queue depth, and deadline slack over such simulations
//! and emits the cheapest [`ServingConfig`] that meets the SLO — plus
//! the full search [trajectory](SearchPoint), which
//! `morphling_core::trace` renders as an `autotune` track in the Chrome
//! trace.
//!
//! The loop is validated end-to-end: [`replay_open_loop`] drives the
//! **real** dispatcher with the *same seeded arrival schedule* the
//! simulator used, and [`p99_agree`] states the predicted/measured
//! agreement bound ([`AGREEMENT_FACTOR`]× plus [`AGREEMENT_SLACK`],
//! documented in DESIGN.md §15).
//!
//! ```
//! use std::time::Duration;
//! use morphling_tfhe::autotune::{autotune, AutotuneRequest, ServiceModel, SloTarget};
//!
//! // 1 ms per bootstrap per worker, measured or assumed.
//! let model = ServiceModel::new(Duration::from_millis(1));
//! let report = autotune(
//!     &model,
//!     &AutotuneRequest::new(SloTarget {
//!         rate_per_s: 200.0,
//!         p99: Duration::from_millis(25),
//!     }),
//! )
//! .unwrap();
//! assert!(report.slo_met);
//! assert!(report.predicted.p99 <= Duration::from_millis(25));
//! // `report.recommended` is a ServingConfig: serialize it, pin it,
//! // or build the stack directly via Dispatcher::from_config.
//! ```

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::dispatch::{percentile, Dispatcher};
use crate::engine::EngineStats;
use crate::error::TfheError;
use crate::faults;
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::serving::ServingConfig;

/// Hash domain separating arrival-time draws from the fault injector's
/// and reservoir's other deterministic streams.
const ARRIVAL_DOMAIN: u64 = 0x6172_7276; // "arrv"

/// Default fixed per-batch overhead assumed by [`ServiceModel::new`]:
/// batcher wake-up, batch assembly, and backend dispatch.
const DEFAULT_BATCH_OVERHEAD_NS: u64 = 50_000;

/// Default parallel efficiency assumed by [`ServiceModel::new`] for
/// multi-worker batches (memory-bandwidth and scheduling losses).
const DEFAULT_PARALLEL_EFFICIENCY: f64 = 0.85;

/// Predicted p99 and measured p99 must agree within this multiplicative
/// factor (each way) plus [`AGREEMENT_SLACK`] — see [`p99_agree`].
pub const AGREEMENT_FACTOR: f64 = 3.0;

/// Absolute slack added on top of [`AGREEMENT_FACTOR`], absorbing OS
/// scheduling jitter that dominates sub-millisecond predictions.
pub const AGREEMENT_SLACK: Duration = Duration::from_millis(10);

/// The two-sided predicted/measured agreement bound the validation loop
/// asserts (DESIGN.md §15): each of the two p99s must be at most
/// [`AGREEMENT_FACTOR`] times the other plus [`AGREEMENT_SLACK`].
pub fn p99_agree(predicted: Duration, measured: Duration) -> bool {
    let within = |a: Duration, b: Duration| a <= b.mul_f64(AGREEMENT_FACTOR) + AGREEMENT_SLACK;
    within(predicted, measured) && within(measured, predicted)
}

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn invalid(field: &'static str, detail: String) -> TfheError {
    TfheError::InvalidServingConfig { field, detail }
}

// ---------------------------------------------------------------------------
// Service model
// ---------------------------------------------------------------------------

/// Plain cost model of the backend serving one micro-batch — the knob
/// bridge between measured reality and the queueing simulation.
///
/// Calibrate it [from engine stats](Self::from_engine_stats) (live
/// measurement), from `morphling-apps`' `CpuModel` (datasheet numbers),
/// or from the cycle-accurate accelerator simulator (`morphling-core`'s
/// `SimReport::service_model`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceModel {
    /// Mean wall time of one bootstrap on one worker, in nanoseconds.
    pub bootstrap_ns: u64,
    /// Fixed per-batch overhead (batcher wake-up, batch assembly,
    /// backend dispatch), in nanoseconds.
    pub batch_overhead_ns: u64,
    /// Fraction of ideal linear speedup multi-worker batches achieve,
    /// in `(0, 1]`.
    pub parallel_efficiency: f64,
}

impl ServiceModel {
    /// A model from a single measured (or assumed) per-bootstrap cost,
    /// with default overhead and parallel efficiency.
    pub fn new(bootstrap: Duration) -> Self {
        Self {
            bootstrap_ns: dur_ns(bootstrap).max(1),
            batch_overhead_ns: DEFAULT_BATCH_OVERHEAD_NS,
            parallel_efficiency: DEFAULT_PARALLEL_EFFICIENCY,
        }
    }

    /// Calibrate from measured [`EngineStats`]: the mean per-core
    /// bootstrap time observed by a live engine. `None` until the engine
    /// has completed at least one bootstrap.
    pub fn from_engine_stats(stats: &EngineStats) -> Option<Self> {
        stats.mean_bootstrap_time().map(Self::new)
    }

    /// Service time of one `batch`-sized micro-batch on `workers`
    /// workers: the batch executes in `ceil(batch / workers)` lockstep
    /// rounds of one bootstrap each, degraded by the parallel
    /// efficiency, plus the fixed per-batch overhead.
    pub fn batch_service_ns(&self, batch: usize, workers: usize) -> u64 {
        if batch == 0 {
            return 0;
        }
        let workers = workers.max(1);
        let rounds = batch.div_ceil(workers) as f64;
        let penalty = if workers > 1 {
            1.0 / self.parallel_efficiency.clamp(0.05, 1.0)
        } else {
            1.0
        };
        self.batch_overhead_ns + (rounds * self.bootstrap_ns as f64 * penalty) as u64
    }

    /// Sustained throughput ceiling (bootstraps/s) of `workers` workers
    /// running full `workers`-sized batches back to back.
    pub fn capacity_bs(&self, workers: usize) -> f64 {
        let w = workers.max(1);
        w as f64 * 1e9 / self.batch_service_ns(w, w) as f64
    }
}

// ---------------------------------------------------------------------------
// Open-loop load specification
// ---------------------------------------------------------------------------

/// A seeded synthetic open-loop arrival process: `requests` arrivals at
/// mean `rate_per_s`, exponentially-distributed inter-arrival times
/// drawn deterministically from `seed`. The same spec produces the same
/// schedule in the [`simulate`]d policy and in the real
/// [`replay_open_loop`] — prediction and measurement see identical
/// traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadSpec {
    /// Mean arrival rate, requests per second.
    pub rate_per_s: f64,
    /// Number of arrivals.
    pub requests: usize,
    /// Seed for the deterministic inter-arrival draws.
    pub seed: u64,
    /// Per-request deadline budget: each request's deadline is its
    /// arrival plus this (the dispatcher's deadline semantics: the
    /// latest acceptable *execution start*). `None` submits without
    /// deadlines.
    pub deadline: Option<Duration>,
}

impl LoadSpec {
    /// An open-loop load of `requests` arrivals at `rate_per_s`, seed 0,
    /// no deadlines.
    pub fn new(rate_per_s: f64, requests: usize) -> Self {
        Self {
            rate_per_s,
            requests,
            seed: 0,
            deadline: None,
        }
    }

    fn validate(&self) -> Result<(), TfheError> {
        if !self.rate_per_s.is_finite() || self.rate_per_s <= 0.0 {
            return Err(invalid(
                "load.rate_per_s",
                format!("must be a positive finite rate (got {})", self.rate_per_s),
            ));
        }
        if self.requests == 0 {
            return Err(invalid(
                "load.requests",
                "must be at least 1 (got 0)".into(),
            ));
        }
        Ok(())
    }

    /// The deterministic arrival schedule, in nanoseconds from the start
    /// of the run. Pure function of `(rate_per_s, requests, seed)`.
    pub fn arrival_schedule_ns(&self) -> Vec<u64> {
        let mean_gap_ns = 1e9 / self.rate_per_s;
        let mut t = 0.0f64;
        (0..self.requests)
            .map(|i| {
                let u = faults::unit_sample(self.seed, ARRIVAL_DOMAIN, i as u64, 0);
                // u ∈ [0, 1) so 1 − u ∈ (0, 1]: the inverse-CDF draw is
                // finite and non-negative.
                t += -(1.0 - u).ln() * mean_gap_ns;
                t as u64
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Event-driven policy simulation
// ---------------------------------------------------------------------------

/// Latency profile predicted by [`simulate`] for one config under one
/// load.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PredictedProfile {
    /// Median end-to-end latency (arrival → batch completion).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Completed bootstraps per second over the run.
    pub throughput_bs: f64,
    /// Mean formed-batch size — the dynamic-batching figure of merit.
    pub mean_batch_size: f64,
    /// Requests that completed.
    pub completed: u64,
    /// Requests dropped because their deadline passed before their batch
    /// started (only with [`LoadSpec::deadline`]).
    pub expired: u64,
    /// Requests shed at admission because the queue was full.
    pub shed: u64,
    /// Fraction of the run the (single) batcher-server spent executing.
    pub utilization: f64,
}

/// Admission queue of the simulated dispatcher: arrivals past the
/// capacity are shed, exactly like `try_submit` under backpressure.
struct SimQueue {
    pending: VecDeque<u64>,
    next: usize,
    shed: u64,
    cap: usize,
}

impl SimQueue {
    /// Admit every arrival with `arr[i] <= t`, shedding beyond capacity.
    fn absorb(&mut self, arr: &[u64], t: u64) {
        while self.next < arr.len() && arr[self.next] <= t {
            if self.pending.len() < self.cap {
                self.pending.push_back(arr[self.next]);
            } else {
                self.shed += 1;
            }
            self.next += 1;
        }
    }
}

/// Replay `spec`'s arrival schedule through an event-driven model of the
/// dispatcher's batching policy under `cfg`, with batch service times
/// from `model`. Deterministic: same inputs, same profile.
///
/// The model mirrors the real batcher: a single server seeds each batch
/// from the queue head, immediately absorbs everything already queued
/// (up to `max_batch_size`), lingers for late arrivals until the seed's
/// `max_linger` window — truncated to `deadline − deadline_slack` when
/// the load carries deadlines — then executes the whole batch for
/// [`ServiceModel::batch_service_ns`]. Requests whose deadline passes
/// before their batch starts expire; arrivals beyond `queue_capacity`
/// while the server is busy are shed.
///
/// # Errors
///
/// [`TfheError::InvalidServingConfig`] if `cfg` or `spec` is degenerate.
pub fn simulate(
    cfg: &ServingConfig,
    model: &ServiceModel,
    spec: &LoadSpec,
) -> Result<PredictedProfile, TfheError> {
    cfg.validate()?;
    spec.validate()?;
    let arr = spec.arrival_schedule_ns();
    let linger = dur_ns(cfg.max_linger);
    let slack = dur_ns(cfg.deadline_slack);
    let budget = spec.deadline.map(dur_ns);
    let max_batch = cfg.max_batch_size;
    let mut q = SimQueue {
        pending: VecDeque::new(),
        next: 0,
        shed: 0,
        cap: cfg.queue_capacity,
    };
    let mut latencies: Vec<u64> = Vec::with_capacity(arr.len());
    let mut expired = 0u64;
    let mut batches = 0u64;
    let mut batched = 0u64;
    let mut busy_ns = 0u64;
    let mut t_free = 0u64;
    let mut end_ns = 0u64;
    loop {
        if q.pending.is_empty() {
            if q.next >= arr.len() {
                break;
            }
            // Server idle: jump to the next arrival.
            q.absorb(&arr, arr[q.next]);
            continue;
        }
        let seed = match q.pending.pop_front() {
            Some(s) => s,
            None => break,
        };
        let start_floor = t_free.max(seed);
        if let Some(bud) = budget {
            // Mirror `take_first`: a seed already past its deadline when
            // picked up is dropped, and the next request seeds instead.
            if start_floor >= seed.saturating_add(bud) {
                expired += 1;
                continue;
            }
        }
        q.absorb(&arr, start_floor);
        let mut flush_at = seed.saturating_add(linger);
        if let Some(bud) = budget {
            // Deadline-slack early flush: the batch must start far enough
            // before the (oldest) member's deadline to rescue it.
            flush_at = flush_at.min(seed.saturating_add(bud).saturating_sub(slack));
        }
        let mut batch: Vec<u64> = vec![seed];
        while batch.len() < max_batch {
            match q.pending.pop_front() {
                Some(a) => batch.push(a),
                None => break,
            }
        }
        let mut exec_start = start_floor;
        if batch.len() < max_batch {
            // Linger: future arrivals up to the flush point join the
            // batch; the arrival that fills it starts execution.
            while batch.len() < max_batch && q.next < arr.len() && arr[q.next] <= flush_at {
                let t = arr[q.next];
                q.absorb(&arr, t);
                while batch.len() < max_batch {
                    match q.pending.pop_front() {
                        Some(a) => batch.push(a),
                        None => break,
                    }
                }
                exec_start = exec_start.max(t);
            }
            if batch.len() < max_batch {
                exec_start = exec_start.max(flush_at).max(start_floor);
            }
        }
        if let Some(bud) = budget {
            // Mirror `execute_batch`'s final sweep: members whose
            // deadline passed while the batch formed are dropped.
            batch.retain(|&a| {
                if exec_start >= a.saturating_add(bud) {
                    expired += 1;
                    false
                } else {
                    true
                }
            });
        }
        if batch.is_empty() {
            t_free = t_free.max(exec_start);
            continue;
        }
        let svc = model.batch_service_ns(batch.len(), cfg.workers);
        let exec_end = exec_start.saturating_add(svc);
        busy_ns += svc;
        batches += 1;
        batched += batch.len() as u64;
        for a in batch {
            latencies.push(exec_end.saturating_sub(a));
        }
        t_free = exec_end;
        end_ns = end_ns.max(exec_end);
    }
    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    let window_ns = end_ns.saturating_sub(arr.first().copied().unwrap_or(0));
    let window_s = window_ns as f64 / 1e9;
    Ok(PredictedProfile {
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        throughput_bs: if completed > 0 && window_s > 0.0 {
            completed as f64 / window_s
        } else {
            0.0
        },
        mean_batch_size: if batches > 0 {
            batched as f64 / batches as f64
        } else {
            0.0
        },
        completed,
        expired,
        shed: q.shed,
        utilization: if window_ns > 0 {
            (busy_ns as f64 / window_ns as f64).min(1.0)
        } else {
            0.0
        },
    })
}

// ---------------------------------------------------------------------------
// Config-space search
// ---------------------------------------------------------------------------

/// The serving objective: sustain `rate_per_s` with end-to-end p99 at or
/// under `p99`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloTarget {
    /// Open-loop arrival rate to sustain, requests per second.
    pub rate_per_s: f64,
    /// End-to-end p99 latency objective.
    pub p99: Duration,
}

/// Knobs of the search itself (not of the configs being searched).
#[derive(Clone, Debug)]
pub struct AutotuneRequest {
    /// The objective.
    pub target: SloTarget,
    /// Largest worker count to consider.
    pub max_workers: usize,
    /// Simulated arrivals per candidate config.
    pub requests: usize,
    /// Seed for the simulated arrival schedules.
    pub seed: u64,
    /// Template config: retry / breaker / key-budget sections (and any
    /// knob the search does not touch) are carried into the
    /// recommendation verbatim.
    pub base: ServingConfig,
}

impl AutotuneRequest {
    /// Search up to 8 workers with 512 simulated arrivals per candidate,
    /// seed 0xA77 ("att"), defaults elsewhere.
    pub fn new(target: SloTarget) -> Self {
        Self {
            target,
            max_workers: 8,
            requests: 512,
            seed: 0xA77,
            base: ServingConfig::default(),
        }
    }
}

/// One evaluated candidate: the knobs tried and the profile the
/// simulator predicted for them. The ordered list of these is the search
/// trajectory, journaled into the Chrome trace as the `autotune` track.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchPoint {
    /// Worker count tried.
    pub workers: usize,
    /// `max_batch_size` tried.
    pub max_batch_size: usize,
    /// `max_linger` tried.
    pub max_linger: Duration,
    /// `queue_capacity` tried.
    pub queue_capacity: usize,
    /// `deadline_slack` tried.
    pub deadline_slack: Duration,
    /// What the simulator predicted.
    pub predicted: PredictedProfile,
    /// Did this candidate meet the SLO with nothing shed or expired?
    pub feasible: bool,
}

/// The autotuner's verdict: a recommended config, its predicted profile,
/// and the full search trajectory.
#[derive(Clone, Debug)]
pub struct AutotuneReport {
    /// The objective searched for.
    pub target: SloTarget,
    /// The cheapest config that met the SLO — or, when nothing did, the
    /// best-effort config with the lowest predicted p99 (see
    /// [`slo_met`](Self::slo_met)).
    pub recommended: ServingConfig,
    /// The profile the simulator predicts for
    /// [`recommended`](Self::recommended).
    pub predicted: PredictedProfile,
    /// Whether any candidate met the SLO; `false` means
    /// [`recommended`](Self::recommended) is best-effort only.
    pub slo_met: bool,
    /// Every candidate evaluated, in search order.
    pub trajectory: Vec<SearchPoint>,
}

/// Candidate linger windows: scaled to the SLO, so a 10 ms objective is
/// not searched with 2 ms steps meant for a 500 ms one.
fn linger_candidates(slo: Duration) -> Vec<Duration> {
    let mut out = vec![Duration::ZERO, slo / 32, slo / 8, slo / 2];
    out.dedup();
    out
}

/// Candidate deadline slacks: a fixed floor for condvar wake-up jitter,
/// scaled up with the SLO.
fn slack_candidates(slo: Duration) -> Vec<Duration> {
    let mut out = vec![
        Duration::from_micros(100).min(slo / 16),
        Duration::from_micros(500).min(slo / 8),
        slo / 8,
    ];
    out.sort_unstable();
    out.dedup();
    out
}

/// Candidate queue depths: enough to ride out a 2×-SLO burst at the
/// target rate, and a deeper fallback.
fn queue_candidates(target: &SloTarget) -> Vec<usize> {
    let burst = (target.rate_per_s * target.p99.as_secs_f64() * 2.0).ceil() as usize;
    let q0 = burst.clamp(16, 4096);
    let mut out = vec![q0, (q0 * 4).min(4096), 1024];
    out.sort_unstable();
    out.dedup();
    out
}

/// Grid-search the serving-config space against [`simulate`] for the
/// cheapest config meeting `req.target`, under service costs from
/// `model`.
///
/// Feasibility requires the simulated run to complete **every** request
/// (nothing shed, nothing expired) with p99 at or under the SLO; the
/// simulation carries per-request deadlines equal to the SLO, so the
/// recommended config also bounds late work by construction. Among
/// feasible candidates the search prefers fewer workers, then larger
/// batches (throughput headroom), then lower p99. When nothing is
/// feasible the lowest-(loss, p99) candidate is returned with
/// [`AutotuneReport::slo_met`] `false`.
///
/// # Errors
///
/// [`TfheError::InvalidServingConfig`] on a degenerate base config,
/// target, or search request.
pub fn autotune(model: &ServiceModel, req: &AutotuneRequest) -> Result<AutotuneReport, TfheError> {
    req.base.validate()?;
    if !req.target.rate_per_s.is_finite() || req.target.rate_per_s <= 0.0 {
        return Err(invalid(
            "target.rate_per_s",
            format!(
                "must be a positive finite rate (got {})",
                req.target.rate_per_s
            ),
        ));
    }
    if req.target.p99.is_zero() {
        return Err(invalid("target.p99", "must be a positive duration".into()));
    }
    if req.max_workers == 0 {
        return Err(invalid("max_workers", "must be at least 1 (got 0)".into()));
    }
    if req.requests == 0 {
        return Err(invalid("requests", "must be at least 1 (got 0)".into()));
    }
    let slo = req.target.p99;
    let batch_grid = [1usize, 2, 4, 8, 16, 32];
    let lingers = linger_candidates(slo);
    let slacks = slack_candidates(slo);
    let queues = queue_candidates(&req.target);
    let mut trajectory = Vec::new();
    let mut best_feasible: Option<(usize, usize, Duration, usize, SearchPoint)> = None;
    let mut best_effort: Option<SearchPoint> = None;
    for workers in 1..=req.max_workers {
        for &max_batch_size in &batch_grid {
            for &max_linger in &lingers {
                for &queue_capacity in &queues {
                    for &deadline_slack in &slacks {
                        let mut cfg = req.base.clone();
                        cfg.workers = workers;
                        cfg.max_batch_size = max_batch_size;
                        cfg.max_linger = max_linger;
                        cfg.queue_capacity = queue_capacity;
                        cfg.deadline_slack = deadline_slack;
                        let spec = LoadSpec {
                            rate_per_s: req.target.rate_per_s,
                            requests: req.requests,
                            seed: req.seed,
                            deadline: Some(slo),
                        };
                        let predicted = simulate(&cfg, model, &spec)?;
                        let feasible = predicted.shed == 0
                            && predicted.expired == 0
                            && predicted.completed == req.requests as u64
                            && predicted.p99 <= slo;
                        let point = SearchPoint {
                            workers,
                            max_batch_size,
                            max_linger,
                            queue_capacity,
                            deadline_slack,
                            predicted,
                            feasible,
                        };
                        trajectory.push(point);
                        if feasible {
                            // Prefer fewer workers, then larger batches,
                            // then lower p99.
                            let better = match &best_feasible {
                                None => true,
                                Some((w, b, _, _, best)) => {
                                    (workers, std::cmp::Reverse(max_batch_size), predicted.p99)
                                        < (*w, std::cmp::Reverse(*b), best.predicted.p99)
                                }
                            };
                            if better {
                                best_feasible = Some((
                                    workers,
                                    max_batch_size,
                                    max_linger,
                                    queue_capacity,
                                    point,
                                ));
                            }
                        }
                        let losses = predicted.shed + predicted.expired;
                        let effort_better = match &best_effort {
                            None => true,
                            Some(best) => {
                                (losses, predicted.p99)
                                    < (
                                        best.predicted.shed + best.predicted.expired,
                                        best.predicted.p99,
                                    )
                            }
                        };
                        if effort_better {
                            best_effort = Some(point);
                        }
                    }
                }
            }
        }
    }
    let (winner, slo_met) = match (best_feasible, best_effort) {
        (Some((_, _, _, _, point)), _) => (point, true),
        (None, Some(point)) => (point, false),
        // Unreachable: every grid has at least one candidate.
        (None, None) => return Err(invalid("max_workers", "search space is empty".into())),
    };
    let mut recommended = req.base.clone();
    recommended.workers = winner.workers;
    recommended.max_batch_size = winner.max_batch_size;
    recommended.max_linger = winner.max_linger;
    recommended.queue_capacity = winner.queue_capacity;
    recommended.deadline_slack = winner.deadline_slack;
    Ok(AutotuneReport {
        target: req.target,
        recommended,
        predicted: winner.predicted,
        slo_met,
        trajectory,
    })
}

// ---------------------------------------------------------------------------
// End-to-end validation: replay against the real dispatcher
// ---------------------------------------------------------------------------

/// What the real dispatcher measured under a [`replay_open_loop`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeasuredProfile {
    /// Median end-to-end latency (enqueue → result), from
    /// [`DispatcherStats`](crate::DispatcherStats).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Requests that completed with a result.
    pub completed: u64,
    /// Requests that expired on their deadline.
    pub expired: u64,
    /// Requests shed at admission (queue full / breaker open).
    pub rejected: u64,
    /// Requests that resolved to any other error.
    pub failed: u64,
    /// Completed bootstraps per second, from the dispatcher's
    /// first-submit → last-done window.
    pub throughput_bs: f64,
}

/// Drive the **real** `dispatcher` with `spec`'s seeded open-loop load —
/// the same arrival schedule [`simulate`] used — and report what was
/// measured. This is the validation half of the autotune loop: run it
/// against a dispatcher built from
/// [`AutotuneReport::recommended`] and compare
/// [`MeasuredProfile::p99`] with [`PredictedProfile::p99`] via
/// [`p99_agree`].
///
/// Submissions are non-blocking (`try_submit`), so an undersized config
/// sheds load here exactly as it would in production (and as the
/// simulator predicted) instead of distorting the arrival process by
/// blocking. Latency percentiles come from the dispatcher's own bounded
/// reservoir, so pass a **freshly built** dispatcher — prior traffic
/// would pollute the sample.
///
/// # Errors
///
/// [`TfheError::InvalidServingConfig`] on a degenerate `spec`;
/// [`TfheError::DispatcherShutDown`] if the dispatcher dies mid-replay.
pub fn replay_open_loop(
    dispatcher: &Dispatcher,
    spec: &LoadSpec,
    ct: &LweCiphertext,
    lut: &Arc<Lut>,
) -> Result<MeasuredProfile, TfheError> {
    spec.validate()?;
    let schedule = spec.arrival_schedule_ns();
    let mut tickets = Vec::with_capacity(schedule.len());
    let mut rejected = 0u64;
    let t0 = Instant::now();
    for &offset_ns in &schedule {
        let target = t0 + Duration::from_nanos(offset_ns);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let deadline = spec.deadline.map(|b| Instant::now() + b);
        match dispatcher.try_submit(ct.clone(), Arc::clone(lut), deadline) {
            Ok(ticket) => tickets.push(ticket),
            Err(TfheError::QueueFull { .. } | TfheError::Overloaded { .. }) => rejected += 1,
            Err(e) => return Err(e),
        }
    }
    let mut completed = 0u64;
    let mut expired = 0u64;
    let mut failed = 0u64;
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => completed += 1,
            Err(TfheError::DeadlineExceeded) => expired += 1,
            Err(TfheError::DispatcherShutDown) => return Err(TfheError::DispatcherShutDown),
            Err(_) => failed += 1,
        }
    }
    let stats = dispatcher.stats();
    Ok(MeasuredProfile {
        p50: stats.p50_latency,
        p95: stats.p95_latency,
        p99: stats.p99_latency,
        completed,
        expired,
        rejected,
        failed,
        throughput_bs: stats.throughput_bs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrapper::{BatchRequest, Bootstrapper};
    use morphling_math::Torus32;

    fn model_ms(ms: u64) -> ServiceModel {
        ServiceModel {
            bootstrap_ns: ms * 1_000_000,
            batch_overhead_ns: 0,
            parallel_efficiency: 1.0,
        }
    }

    #[test]
    fn arrival_schedule_is_deterministic_and_calibrated() {
        let spec = LoadSpec {
            rate_per_s: 1000.0,
            requests: 4096,
            seed: 7,
            deadline: None,
        };
        let a = spec.arrival_schedule_ns();
        let b = spec.arrival_schedule_ns();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
        // Mean inter-arrival over 4096 draws lands near 1/rate = 1 ms.
        let mean_ns = *a.last().unwrap() as f64 / a.len() as f64;
        assert!(
            (0.8e6..1.25e6).contains(&mean_ns),
            "mean inter-arrival {mean_ns} ns should be ~1e6"
        );
    }

    #[test]
    fn unbatched_light_load_predicts_pure_service_time() {
        // 1 request/s against a 1 ms bootstrap with no linger: every
        // request executes alone the moment it arrives, so every latency
        // is exactly the batch service time.
        let cfg = ServingConfig::builder()
            .workers(1)
            .max_batch_size(1)
            .max_linger(Duration::ZERO)
            .build()
            .unwrap();
        let model = model_ms(1);
        let spec = LoadSpec::new(1.0, 64);
        let p = simulate(&cfg, &model, &spec).unwrap();
        assert_eq!(p.completed, 64);
        assert_eq!(p.shed, 0);
        assert_eq!(p.expired, 0);
        assert_eq!(p.p50, Duration::from_millis(1));
        assert_eq!(p.p99, Duration::from_millis(1));
        assert!((p.mean_batch_size - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overload_sheds_on_the_bounded_queue() {
        // 10 req/s against a 1-per-second server and a 4-deep queue:
        // most of the load must shed, none may vanish.
        let cfg = ServingConfig::builder()
            .workers(1)
            .max_batch_size(1)
            .max_linger(Duration::ZERO)
            .queue_capacity(4)
            .build()
            .unwrap();
        let model = model_ms(1000);
        let spec = LoadSpec::new(10.0, 100);
        let p = simulate(&cfg, &model, &spec).unwrap();
        assert!(p.shed > 0, "overload must shed: {p:?}");
        assert_eq!(p.completed + p.expired + p.shed, 100, "conservation");
    }

    #[test]
    fn linger_coalesces_batches() {
        let model = model_ms(1);
        let spec = LoadSpec::new(2000.0, 256);
        let no_linger = ServingConfig::builder()
            .max_batch_size(16)
            .max_linger(Duration::ZERO)
            .build()
            .unwrap();
        let with_linger = ServingConfig::builder()
            .max_batch_size(16)
            .max_linger(Duration::from_millis(4))
            .build()
            .unwrap();
        let a = simulate(&no_linger, &model, &spec).unwrap();
        let b = simulate(&with_linger, &model, &spec).unwrap();
        assert!(
            b.mean_batch_size > a.mean_batch_size,
            "linger must coalesce: {} vs {}",
            b.mean_batch_size,
            a.mean_batch_size
        );
    }

    #[test]
    fn deadlines_expire_instead_of_running_late() {
        // A 1-per-second server at 5 req/s with a 100 ms budget: queued
        // requests blow their deadline and must expire, and the ones
        // that do run must have started within budget.
        let cfg = ServingConfig::builder()
            .workers(1)
            .max_batch_size(1)
            .max_linger(Duration::ZERO)
            .queue_capacity(1024)
            .build()
            .unwrap();
        let model = model_ms(1000);
        let spec = LoadSpec {
            rate_per_s: 5.0,
            requests: 50,
            seed: 3,
            deadline: Some(Duration::from_millis(100)),
        };
        let p = simulate(&cfg, &model, &spec).unwrap();
        assert!(p.expired > 0, "late work must expire: {p:?}");
        assert_eq!(p.completed + p.expired + p.shed, 50, "conservation");
        // An executed request started within budget, so its end-to-end
        // latency is bounded by budget + service time.
        assert!(p.p99 <= Duration::from_millis(100) + Duration::from_millis(1000) + cfg.max_linger);
    }

    #[test]
    fn autotune_meets_an_attainable_slo_and_is_deterministic() {
        let model = model_ms(1);
        let req = AutotuneRequest::new(SloTarget {
            rate_per_s: 200.0,
            p99: Duration::from_millis(25),
        });
        let report = autotune(&model, &req).unwrap();
        assert!(report.slo_met, "1 ms bootstraps can serve 200/s @ 25 ms");
        assert!(report.predicted.p99 <= Duration::from_millis(25));
        assert_eq!(report.predicted.shed, 0);
        assert_eq!(report.predicted.expired, 0);
        report.recommended.validate().unwrap();
        assert!(!report.trajectory.is_empty());
        // The trajectory records the winner as a feasible point.
        assert!(report.trajectory.iter().any(|p| p.feasible));
        // Determinism: the whole search replays identically.
        let again = autotune(&model, &req).unwrap();
        assert_eq!(again.recommended, report.recommended);
        assert_eq!(again.predicted, report.predicted);
    }

    #[test]
    fn autotune_reports_unattainable_slo_honestly() {
        // A 100 ms bootstrap cannot give 1 ms p99 at any worker count.
        let model = model_ms(100);
        let report = autotune(
            &model,
            &AutotuneRequest::new(SloTarget {
                rate_per_s: 500.0,
                p99: Duration::from_millis(1),
            }),
        )
        .unwrap();
        assert!(!report.slo_met);
        report.recommended.validate().unwrap();
    }

    #[test]
    fn autotune_scales_workers_with_load() {
        let model = model_ms(10);
        let slo = SloTarget {
            rate_per_s: 50.0,
            p99: Duration::from_millis(60),
        };
        let light = autotune(&model, &AutotuneRequest::new(slo)).unwrap();
        let heavy = autotune(
            &model,
            &AutotuneRequest::new(SloTarget {
                rate_per_s: 400.0,
                ..slo
            }),
        )
        .unwrap();
        assert!(light.slo_met && heavy.slo_met, "both SLOs are attainable");
        assert!(
            heavy.recommended.workers > light.recommended.workers,
            "8x the load needs more workers: {} vs {}",
            heavy.recommended.workers,
            light.recommended.workers
        );
    }

    #[test]
    fn agreement_bound_is_two_sided() {
        let ms = Duration::from_millis;
        assert!(p99_agree(ms(20), ms(25)));
        assert!(p99_agree(ms(2), ms(5)));
        // Slack absorbs sub-10ms noise entirely.
        assert!(p99_agree(ms(1), ms(9)));
        assert!(!p99_agree(ms(20), ms(100)));
        assert!(!p99_agree(ms(100), ms(20)));
    }

    /// Backend that sleeps a fixed time per batch and echoes its inputs —
    /// a deterministic-cost stand-in for a bootstrap backend.
    struct SleepBackend {
        per_batch: Duration,
    }

    impl Bootstrapper for SleepBackend {
        fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
            std::thread::sleep(self.per_batch);
            let mut out = Vec::with_capacity(req.output_len());
            for (i, ct) in req.ciphertexts().iter().enumerate() {
                out.extend(std::iter::repeat_with(|| ct.clone()).take(req.output_count(i)));
            }
            Ok(out)
        }
    }

    #[test]
    fn replay_open_loop_accounts_for_every_request() {
        let cfg = ServingConfig::builder()
            .workers(1)
            .max_batch_size(8)
            .max_linger(Duration::from_millis(1))
            .queue_capacity(64)
            .build()
            .unwrap();
        let d = Dispatcher::from_config(
            &cfg,
            SleepBackend {
                per_batch: Duration::from_millis(2),
            },
        )
        .unwrap();
        let spec = LoadSpec {
            rate_per_s: 2000.0,
            requests: 60,
            seed: 11,
            deadline: None,
        };
        let ct = LweCiphertext::trivial(Torus32::from_raw(5), 4);
        let lut = Arc::new(Lut::identity(256, 4));
        let measured = replay_open_loop(&d, &spec, &ct, &lut).unwrap();
        assert_eq!(
            measured.completed + measured.expired + measured.rejected + measured.failed,
            60,
            "conservation: {measured:?}"
        );
        assert!(measured.completed > 0);
        assert!(measured.p99 >= Duration::from_millis(2));
    }
}
