//! Leveled (non-bootstrapped) operations on LWE ciphertexts — the
//! vector/scalar arithmetic Morphling's programmable VPU executes with
//! P-ALU instructions (§V-B). The application layer builds encrypted
//! dot-products and affine layers from these.

use morphling_math::Torus32;

use crate::lwe::LweCiphertext;

/// Weighted sum `Σ w_i · ct_i` of LWE ciphertexts — an encrypted
/// dot-product against plaintext weights (e.g. one output neuron of a
/// linear layer). Noise grows with `Σ w_i²`.
///
/// # Panics
///
/// Panics if lengths differ or `cts` is empty.
pub fn weighted_sum(cts: &[LweCiphertext], weights: &[i64]) -> LweCiphertext {
    assert_eq!(
        cts.len(),
        weights.len(),
        "weights/ciphertexts length mismatch"
    );
    assert!(!cts.is_empty(), "weighted sum needs at least one term");
    let mut acc = LweCiphertext::trivial(Torus32::ZERO, cts[0].dim());
    for (ct, &w) in cts.iter().zip(weights) {
        if w != 0 {
            acc = acc.add(&ct.scalar_mul(w));
        }
    }
    acc
}

/// Affine combination `Σ w_i · ct_i + bias` with a plaintext torus bias.
pub fn affine(cts: &[LweCiphertext], weights: &[i64], bias: Torus32) -> LweCiphertext {
    weighted_sum(cts, weights).add_plain(bias)
}

/// Sum of ciphertexts (all weights 1).
pub fn sum(cts: &[LweCiphertext]) -> LweCiphertext {
    weighted_sum(cts, &vec![1; cts.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use morphling_math::TorusScalar;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_sum_matches_plaintext() {
        let mut rng = StdRng::seed_from_u64(100);
        let params = ParamSet::Test
            .params()
            .with_plaintext_modulus(16)
            .noiseless();
        let ck = ClientKey::generate(params, &mut rng);
        let values = [1u64, 2, 3];
        let weights = [2i64, 1, 3];
        let cts: Vec<_> = values.iter().map(|&v| ck.encrypt(v, &mut rng)).collect();
        let out = weighted_sum(&cts, &weights);
        // 2·1 + 1·2 + 3·3 = 13.
        assert_eq!(ck.decrypt(&out), 13);
    }

    #[test]
    fn affine_adds_the_bias() {
        let mut rng = StdRng::seed_from_u64(101);
        let params = ParamSet::Test
            .params()
            .with_plaintext_modulus(16)
            .noiseless();
        let ck = ClientKey::generate(params, &mut rng);
        let cts = vec![ck.encrypt(3, &mut rng)];
        let out = affine(&cts, &[2], Torus32::encode(5, 32));
        assert_eq!(ck.decrypt(&out), 11);
    }

    #[test]
    fn sum_is_weighted_sum_of_ones() {
        let mut rng = StdRng::seed_from_u64(102);
        let params = ParamSet::Test
            .params()
            .with_plaintext_modulus(16)
            .noiseless();
        let ck = ClientKey::generate(params, &mut rng);
        let cts: Vec<_> = (1..=4u64).map(|v| ck.encrypt(v, &mut rng)).collect();
        assert_eq!(ck.decrypt(&sum(&cts)), 10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_sum_validates_lengths() {
        let cts = vec![LweCiphertext::trivial(Torus32::ZERO, 4)];
        let _ = weighted_sum(&cts, &[1, 2]);
    }
}
