//! Multi-ciphertext ("radix") integers — large-precision plaintexts split
//! across several small-parameter ciphertexts.
//!
//! The paper's §I motivates exactly this: "To keep the ciphertext
//! parameter small, the TFHE scheme encrypts large-precision plaintext
//! into multiple ciphertexts [18]. From a hardware perspective, the
//! operation can be seen as the computation of multiple small-parameter
//! ciphertexts" — the independent per-digit bootstraps are what Morphling
//! batches across its VPE rows.
//!
//! Encoding (Concrete/TFHE-rs "shortint" style): each digit holds
//! `message_bits` bits of payload inside a plaintext space of
//! `2^(2·message_bits)`, leaving *carry space* above the payload so that a
//! handful of leveled additions cannot overflow before a bootstrap cleans
//! the digit up.

use rand::Rng;

use crate::keys::ClientKey;
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::server::ServerKey;

/// Parameters of the radix encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RadixSpec {
    /// Payload bits per digit (base = `2^message_bits`).
    pub message_bits: u32,
    /// Number of digits.
    pub digits: usize,
}

impl RadixSpec {
    /// Create a spec.
    ///
    /// # Panics
    ///
    /// Panics if `message_bits == 0` or `digits == 0`; if
    /// `message_bits >= 32` (the digit modulus `2^(2·message_bits)` must
    /// fit in a `u64`); or if `message_bits · digits > 64` (values are
    /// decoded into a `u64` accumulator).
    pub fn new(message_bits: u32, digits: usize) -> Self {
        assert!(message_bits > 0, "digits need at least one payload bit");
        assert!(digits > 0, "at least one digit is required");
        assert!(
            message_bits < 32,
            "message_bits {message_bits} too large: digit modulus 2^(2*message_bits) must fit in u64"
        );
        assert!(
            u64::from(message_bits) * digits as u64 <= 64,
            "total bits {} exceed the 64-bit value range",
            u64::from(message_bits) * digits as u64
        );
        Self {
            message_bits,
            digits,
        }
    }

    /// Digit base `2^message_bits`.
    pub fn base(&self) -> u64 {
        1u64 << self.message_bits
    }

    /// Plaintext modulus per digit (payload + carry space).
    pub fn digit_modulus(&self) -> u64 {
        1u64 << (2 * self.message_bits)
    }

    /// Total representable bits.
    pub fn total_bits(&self) -> u32 {
        self.message_bits * self.digits as u32
    }

    /// Largest representable value.
    pub fn max_value(&self) -> u64 {
        if self.total_bits() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.total_bits()) - 1
        }
    }
}

/// An encrypted unsigned integer: little-endian digits, each an LWE
/// ciphertext with carry space.
#[derive(Clone, Debug)]
pub struct RadixCiphertext {
    digits: Vec<LweCiphertext>,
    spec: RadixSpec,
}

impl RadixCiphertext {
    /// The encoding parameters.
    pub fn spec(&self) -> RadixSpec {
        self.spec
    }

    /// The digit ciphertexts, least significant first.
    pub fn digits(&self) -> &[LweCiphertext] {
        &self.digits
    }
}

/// Client-side radix encryption/decryption.
pub trait RadixClient {
    /// Encrypt `value` under `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds the representable range, or if the key's
    /// plaintext modulus differs from the spec's digit modulus.
    fn encrypt_radix<R: Rng + ?Sized>(
        &self,
        value: u64,
        spec: RadixSpec,
        rng: &mut R,
    ) -> RadixCiphertext;

    /// Decrypt a radix ciphertext (tolerates unpropagated carries).
    fn decrypt_radix(&self, ct: &RadixCiphertext) -> u64;
}

impl RadixClient for ClientKey {
    fn encrypt_radix<R: Rng + ?Sized>(
        &self,
        value: u64,
        spec: RadixSpec,
        rng: &mut R,
    ) -> RadixCiphertext {
        assert!(value <= spec.max_value(), "value {value} out of range");
        assert_eq!(
            self.params().plaintext_modulus,
            spec.digit_modulus(),
            "client key plaintext modulus must equal the digit modulus (payload + carry)"
        );
        let base = spec.base();
        let mut v = value;
        let digits = (0..spec.digits)
            .map(|_| {
                let d = v % base;
                v /= base;
                self.encrypt(d, rng)
            })
            .collect();
        RadixCiphertext { digits, spec }
    }

    fn decrypt_radix(&self, ct: &RadixCiphertext) -> u64 {
        let base = ct.spec.base();
        // Carries that have not been propagated homomorphically are
        // resolved here during decoding (little-endian scan).
        let mut acc = 0u64;
        let mut carry = 0u64;
        for (i, d) in ct.digits.iter().enumerate() {
            let raw = self.decrypt(d) + carry;
            // Checked shift: digits above the 64-bit accumulator (possible
            // only for hand-built specs bypassing `RadixSpec::new`) are
            // masked away rather than panicking on shift overflow; the top
            // digit of an exactly-64-bit spec wraps into the mask too.
            let shift = u64::from(ct.spec.message_bits) * i as u64;
            if shift < 64 {
                acc = acc.wrapping_add((raw % base).wrapping_shl(shift as u32));
            }
            carry = raw / base;
        }
        acc & ct.spec.max_value()
    }
}

/// Server-side radix arithmetic.
pub trait RadixServer {
    /// Digit-wise homomorphic addition (leveled — fills carry space; call
    /// [`RadixServer::propagate_carries`] before the space overflows).
    fn radix_add(&self, a: &RadixCiphertext, b: &RadixCiphertext) -> RadixCiphertext;

    /// Add a small clear scalar (leveled).
    fn radix_scalar_add(&self, a: &RadixCiphertext, scalar: u64) -> RadixCiphertext;

    /// Propagate carries with bootstraps: after this, every digit is
    /// reduced below the base and noise is fresh. Costs `2` PBS per digit.
    fn propagate_carries(&self, a: &RadixCiphertext) -> RadixCiphertext;

    /// Homomorphic `a ≥ b`, returning an encryption of 0/1 in the digit
    /// space. Requires both inputs carry-propagated. Costs ≈ 2 PBS per
    /// digit.
    fn radix_ge(&self, a: &RadixCiphertext, b: &RadixCiphertext) -> LweCiphertext;

    /// Homomorphic multiplication `a · b mod base^digits`. Requires both
    /// inputs carry-propagated. Digit products are evaluated by packing a
    /// digit pair into one plaintext (`x·base + y < base²` — exactly the
    /// digit modulus) and bootstrapping a product LUT; two carry-
    /// propagation stages keep every accumulator inside the carry space.
    /// Costs ≈ `digits²` product bootstraps plus two propagations.
    fn radix_mul(&self, a: &RadixCiphertext, b: &RadixCiphertext) -> RadixCiphertext;
}

impl RadixServer for ServerKey {
    fn radix_add(&self, a: &RadixCiphertext, b: &RadixCiphertext) -> RadixCiphertext {
        assert_eq!(a.spec, b.spec, "radix spec mismatch");
        let digits = a
            .digits
            .iter()
            .zip(&b.digits)
            .map(|(x, y)| x.add(y))
            .collect();
        RadixCiphertext {
            digits,
            spec: a.spec,
        }
    }

    fn radix_scalar_add(&self, a: &RadixCiphertext, scalar: u64) -> RadixCiphertext {
        assert!(scalar <= a.spec.max_value(), "scalar out of range");
        let base = a.spec.base();
        let p = a.spec.digit_modulus();
        let mut v = scalar;
        let digits = a
            .digits
            .iter()
            .map(|x| {
                let d = v % base;
                v /= base;
                x.add_plain(morphling_math::TorusScalar::encode(d, 2 * p))
            })
            .collect();
        RadixCiphertext {
            digits,
            spec: a.spec,
        }
    }

    fn propagate_carries(&self, a: &RadixCiphertext) -> RadixCiphertext {
        let spec = a.spec;
        let base = spec.base();
        let p = spec.digit_modulus();
        let n_poly = self.params().poly_size;
        let message_lut = Lut::from_fn(n_poly, p, move |x| x % base);
        let carry_lut = Lut::from_fn(n_poly, p, move |x| x / base);
        let mut digits = Vec::with_capacity(spec.digits);
        let mut carry: Option<LweCiphertext> = None;
        for d in &a.digits {
            let with_carry = match &carry {
                Some(c) => d.add(c),
                None => d.clone(),
            };
            digits.push(self.programmable_bootstrap(&with_carry, &message_lut));
            carry = Some(self.programmable_bootstrap(&with_carry, &carry_lut));
        }
        RadixCiphertext { digits, spec }
    }

    fn radix_ge(&self, a: &RadixCiphertext, b: &RadixCiphertext) -> LweCiphertext {
        assert_eq!(a.spec, b.spec, "radix spec mismatch");
        let spec = a.spec;
        let base = spec.base();
        let p = spec.digit_modulus();
        let n_poly = self.params().poly_size;
        // Per-digit three-way comparison: 0 = less, 1 = equal, 2 = greater,
        // computed from the (carry-space-safe) difference x − y + base.
        let cmp_lut = Lut::from_fn(n_poly, p, move |shifted| match shifted.cmp(&base) {
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => 1,
            std::cmp::Ordering::Greater => 2,
        });
        let offset = morphling_math::TorusScalar::encode(base, 2 * p);
        let cmps: Vec<LweCiphertext> = a
            .digits
            .iter()
            .zip(&b.digits)
            .map(|(x, y)| self.programmable_bootstrap(&x.sub(y).add_plain(offset), &cmp_lut))
            .collect();
        // Fold most-significant first: acc ∈ {0 lt, 1 eq, 2 gt};
        // new_acc = acc unless acc == eq, in which case the digit decides.
        let fold_lut = Lut::from_fn(n_poly, p, |packed| {
            let acc = packed / 3 % 3;
            let digit = packed % 3;
            if acc == 1 {
                digit
            } else {
                acc
            }
        });
        let mut acc = cmps.last().expect("at least one digit").clone();
        for c in cmps.iter().rev().skip(1) {
            let packed = acc.scalar_mul(3).add(c);
            acc = self.programmable_bootstrap(&packed, &fold_lut);
        }
        // acc ∈ {0, 1, 2} → ge = acc ≥ 1.
        let ge_lut = Lut::from_fn(n_poly, p, |acc| u64::from(acc >= 1));
        self.programmable_bootstrap(&acc, &ge_lut)
    }

    fn radix_mul(&self, a: &RadixCiphertext, b: &RadixCiphertext) -> RadixCiphertext {
        assert_eq!(a.spec, b.spec, "radix spec mismatch");
        let spec = a.spec;
        let base = spec.base();
        let p = spec.digit_modulus();
        let n_poly = self.params().poly_size;
        // Digit product LUTs over the packed pair (x·base + y).
        let lo_lut = Lut::from_fn(n_poly, p, move |packed| {
            (packed / base) * (packed % base) % base
        });
        let hi_lut = Lut::from_fn(n_poly, p, move |packed| {
            (packed / base) * (packed % base) / base
        });

        let zero = LweCiphertext::trivial(morphling_math::Torus32::ZERO, self.params().lwe_dim);
        let mut lo_cols: Vec<LweCiphertext> = vec![zero.clone(); spec.digits];
        let mut hi_cols: Vec<LweCiphertext> = vec![zero; spec.digits];
        for (i, x) in a.digits.iter().enumerate() {
            for (j, y) in b.digits.iter().enumerate() {
                if i + j >= spec.digits {
                    continue; // overflows past the top digit
                }
                let packed = x.scalar_mul(base as i64).add(y);
                let lo = self.programmable_bootstrap(&packed, &lo_lut);
                lo_cols[i + j] = lo_cols[i + j].add(&lo);
                if i + j + 1 < spec.digits {
                    let hi = self.programmable_bootstrap(&packed, &hi_lut);
                    hi_cols[i + j + 1] = hi_cols[i + j + 1].add(&hi);
                }
            }
        }
        // Stage 1: low halves (each column ≤ digits·(base−1) < base²).
        let stage1 = self.propagate_carries(&RadixCiphertext {
            digits: lo_cols,
            spec,
        });
        // Stage 2: add the high halves onto clean digits and propagate.
        let digits = stage1
            .digits
            .iter()
            .zip(&hi_cols)
            .map(|(d, h)| d.add(h))
            .collect();
        self.propagate_carries(&RadixCiphertext { digits, spec })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ClientKey, ServerKey, StdRng, RadixSpec) {
        let spec = RadixSpec::new(2, 4); // 8-bit integers in 4 base-4 digits
        let mut rng = StdRng::seed_from_u64(300);
        let params = ParamSet::TestMedium
            .params()
            .with_plaintext_modulus(spec.digit_modulus());
        let ck = ClientKey::generate(params, &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        (ck, sk, rng, spec)
    }

    #[test]
    fn spec_arithmetic() {
        let spec = RadixSpec::new(2, 4);
        assert_eq!(spec.base(), 4);
        assert_eq!(spec.digit_modulus(), 16);
        assert_eq!(spec.total_bits(), 8);
        assert_eq!(spec.max_value(), 255);
    }

    #[test]
    fn radix_roundtrip() {
        let (ck, _sk, mut rng, spec) = setup();
        for v in [0u64, 1, 77, 128, 255] {
            let ct = ck.encrypt_radix(v, spec, &mut rng);
            assert_eq!(ck.decrypt_radix(&ct), v, "v={v}");
        }
    }

    #[test]
    fn leveled_addition_then_propagation() {
        let (ck, sk, mut rng, spec) = setup();
        for (x, y) in [(13u64, 29u64), (100, 155), (77, 77), (255, 0)] {
            let a = ck.encrypt_radix(x, spec, &mut rng);
            let b = ck.encrypt_radix(y, spec, &mut rng);
            let sum = sk.radix_add(&a, &b);
            // Decodable even before homomorphic carry propagation…
            assert_eq!(ck.decrypt_radix(&sum), (x + y) & 0xFF, "pre-prop {x}+{y}");
            // …and each digit is clean after propagation.
            let clean = sk.propagate_carries(&sum);
            assert_eq!(
                ck.decrypt_radix(&clean),
                (x + y) & 0xFF,
                "post-prop {x}+{y}"
            );
            for d in clean.digits() {
                assert!(ck.decrypt(d) < spec.base(), "digit not reduced");
            }
        }
    }

    #[test]
    fn scalar_addition() {
        let (ck, sk, mut rng, spec) = setup();
        let a = ck.encrypt_radix(200, spec, &mut rng);
        let shifted = sk.radix_scalar_add(&a, 54);
        assert_eq!(ck.decrypt_radix(&shifted), 254);
    }

    #[test]
    fn comparison() {
        let (ck, sk, mut rng, spec) = setup();
        for (x, y) in [(5u64, 5u64), (254, 255), (255, 254), (0, 200), (129, 128)] {
            let a = ck.encrypt_radix(x, spec, &mut rng);
            let b = ck.encrypt_radix(y, spec, &mut rng);
            let ge = sk.radix_ge(&a, &b);
            assert_eq!(ck.decrypt(&ge), u64::from(x >= y), "{x} >= {y}");
        }
    }

    #[test]
    #[should_panic(expected = "must fit in u64")]
    fn spec_rejects_wide_message_bits() {
        // 2·32 = 64-bit shift in `digit_modulus` — rejected at construction
        // instead of overflowing there.
        let _ = RadixSpec::new(32, 1);
    }

    #[test]
    #[should_panic(expected = "64-bit value range")]
    fn spec_rejects_specs_past_64_bits() {
        let _ = RadixSpec::new(2, 33);
    }

    #[test]
    fn boundary_64_bit_spec_round_trips() {
        // Exactly 64 total bits: `max_value` saturates at u64::MAX and the
        // top digit shifts by 62 — the regression site for the old
        // unchecked `<<` in the decrypt accumulation.
        let spec = RadixSpec::new(2, 32);
        assert_eq!(spec.total_bits(), 64);
        assert_eq!(spec.max_value(), u64::MAX);
        let mut rng = StdRng::seed_from_u64(301);
        let params = ParamSet::Test
            .params()
            .with_plaintext_modulus(spec.digit_modulus())
            .noiseless();
        let ck = ClientKey::generate(params, &mut rng);
        for v in [0u64, 1, 0x0123_4567_89AB_CDEF, u64::MAX - 1, u64::MAX] {
            let ct = ck.encrypt_radix(v, spec, &mut rng);
            assert_eq!(ck.decrypt_radix(&ct), v, "v={v:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_value_rejected() {
        let (ck, _sk, mut rng, spec) = setup();
        let _ = ck.encrypt_radix(256, spec, &mut rng);
    }

    #[test]
    fn multiplication() {
        let (ck, sk, mut rng, spec) = setup();
        for (x, y) in [(7u64, 9u64), (15, 17), (0, 123), (250, 3), (255, 255)] {
            let a = ck.encrypt_radix(x, spec, &mut rng);
            let b = ck.encrypt_radix(y, spec, &mut rng);
            let prod = sk.radix_mul(&a, &b);
            assert_eq!(ck.decrypt_radix(&prod), (x * y) & 0xFF, "{x}*{y}");
            for d in prod.digits() {
                assert!(ck.decrypt(d) < spec.base(), "digit not reduced after mul");
            }
        }
    }
}
