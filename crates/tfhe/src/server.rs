//! The server key: all public material and homomorphic operations,
//! including programmable bootstrapping and bootstrapped boolean gates.

use morphling_math::{Polynomial, Torus32, TorusScalar};
use rand::Rng;

use crate::bootstrap::{
    blind_rotate_assign, blind_rotate_assign_many, blind_rotate_exact, blind_rotate_ntt,
    initial_accumulator, modulus_switch, sample_extract,
};
use crate::bootstrap_key::BootstrapKey;
use crate::error::TfheError;
use crate::external_product::ExternalProductEngine;
use crate::glwe::GlweCiphertext;
use crate::keys::ClientKey;
use crate::ksk::KeySwitchKey;
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::multivalue::MultiLutPlan;
use crate::params::TfheParams;
use crate::workspace::BootstrapWorkspace;

/// Which polynomial-multiplication backend the blind rotation uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MulBackend {
    /// The transform-domain path with the merge-split FFT — what the
    /// hardware accelerates. Default.
    #[default]
    Fft,
    /// The transform-domain path without merge-split (ablation).
    FftPlain,
    /// Exact number-theoretic transform over two CRT primes — O(N log N)
    /// with no rounding at all (the paper's "or NTT" alternative, §III).
    Ntt,
    /// Exact integer arithmetic (slow; correctness oracle).
    Exact,
}

/// Per-call knobs for [`ServerKey::bootstrap_with_options`] — the single
/// entry point the `try_programmable_bootstrap{,_with,_no_ks,_no_ks_with}`
/// family delegates to.
///
/// Defaults match `try_programmable_bootstrap`: key switch on, a fresh
/// workspace allocated internally.
///
/// ```
/// use morphling_tfhe::{BootstrapOptions, ClientKey, Lut, ParamSet, ServerKey};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let client = ClientKey::generate(ParamSet::Test.params(), &mut rng);
/// let server = ServerKey::new(&client, &mut rng);
/// let lut = Lut::identity(server.params().poly_size, 4);
/// let ct = client.encrypt(2, &mut rng);
/// let mut ws = server.workspace();
/// let out = server
///     .bootstrap_with_options(&ct, &lut, BootstrapOptions::new().workspace(&mut ws))
///     .unwrap();
/// assert_eq!(client.decrypt(&out), 2);
/// ```
#[derive(Debug)]
#[must_use = "options do nothing until passed to bootstrap_with_options"]
pub struct BootstrapOptions<'a> {
    keyswitch: bool,
    workspace: Option<&'a mut BootstrapWorkspace>,
}

impl Default for BootstrapOptions<'_> {
    fn default() -> Self {
        Self {
            keyswitch: true,
            workspace: None,
        }
    }
}

impl<'a> BootstrapOptions<'a> {
    /// The defaults: key switch on, internal workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether to key-switch the extracted sample back to the small LWE
    /// key (`false` leaves the result under the extracted `k·N` key).
    pub fn keyswitch(mut self, on: bool) -> Self {
        self.keyswitch = on;
        self
    }

    /// Route the blind rotation through a caller-owned workspace; with a
    /// warm workspace the FFT backends allocate nothing.
    pub fn workspace(mut self, ws: &'a mut BootstrapWorkspace) -> Self {
        self.workspace = Some(ws);
        self
    }
}

/// Configures and derives a [`ServerKey`] — the one place where backend
/// and transform options are chosen.
///
/// ```
/// use morphling_tfhe::{ClientKey, MulBackend, ParamSet, ServerKey};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let client = ClientKey::generate(ParamSet::Test.params(), &mut rng);
/// let server = ServerKey::builder()
///     .backend(MulBackend::Fft)
///     .merge_split(true)
///     .build(&client, &mut rng);
/// assert_eq!(server.backend(), MulBackend::Fft);
/// ```
#[derive(Clone, Copy, Debug, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct ServerKeyBuilder {
    backend: MulBackend,
    merge_split: Option<bool>,
    batched_transforms: Option<bool>,
}

impl ServerKeyBuilder {
    /// Start from the defaults: FFT backend with merge-split and batched
    /// SoA transforms enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Choose the polynomial-multiplication backend.
    pub fn backend(mut self, backend: MulBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Force the merge-split FFT optimization on or off, overriding the
    /// backend's default (`Fft` ⇒ on, `FftPlain` ⇒ off; irrelevant for
    /// the exact backends).
    pub fn merge_split(mut self, enabled: bool) -> Self {
        self.merge_split = Some(enabled);
        self
    }

    /// Force the batched SoA forward transform on or off for the FFT
    /// backends (default on; results are bit-identical either way — this
    /// is an ablation/escape-hatch knob, irrelevant for the exact
    /// backends).
    pub fn batched_transforms(mut self, enabled: bool) -> Self {
        self.batched_transforms = Some(enabled);
        self
    }

    /// Generate BSK and KSK from the client key and assemble the server
    /// key.
    pub fn build<R: Rng + ?Sized>(self, client: &ClientKey, rng: &mut R) -> ServerKey {
        let params = client.params().clone();
        let bsk = BootstrapKey::generate(client, rng);
        let ksk = KeySwitchKey::generate(
            &client.glwe_key().to_extracted_lwe_key(),
            client.lwe_key(),
            &params,
            rng,
        );
        let merge_split = self
            .merge_split
            .unwrap_or(self.backend != MulBackend::FftPlain);
        let engine = ExternalProductEngine::new(&params)
            .with_merge_split(merge_split)
            .with_batched_transforms(self.batched_transforms.unwrap_or(true));
        ServerKey {
            params,
            bsk,
            ksk,
            engine,
            backend: self.backend,
        }
    }
}

/// Public evaluation key material: bootstrapping key, key-switching key,
/// and the transform engine.
///
/// `ServerKey` is `Send + Sync`: one key can drive any number of worker
/// threads (see [`BootstrapEngine`](crate::BootstrapEngine)); the
/// transform engines it uses come from a process-global `Arc` cache.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug)]
pub struct ServerKey {
    params: TfheParams,
    bsk: BootstrapKey,
    ksk: KeySwitchKey,
    engine: ExternalProductEngine,
    backend: MulBackend,
}

// The engine's worker pool shares one key behind an `Arc`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServerKey>()
};

impl ServerKey {
    /// Configure backend and transform options before deriving the key.
    pub fn builder() -> ServerKeyBuilder {
        ServerKeyBuilder::new()
    }

    /// Derive the server key from a client key (generates BSK and KSK).
    ///
    /// Deprecated-in-docs: prefer [`ServerKey::builder`], which is the
    /// single place backend and merge-split options live. `new` remains as
    /// a convenience alias for `ServerKey::builder().build(client, rng)`.
    pub fn new<R: Rng + ?Sized>(client: &ClientKey, rng: &mut R) -> Self {
        Self::builder().build(client, rng)
    }

    /// Derive with an explicit multiplication backend.
    ///
    /// Deprecated-in-docs: prefer
    /// [`ServerKey::builder`]`.backend(backend).build(client, rng)`.
    pub fn with_backend<R: Rng + ?Sized>(
        client: &ClientKey,
        backend: MulBackend,
        rng: &mut R,
    ) -> Self {
        Self::builder().backend(backend).build(client, rng)
    }

    /// Reassemble a server key from its public parts (deserialization
    /// path): the transform engine is rebuilt locally from `params` and the
    /// two option flags, mirroring [`ServerKeyBuilder::build`].
    pub fn from_parts(
        params: TfheParams,
        bsk: BootstrapKey,
        ksk: KeySwitchKey,
        backend: MulBackend,
        merge_split: bool,
        batched_transforms: bool,
    ) -> Self {
        let engine = ExternalProductEngine::new(&params)
            .with_merge_split(merge_split)
            .with_batched_transforms(batched_transforms);
        Self {
            params,
            bsk,
            ksk,
            engine,
            backend,
        }
    }

    /// The parameter set.
    pub fn params(&self) -> &TfheParams {
        &self.params
    }

    /// The bootstrapping key.
    pub fn bootstrap_key(&self) -> &BootstrapKey {
        &self.bsk
    }

    /// The key-switching key.
    pub fn key_switch_key(&self) -> &KeySwitchKey {
        &self.ksk
    }

    /// The active multiplication backend.
    pub fn backend(&self) -> MulBackend {
        self.backend
    }

    /// Whether the merge-split FFT optimization is active.
    pub fn merge_split(&self) -> bool {
        self.engine.merge_split()
    }

    /// Whether the batched SoA forward transform is active.
    pub fn batched_transforms(&self) -> bool {
        self.engine.batched_transforms()
    }

    /// Programmable bootstrapping (Algorithm 1): reset the noise of `ct`
    /// while applying `lut`'s function to the message. Returns a ciphertext
    /// under the original key with fresh (bounded) noise.
    ///
    /// # Panics
    ///
    /// Panics if the LUT was built for a different polynomial size, or on
    /// ciphertext dimension mismatch. Use
    /// [`try_programmable_bootstrap`](Self::try_programmable_bootstrap)
    /// for a `Result`.
    pub fn programmable_bootstrap(&self, ct: &LweCiphertext, lut: &Lut) -> LweCiphertext {
        match self.try_programmable_bootstrap(ct, lut) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`programmable_bootstrap`](Self::programmable_bootstrap).
    ///
    /// # Errors
    ///
    /// [`TfheError::LweDimensionMismatch`] if `ct` is not under the small
    /// LWE key; [`TfheError::LutSizeMismatch`] if `lut` was built for a
    /// different polynomial size.
    pub fn try_programmable_bootstrap(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
    ) -> Result<LweCiphertext, TfheError> {
        self.bootstrap_with_options(ct, lut, BootstrapOptions::new())
    }

    /// A [`BootstrapWorkspace`] sized for this key — allocate once, then
    /// pass to [`try_programmable_bootstrap_with`]
    /// (Self::try_programmable_bootstrap_with) for allocation-free
    /// bootstraps.
    pub fn workspace(&self) -> BootstrapWorkspace {
        self.engine.workspace(self.params.glwe_dim)
    }

    /// [`try_programmable_bootstrap`](Self::try_programmable_bootstrap)
    /// through a caller-owned workspace: on the FFT backends a warm `ws`
    /// makes the blind rotation allocation-free. Results are bit-identical
    /// to the plain method.
    ///
    /// # Errors
    ///
    /// Same as [`try_programmable_bootstrap`](Self::try_programmable_bootstrap).
    pub fn try_programmable_bootstrap_with(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        ws: &mut BootstrapWorkspace,
    ) -> Result<LweCiphertext, TfheError> {
        self.bootstrap_with_options(ct, lut, BootstrapOptions::new().workspace(ws))
    }

    /// Programmable bootstrapping *without* the final key switch: the
    /// result is under the extracted `k·N` key. Exposed because schedules
    /// sometimes fuse the key switch elsewhere (and for tests).
    ///
    /// # Panics
    ///
    /// Panics on dimension or LUT-size mismatch; use
    /// [`try_programmable_bootstrap_no_ks`](Self::try_programmable_bootstrap_no_ks)
    /// for a `Result`.
    pub fn programmable_bootstrap_no_ks(&self, ct: &LweCiphertext, lut: &Lut) -> LweCiphertext {
        match self.try_programmable_bootstrap_no_ks(ct, lut) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible
    /// [`programmable_bootstrap_no_ks`](Self::programmable_bootstrap_no_ks).
    ///
    /// # Errors
    ///
    /// [`TfheError::LweDimensionMismatch`] if `ct` is not under the small
    /// LWE key; [`TfheError::LutSizeMismatch`] if `lut` was built for a
    /// different polynomial size.
    pub fn try_programmable_bootstrap_no_ks(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
    ) -> Result<LweCiphertext, TfheError> {
        self.bootstrap_with_options(ct, lut, BootstrapOptions::new().keyswitch(false))
    }

    /// [`try_programmable_bootstrap_no_ks`]
    /// (Self::try_programmable_bootstrap_no_ks) through a caller-owned
    /// workspace (see
    /// [`try_programmable_bootstrap_with`](Self::try_programmable_bootstrap_with)).
    ///
    /// # Errors
    ///
    /// Same as [`try_programmable_bootstrap`](Self::try_programmable_bootstrap).
    pub fn try_programmable_bootstrap_no_ks_with(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        ws: &mut BootstrapWorkspace,
    ) -> Result<LweCiphertext, TfheError> {
        self.bootstrap_with_options(
            ct,
            lut,
            BootstrapOptions::new().keyswitch(false).workspace(ws),
        )
    }

    /// The configurable bootstrap every `try_programmable_bootstrap*`
    /// variant delegates to: modulus switch, blind rotation, sample
    /// extraction, and — per [`BootstrapOptions`] — the final key switch,
    /// optionally through a caller-owned workspace.
    ///
    /// # Errors
    ///
    /// [`TfheError::LweDimensionMismatch`] if `ct` is not under the small
    /// LWE key; [`TfheError::LutSizeMismatch`] if `lut` was built for a
    /// different polynomial size.
    pub fn bootstrap_with_options(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        opts: BootstrapOptions<'_>,
    ) -> Result<LweCiphertext, TfheError> {
        self.validate_bootstrap_inputs(ct, lut)?;
        // MS: rescale the ciphertext to exponents mod 2N.
        let (mask, b_tilde) = modulus_switch(ct, self.params.two_n());
        let extracted = match opts.workspace {
            Some(ws) => {
                let acc = self.rotate_accumulator(lut.polynomial(), &mask, b_tilde, ws);
                sample_extract(&acc)
            }
            None => {
                let mut ws = self.workspace();
                let acc = self.rotate_accumulator(lut.polynomial(), &mask, b_tilde, &mut ws);
                sample_extract(&acc)
            }
        };
        if opts.keyswitch {
            self.ksk.try_key_switch(&extracted)
        } else {
            Ok(extracted)
        }
    }

    fn validate_bootstrap_inputs(&self, ct: &LweCiphertext, lut: &Lut) -> Result<(), TfheError> {
        if ct.dim() != self.params.lwe_dim {
            return Err(TfheError::LweDimensionMismatch {
                expected: self.params.lwe_dim,
                got: ct.dim(),
            });
        }
        if lut.polynomial().len() != self.params.poly_size {
            return Err(TfheError::LutSizeMismatch {
                lut: lut.polynomial().len(),
                poly_size: self.params.poly_size,
            });
        }
        Ok(())
    }

    /// BR: n external products starting from `X^(−b̃)·tp`, updating the
    /// accumulator in place through the workspace on the FFT backends.
    fn rotate_accumulator(
        &self,
        tp: &Polynomial<Torus32>,
        mask: &[u64],
        b_tilde: u64,
        ws: &mut BootstrapWorkspace,
    ) -> GlweCiphertext {
        let mut acc = initial_accumulator(tp, self.params.glwe_dim, b_tilde);
        match self.backend {
            MulBackend::Fft | MulBackend::FftPlain => {
                blind_rotate_assign(&self.engine, &self.bsk, &mut acc, mask, ws);
            }
            MulBackend::Ntt => {
                let ntt = crate::fft_cache::ntt_for(self.params.poly_size);
                acc = blind_rotate_ntt(&self.params, &self.bsk, acc, mask, &ntt);
            }
            MulBackend::Exact => {
                acc = blind_rotate_exact(&self.params, &self.bsk, acc, mask);
            }
        }
        acc
    }

    /// Bootstrap a wave of independent `(ciphertext, LUT)` items with the
    /// blind rotations run in **lockstep**: at every CMUX step the active
    /// items' digit polynomials go through one batched SoA forward
    /// transform ([`blind_rotate_assign_many`]). Only valid for the FFT
    /// backends; bit-identical to bootstrapping each item separately.
    ///
    /// # Errors
    ///
    /// Same as [`try_programmable_bootstrap`](Self::try_programmable_bootstrap).
    pub(crate) fn try_bootstrap_wave_lockstep(
        &self,
        items: &[(&LweCiphertext, &Lut)],
        ws: &mut BootstrapWorkspace,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        debug_assert!(matches!(
            self.backend,
            MulBackend::Fft | MulBackend::FftPlain
        ));
        let mut accs = Vec::with_capacity(items.len());
        let mut masks = Vec::with_capacity(items.len());
        for (ct, lut) in items {
            self.validate_bootstrap_inputs(ct, lut)?;
            let (mask, b_tilde) = modulus_switch(ct, self.params.two_n());
            accs.push(initial_accumulator(
                lut.polynomial(),
                self.params.glwe_dim,
                b_tilde,
            ));
            masks.push(mask);
        }
        blind_rotate_assign_many(&self.engine, &self.bsk, &mut accs, &masks, ws);
        accs.iter()
            .map(|acc| self.ksk.try_key_switch(&sample_extract(acc)))
            .collect()
    }

    /// Multi-value bootstrapping: evaluate `k` LUTs of the same input for
    /// **one** blind rotation. The common factor of every test polynomial
    /// is rotated once; each LUT's accumulator is then derived by a cheap
    /// sparse product and sample-extracted (see [`MultiLutPlan`]).
    ///
    /// Outputs decode identically to `k` plain bootstraps but carry more
    /// noise (amplified by [`MultiLutPlan::factor_weight`]); the
    /// bit-identical-but-slow reference is
    /// [`try_programmable_bootstrap_many_separate`]
    /// (Self::try_programmable_bootstrap_many_separate). With `k = 1` this
    /// is exactly [`try_programmable_bootstrap`]
    /// (Self::try_programmable_bootstrap); LUTs that admit no common
    /// factor fall back to one rotation per LUT.
    ///
    /// # Errors
    ///
    /// [`TfheError::LweDimensionMismatch`] /
    /// [`TfheError::LutSizeMismatch`] on malformed inputs.
    pub fn try_programmable_bootstrap_many(
        &self,
        ct: &LweCiphertext,
        luts: &[Lut],
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        let mut ws = self.workspace();
        self.try_programmable_bootstrap_many_with(ct, luts, &mut ws)
    }

    /// Infallible [`try_programmable_bootstrap_many`]
    /// (Self::try_programmable_bootstrap_many).
    ///
    /// # Panics
    ///
    /// Panics on dimension or LUT-size mismatch.
    pub fn programmable_bootstrap_many(
        &self,
        ct: &LweCiphertext,
        luts: &[Lut],
    ) -> Vec<LweCiphertext> {
        match self.try_programmable_bootstrap_many(ct, luts) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`try_programmable_bootstrap_many`]
    /// (Self::try_programmable_bootstrap_many) through a caller-owned
    /// workspace.
    ///
    /// # Errors
    ///
    /// Same as [`try_programmable_bootstrap_many`]
    /// (Self::try_programmable_bootstrap_many).
    pub fn try_programmable_bootstrap_many_with(
        &self,
        ct: &LweCiphertext,
        luts: &[Lut],
        ws: &mut BootstrapWorkspace,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        let refs: Vec<&Lut> = luts.iter().collect();
        self.try_bootstrap_many_refs(ct, &refs, ws)
    }

    /// The multi-value core shared by every backend: validate, plan, one
    /// rotation, k derivations. Takes LUT references so fanout batches can
    /// borrow from a shared LUT pool without cloning.
    pub(crate) fn try_bootstrap_many_refs(
        &self,
        ct: &LweCiphertext,
        luts: &[&Lut],
        ws: &mut BootstrapWorkspace,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        for lut in luts {
            self.validate_bootstrap_inputs(ct, lut)?;
        }
        match luts {
            [] => Ok(Vec::new()),
            // One LUT has nothing to amortize; the plain path keeps k = 1
            // bit-identical to `try_programmable_bootstrap`.
            [lut] => Ok(vec![self.bootstrap_with_options(
                ct,
                lut,
                BootstrapOptions::new().workspace(ws),
            )?]),
            _ => match MultiLutPlan::build(luts.iter().copied()) {
                Some(plan) => {
                    let (mask, b_tilde) = modulus_switch(ct, self.params.two_n());
                    let acc = self.rotate_accumulator(plan.common(), &mask, b_tilde, ws);
                    (0..luts.len())
                        .map(|i| {
                            self.ksk
                                .try_key_switch(&sample_extract(&plan.derive(i, &acc)))
                        })
                        .collect()
                }
                // No common power of two to extract (adversarial raw-torus
                // LUTs): fall back to one rotation per LUT.
                None => luts
                    .iter()
                    .map(|lut| {
                        self.bootstrap_with_options(
                            ct,
                            lut,
                            BootstrapOptions::new().workspace(&mut *ws),
                        )
                    })
                    .collect(),
            },
        }
    }

    /// The deterministic reference for multi-value bootstrapping: the same
    /// common-factor derivation as [`try_programmable_bootstrap_many`]
    /// (Self::try_programmable_bootstrap_many), but paying one **full
    /// blind rotation per LUT** instead of reusing a single rotation.
    /// Because the rotation is deterministic, outputs are bit-identical to
    /// the fused path — this is what tests and the `multivalue_bootstrap`
    /// bench compare against.
    ///
    /// # Errors
    ///
    /// Same as [`try_programmable_bootstrap_many`]
    /// (Self::try_programmable_bootstrap_many).
    pub fn try_programmable_bootstrap_many_separate(
        &self,
        ct: &LweCiphertext,
        luts: &[Lut],
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        let refs: Vec<&Lut> = luts.iter().collect();
        for lut in &refs {
            self.validate_bootstrap_inputs(ct, lut)?;
        }
        let mut ws = self.workspace();
        match refs.as_slice() {
            [] => Ok(Vec::new()),
            [lut] => Ok(vec![self.bootstrap_with_options(
                ct,
                lut,
                BootstrapOptions::new().workspace(&mut ws),
            )?]),
            _ => match MultiLutPlan::build(refs.iter().copied()) {
                Some(plan) => {
                    let (mask, b_tilde) = modulus_switch(ct, self.params.two_n());
                    (0..refs.len())
                        .map(|i| {
                            let acc =
                                self.rotate_accumulator(plan.common(), &mask, b_tilde, &mut ws);
                            self.ksk
                                .try_key_switch(&sample_extract(&plan.derive(i, &acc)))
                        })
                        .collect()
                }
                None => refs
                    .iter()
                    .map(|lut| {
                        self.bootstrap_with_options(
                            ct,
                            lut,
                            BootstrapOptions::new().workspace(&mut ws),
                        )
                    })
                    .collect(),
            },
        }
    }

    /// Tree bootstrapping: evaluate `f(m_0, …, m_(d−1))` over `d`
    /// encrypted digits in `Z_p` by chaining LUT stages. Stage 1
    /// re-encodes digit `i` to `m_i · p^(d−1−i) / 2p^d` (one bootstrap
    /// each); the re-encoded ciphertexts **sum** to a single ciphertext of
    /// the combined index `Σ m_i · p^(d−1−i)` in `Z_(p^d)`; stage 2
    /// bootstraps that index through a LUT of the full function table.
    ///
    /// Requires `p^d ≤ N/2` so the combined index keeps its padding bit.
    ///
    /// # Errors
    ///
    /// [`TfheError::PlaintextModulusTooLarge`] if `p^d > N/2` (or
    /// overflows); otherwise as [`try_programmable_bootstrap`]
    /// (Self::try_programmable_bootstrap).
    pub fn try_tree_bootstrap<F>(
        &self,
        cts: &[LweCiphertext],
        f: F,
    ) -> Result<LweCiphertext, TfheError>
    where
        F: Fn(&[u64]) -> u64,
    {
        let mut out = self.try_tree_bootstrap_many(cts, std::slice::from_ref(&f))?;
        match out.pop() {
            Some(ct) => Ok(ct),
            // Unreachable: one function in, one ciphertext out.
            None => Err(TfheError::NoLutProvided),
        }
    }

    /// [`try_tree_bootstrap`](Self::try_tree_bootstrap) for several output
    /// functions of the same inputs: the final stage runs them all through
    /// one multi-value bootstrap of the shared combined index — `d`
    /// rotations for the index plus **one** rotation for every output.
    ///
    /// # Errors
    ///
    /// Same as [`try_tree_bootstrap`](Self::try_tree_bootstrap).
    pub fn try_tree_bootstrap_many<F>(
        &self,
        cts: &[LweCiphertext],
        funcs: &[F],
    ) -> Result<Vec<LweCiphertext>, TfheError>
    where
        F: Fn(&[u64]) -> u64,
    {
        let p = self.params.plaintext_modulus;
        let n = self.params.poly_size;
        let d = cts.len();
        // The combined index lives in Z_(p^d) and must keep the padding
        // bit: p^d ≤ N/2.
        let combined = p
            .checked_pow(d as u32)
            .filter(|&c| c as usize <= n / 2)
            .ok_or(TfheError::PlaintextModulusTooLarge {
                modulus: p.saturating_pow(d as u32),
                poly_size: n,
            })?;
        if funcs.is_empty() {
            return Ok(Vec::new());
        }
        if cts.is_empty() {
            // Zero inputs make every function a constant; a trivial
            // encryption carries it with no noise at all.
            return Ok(funcs
                .iter()
                .map(|f| {
                    LweCiphertext::trivial(Torus32::encode(f(&[]) % p, 2 * p), self.params.lwe_dim)
                })
                .collect());
        }
        let mut ws = self.workspace();
        // Stage 1: re-encode digit i onto the p^(d−1−i) rung of the
        // combined torus grid; the outputs sum to the index ciphertext.
        let mut index: Option<LweCiphertext> = None;
        for (i, ct) in cts.iter().enumerate() {
            let scale = combined / p.pow(i as u32 + 1); // p^(d−1−i)
            let lut = Lut::try_from_torus_fn(n, p, |m| Torus32::encode(m * scale, 2 * combined))?;
            let re =
                self.bootstrap_with_options(ct, &lut, BootstrapOptions::new().workspace(&mut ws))?;
            index = Some(match index {
                Some(acc) => acc.add(&re),
                None => re,
            });
        }
        let index = match index {
            Some(ct) => ct,
            // Unreachable: cts is non-empty here.
            None => return Ok(Vec::new()),
        };
        // Stage 2: every output function as a LUT over Z_(p^d), all
        // evaluated from one rotation of the shared index.
        let luts = funcs
            .iter()
            .map(|f| {
                Lut::try_from_torus_fn(n, combined, |m| {
                    let mut digits = vec![0u64; d];
                    let mut rem = m;
                    for slot in digits.iter_mut().rev() {
                        *slot = rem % p;
                        rem /= p;
                    }
                    Torus32::encode(f(&digits) % p, 2 * p)
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.try_programmable_bootstrap_many_with(&index, &luts, &mut ws)
    }

    /// A plain (identity-LUT) bootstrap: refreshes noise, keeps the
    /// message.
    pub fn bootstrap(&self, ct: &LweCiphertext) -> LweCiphertext {
        let lut = Lut::identity(self.params.poly_size, self.params.plaintext_modulus);
        self.programmable_bootstrap(ct, &lut)
    }

    /// Gate bootstrap: blind-rotate the ±1/8 test polynomial and key-switch
    /// back; the result encrypts `+1/8` iff the input phase is positive.
    fn gate_bootstrap(&self, lin: &LweCiphertext) -> LweCiphertext {
        let lut = Lut::bool_gate(self.params.poly_size);
        self.programmable_bootstrap(lin, &lut)
    }

    /// Bootstrapped NAND of two boolean ciphertexts (±1/8 encoding).
    pub fn nand(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = LweCiphertext::trivial(Torus32::from_f64(0.125), self.params.lwe_dim)
            .sub(a)
            .sub(b);
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped AND.
    pub fn and(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a.add(b).add_plain(Torus32::from_f64(-0.125));
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped OR.
    pub fn or(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a.add(b).add_plain(Torus32::from_f64(0.125));
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped NOR.
    pub fn nor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a.add(b).add_plain(Torus32::from_f64(0.125)).neg();
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped XOR.
    pub fn xor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a.add(b).scalar_mul(2).add_plain(Torus32::from_f64(0.25));
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped XNOR.
    pub fn xnor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a
            .add(b)
            .scalar_mul(2)
            .add_plain(Torus32::from_f64(0.25))
            .neg();
        self.gate_bootstrap(&lin)
    }

    /// NOT — a negation, free of bootstrapping (and of noise growth).
    pub fn not(&self, a: &LweCiphertext) -> LweCiphertext {
        a.neg()
    }

    /// Bootstrapped MUX: `cond ? a : b` (three gate bootstraps).
    pub fn mux(&self, cond: &LweCiphertext, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let t = self.and(cond, a);
        let f = self.and(&self.not(cond), b);
        self.or(&t, &f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(backend: MulBackend) -> (ClientKey, ServerKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(80);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let sk = ServerKey::with_backend(&ck, backend, &mut rng);
        (ck, sk, rng)
    }

    #[test]
    fn identity_bootstrap_preserves_messages() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            let boosted = sk.bootstrap(&ct);
            assert_eq!(ck.decrypt(&boosted), m, "m={m}");
        }
    }

    #[test]
    fn programmable_bootstrap_applies_the_lut() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let lut = Lut::from_fn(sk.params().poly_size, 4, |m| (3 * m + 1) % 4);
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            let out = sk.programmable_bootstrap(&ct, &lut);
            assert_eq!(ck.decrypt(&out), (3 * m + 1) % 4, "m={m}");
        }
    }

    #[test]
    fn bootstrap_resets_noise() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        // Stack additions until the noise is sizable, then bootstrap.
        let ct = ck.encrypt(1, &mut rng);
        let zero = ck.encrypt(0, &mut rng);
        let mut noisy = ct;
        for _ in 0..8 {
            noisy = noisy.add(&zero);
        }
        let refreshed = sk.bootstrap(&noisy);
        assert_eq!(ck.decrypt(&refreshed), 1);
        // The refreshed noise must be below the stacked noise.
        let target = Torus32::encode(1, 8);
        let stacked_err = (ck.decrypt_torus(&noisy) - target).to_f64_signed().abs();
        let fresh_err = (ck.decrypt_torus(&refreshed) - target)
            .to_f64_signed()
            .abs();
        assert!(
            fresh_err < stacked_err.max(1e-3),
            "fresh {fresh_err} vs stacked {stacked_err}"
        );
    }

    #[test]
    fn all_two_input_gates_truth_tables() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (x, y) in cases {
            let a = ck.encrypt_bool(x, &mut rng);
            let b = ck.encrypt_bool(y, &mut rng);
            assert_eq!(ck.decrypt_bool(&sk.nand(&a, &b)), !(x && y), "nand {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.and(&a, &b)), x && y, "and {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.or(&a, &b)), x || y, "or {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.nor(&a, &b)), !(x || y), "nor {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.xor(&a, &b)), x ^ y, "xor {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.xnor(&a, &b)), !(x ^ y), "xnor {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.not(&a)), !x, "not {x}");
        }
    }

    #[test]
    fn mux_selects() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        for (c, x, y) in [
            (true, true, false),
            (false, true, false),
            (true, false, true),
        ] {
            let cc = ck.encrypt_bool(c, &mut rng);
            let a = ck.encrypt_bool(x, &mut rng);
            let b = ck.encrypt_bool(y, &mut rng);
            assert_eq!(ck.decrypt_bool(&sk.mux(&cc, &a, &b)), if c { x } else { y });
        }
    }

    #[test]
    fn workspace_bootstrap_is_bit_identical_to_plain_bootstrap() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let lut = Lut::from_fn(sk.params().poly_size, 4, |m| (m + 1) % 4);
        let mut ws = sk.workspace();
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            let plain = sk.try_programmable_bootstrap(&ct, &lut).unwrap();
            // Reuse the same workspace across all messages — state left
            // over from one bootstrap must not leak into the next.
            let with_ws = sk
                .try_programmable_bootstrap_with(&ct, &lut, &mut ws)
                .unwrap();
            assert_eq!(with_ws, plain, "m={m}");
        }
    }

    #[test]
    fn exact_backend_agrees_with_fft_backend() {
        let mut rng = StdRng::seed_from_u64(81);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let sk_fft = ServerKey::with_backend(&ck, MulBackend::Fft, &mut rng);
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            assert_eq!(ck.decrypt(&sk_fft.bootstrap(&ct)), m);
        }
        for backend in [MulBackend::Exact, MulBackend::Ntt] {
            let mut rng2 = StdRng::seed_from_u64(81);
            let ck2 = ClientKey::generate(ParamSet::Test.params(), &mut rng2);
            let sk2 = ServerKey::with_backend(&ck2, backend, &mut rng2);
            for m in 0..4 {
                let ct = ck2.encrypt(m, &mut rng2);
                assert_eq!(ck2.decrypt(&sk2.bootstrap(&ct)), m, "{backend:?}");
            }
        }
    }

    #[test]
    fn gates_chain_through_many_levels() {
        // A small circuit: ((a NAND b) XOR c) OR (a AND c), evaluated
        // homomorphically and in the clear.
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        for bits in 0..8u32 {
            let (x, y, z) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let a = ck.encrypt_bool(x, &mut rng);
            let b = ck.encrypt_bool(y, &mut rng);
            let c = ck.encrypt_bool(z, &mut rng);
            let out = sk.or(&sk.xor(&sk.nand(&a, &b), &c), &sk.and(&a, &c));
            assert_eq!(
                ck.decrypt_bool(&out),
                (!(x && y) ^ z) || (x && z),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn single_lut_bootstrap_many_is_bit_identical_to_plain() {
        // The k = 1 property: `bootstrap_many(ct, [lut])` takes the plain
        // path, so its one output is bit-for-bit the single-LUT bootstrap.
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let p = sk.params().plaintext_modulus;
        let lut = Lut::from_fn(sk.params().poly_size, p, |m| (3 * m + 1) % p);
        for m in 0..p {
            let ct = ck.encrypt(m, &mut rng);
            let many = sk
                .try_programmable_bootstrap_many(&ct, std::slice::from_ref(&lut))
                .unwrap();
            assert_eq!(many.len(), 1);
            assert_eq!(many[0], sk.try_programmable_bootstrap(&ct, &lut).unwrap());
        }
    }

    #[test]
    fn multi_value_bootstrap_matches_separate_rotations_and_decodes() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let p = sk.params().plaintext_modulus;
        let n = sk.params().poly_size;
        let luts = vec![
            Lut::identity(n, p),
            Lut::from_fn(n, p, |m| (3 * m + 1) % p),
            Lut::from_fn(n, p, |m| m / 2),
            Lut::from_fn(n, p, |m| u64::from(m >= 2)),
        ];
        for m in 0..p {
            let ct = ck.encrypt(m, &mut rng);
            let fused = sk.try_programmable_bootstrap_many(&ct, &luts).unwrap();
            // Bit-identical to the deterministic k-rotation reference...
            let separate = sk
                .try_programmable_bootstrap_many_separate(&ct, &luts)
                .unwrap();
            assert_eq!(fused, separate, "m={m}");
            // ...and decode-equal to k plain programmable bootstraps.
            for (out, lut) in fused.iter().zip(&luts) {
                let plain = sk.try_programmable_bootstrap(&ct, lut).unwrap();
                assert_eq!(ck.decrypt(out), ck.decrypt(&plain), "m={m}");
            }
        }
    }

    #[test]
    fn tree_bootstrap_evaluates_two_digit_functions() {
        // Test params: p = 4, N = 256 → p² = 16 ≤ 128, two digits fit.
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let p = sk.params().plaintext_modulus;
        for m0 in 0..p {
            for m1 in 0..p {
                let cts = vec![ck.encrypt(m0, &mut rng), ck.encrypt(m1, &mut rng)];
                let sum = sk
                    .try_tree_bootstrap(&cts, |d: &[u64]| (d[0] + d[1]) % 4)
                    .unwrap();
                assert_eq!(ck.decrypt(&sum), (m0 + m1) % 4, "m0={m0} m1={m1}");
                // Several outputs of the same digits share the stage-2
                // rotation through the multi-value path.
                type DigitFn = Box<dyn Fn(&[u64]) -> u64>;
                let funcs: Vec<DigitFn> = vec![
                    Box::new(|d: &[u64]| (d[0] + d[1]) % 4),
                    Box::new(|d: &[u64]| d[0].max(d[1])),
                    Box::new(|d: &[u64]| u64::from(d[0] == d[1])),
                ];
                let outs = sk.try_tree_bootstrap_many(&cts, &funcs).unwrap();
                assert_eq!(ck.decrypt(&outs[0]), (m0 + m1) % 4);
                assert_eq!(ck.decrypt(&outs[1]), m0.max(m1));
                assert_eq!(ck.decrypt(&outs[2]), u64::from(m0 == m1));
            }
        }
    }

    #[test]
    fn tree_bootstrap_rejects_oversized_digit_counts() {
        // p = 4, N = 256: four digits need p⁴ = 256 > N/2 = 128.
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let cts: Vec<LweCiphertext> = (0..4).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        assert!(matches!(
            sk.try_tree_bootstrap(&cts, |d: &[u64]| d[0]),
            Err(TfheError::PlaintextModulusTooLarge { .. })
        ));
    }
}
