//! The server key: all public material and homomorphic operations,
//! including programmable bootstrapping and bootstrapped boolean gates.

use morphling_math::{Torus32, TorusScalar};
use rand::Rng;

use crate::bootstrap::{
    blind_rotate_assign, blind_rotate_exact, blind_rotate_ntt, initial_accumulator, modulus_switch,
    sample_extract,
};
use crate::bootstrap_key::BootstrapKey;
use crate::error::TfheError;
use crate::external_product::ExternalProductEngine;
use crate::keys::ClientKey;
use crate::ksk::KeySwitchKey;
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::params::TfheParams;
use crate::workspace::BootstrapWorkspace;

/// Which polynomial-multiplication backend the blind rotation uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MulBackend {
    /// The transform-domain path with the merge-split FFT — what the
    /// hardware accelerates. Default.
    #[default]
    Fft,
    /// The transform-domain path without merge-split (ablation).
    FftPlain,
    /// Exact number-theoretic transform over two CRT primes — O(N log N)
    /// with no rounding at all (the paper's "or NTT" alternative, §III).
    Ntt,
    /// Exact integer arithmetic (slow; correctness oracle).
    Exact,
}

/// Configures and derives a [`ServerKey`] — the one place where backend
/// and transform options are chosen.
///
/// ```
/// use morphling_tfhe::{ClientKey, MulBackend, ParamSet, ServerKey};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let client = ClientKey::generate(ParamSet::Test.params(), &mut rng);
/// let server = ServerKey::builder()
///     .backend(MulBackend::Fft)
///     .merge_split(true)
///     .build(&client, &mut rng);
/// assert_eq!(server.backend(), MulBackend::Fft);
/// ```
#[derive(Clone, Copy, Debug, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct ServerKeyBuilder {
    backend: MulBackend,
    merge_split: Option<bool>,
}

impl ServerKeyBuilder {
    /// Start from the defaults: FFT backend with merge-split enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Choose the polynomial-multiplication backend.
    pub fn backend(mut self, backend: MulBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Force the merge-split FFT optimization on or off, overriding the
    /// backend's default (`Fft` ⇒ on, `FftPlain` ⇒ off; irrelevant for
    /// the exact backends).
    pub fn merge_split(mut self, enabled: bool) -> Self {
        self.merge_split = Some(enabled);
        self
    }

    /// Generate BSK and KSK from the client key and assemble the server
    /// key.
    pub fn build<R: Rng + ?Sized>(self, client: &ClientKey, rng: &mut R) -> ServerKey {
        let params = client.params().clone();
        let bsk = BootstrapKey::generate(client, rng);
        let ksk = KeySwitchKey::generate(
            &client.glwe_key().to_extracted_lwe_key(),
            client.lwe_key(),
            &params,
            rng,
        );
        let merge_split = self
            .merge_split
            .unwrap_or(self.backend != MulBackend::FftPlain);
        let engine = ExternalProductEngine::new(&params).with_merge_split(merge_split);
        ServerKey {
            params,
            bsk,
            ksk,
            engine,
            backend: self.backend,
        }
    }
}

/// Public evaluation key material: bootstrapping key, key-switching key,
/// and the transform engine.
///
/// `ServerKey` is `Send + Sync`: one key can drive any number of worker
/// threads (see [`BootstrapEngine`](crate::BootstrapEngine)); the
/// transform engines it uses come from a process-global `Arc` cache.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug)]
pub struct ServerKey {
    params: TfheParams,
    bsk: BootstrapKey,
    ksk: KeySwitchKey,
    engine: ExternalProductEngine,
    backend: MulBackend,
}

// The engine's worker pool shares one key behind an `Arc`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServerKey>()
};

impl ServerKey {
    /// Configure backend and transform options before deriving the key.
    pub fn builder() -> ServerKeyBuilder {
        ServerKeyBuilder::new()
    }

    /// Derive the server key from a client key (generates BSK and KSK).
    ///
    /// Deprecated-in-docs: prefer [`ServerKey::builder`], which is the
    /// single place backend and merge-split options live. `new` remains as
    /// a convenience alias for `ServerKey::builder().build(client, rng)`.
    pub fn new<R: Rng + ?Sized>(client: &ClientKey, rng: &mut R) -> Self {
        Self::builder().build(client, rng)
    }

    /// Derive with an explicit multiplication backend.
    ///
    /// Deprecated-in-docs: prefer
    /// [`ServerKey::builder`]`.backend(backend).build(client, rng)`.
    pub fn with_backend<R: Rng + ?Sized>(
        client: &ClientKey,
        backend: MulBackend,
        rng: &mut R,
    ) -> Self {
        Self::builder().backend(backend).build(client, rng)
    }

    /// The parameter set.
    pub fn params(&self) -> &TfheParams {
        &self.params
    }

    /// The bootstrapping key.
    pub fn bootstrap_key(&self) -> &BootstrapKey {
        &self.bsk
    }

    /// The key-switching key.
    pub fn key_switch_key(&self) -> &KeySwitchKey {
        &self.ksk
    }

    /// The active multiplication backend.
    pub fn backend(&self) -> MulBackend {
        self.backend
    }

    /// Programmable bootstrapping (Algorithm 1): reset the noise of `ct`
    /// while applying `lut`'s function to the message. Returns a ciphertext
    /// under the original key with fresh (bounded) noise.
    ///
    /// # Panics
    ///
    /// Panics if the LUT was built for a different polynomial size, or on
    /// ciphertext dimension mismatch. Use
    /// [`try_programmable_bootstrap`](Self::try_programmable_bootstrap)
    /// for a `Result`.
    pub fn programmable_bootstrap(&self, ct: &LweCiphertext, lut: &Lut) -> LweCiphertext {
        match self.try_programmable_bootstrap(ct, lut) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`programmable_bootstrap`](Self::programmable_bootstrap).
    ///
    /// # Errors
    ///
    /// [`TfheError::LweDimensionMismatch`] if `ct` is not under the small
    /// LWE key; [`TfheError::LutSizeMismatch`] if `lut` was built for a
    /// different polynomial size.
    pub fn try_programmable_bootstrap(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
    ) -> Result<LweCiphertext, TfheError> {
        let mut ws = self.workspace();
        self.try_programmable_bootstrap_with(ct, lut, &mut ws)
    }

    /// A [`BootstrapWorkspace`] sized for this key — allocate once, then
    /// pass to [`try_programmable_bootstrap_with`]
    /// (Self::try_programmable_bootstrap_with) for allocation-free
    /// bootstraps.
    pub fn workspace(&self) -> BootstrapWorkspace {
        self.engine.workspace(self.params.glwe_dim)
    }

    /// [`try_programmable_bootstrap`](Self::try_programmable_bootstrap)
    /// through a caller-owned workspace: on the FFT backends a warm `ws`
    /// makes the blind rotation allocation-free. Results are bit-identical
    /// to the plain method.
    ///
    /// # Errors
    ///
    /// Same as [`try_programmable_bootstrap`](Self::try_programmable_bootstrap).
    pub fn try_programmable_bootstrap_with(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        ws: &mut BootstrapWorkspace,
    ) -> Result<LweCiphertext, TfheError> {
        let extracted = self.try_programmable_bootstrap_no_ks_with(ct, lut, ws)?;
        self.ksk.try_key_switch(&extracted)
    }

    /// Programmable bootstrapping *without* the final key switch: the
    /// result is under the extracted `k·N` key. Exposed because schedules
    /// sometimes fuse the key switch elsewhere (and for tests).
    ///
    /// # Panics
    ///
    /// Panics on dimension or LUT-size mismatch; use
    /// [`try_programmable_bootstrap_no_ks`](Self::try_programmable_bootstrap_no_ks)
    /// for a `Result`.
    pub fn programmable_bootstrap_no_ks(&self, ct: &LweCiphertext, lut: &Lut) -> LweCiphertext {
        match self.try_programmable_bootstrap_no_ks(ct, lut) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible
    /// [`programmable_bootstrap_no_ks`](Self::programmable_bootstrap_no_ks).
    ///
    /// # Errors
    ///
    /// [`TfheError::LweDimensionMismatch`] if `ct` is not under the small
    /// LWE key; [`TfheError::LutSizeMismatch`] if `lut` was built for a
    /// different polynomial size.
    pub fn try_programmable_bootstrap_no_ks(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
    ) -> Result<LweCiphertext, TfheError> {
        let mut ws = self.workspace();
        self.try_programmable_bootstrap_no_ks_with(ct, lut, &mut ws)
    }

    /// [`try_programmable_bootstrap_no_ks`]
    /// (Self::try_programmable_bootstrap_no_ks) through a caller-owned
    /// workspace (see
    /// [`try_programmable_bootstrap_with`](Self::try_programmable_bootstrap_with)).
    ///
    /// # Errors
    ///
    /// Same as [`try_programmable_bootstrap`](Self::try_programmable_bootstrap).
    pub fn try_programmable_bootstrap_no_ks_with(
        &self,
        ct: &LweCiphertext,
        lut: &Lut,
        ws: &mut BootstrapWorkspace,
    ) -> Result<LweCiphertext, TfheError> {
        if ct.dim() != self.params.lwe_dim {
            return Err(TfheError::LweDimensionMismatch {
                expected: self.params.lwe_dim,
                got: ct.dim(),
            });
        }
        if lut.polynomial().len() != self.params.poly_size {
            return Err(TfheError::LutSizeMismatch {
                lut: lut.polynomial().len(),
                poly_size: self.params.poly_size,
            });
        }
        // MS: rescale the ciphertext to exponents mod 2N.
        let (mask, b_tilde) = modulus_switch(ct, self.params.two_n());
        // BR: n external products starting from X^(−b̃)·TP, updating the
        // accumulator in place through the workspace on the FFT backends.
        let mut acc = initial_accumulator(lut.polynomial(), self.params.glwe_dim, b_tilde);
        match self.backend {
            MulBackend::Fft | MulBackend::FftPlain => {
                blind_rotate_assign(&self.engine, &self.bsk, &mut acc, &mask, ws);
            }
            MulBackend::Ntt => {
                let ntt = crate::fft_cache::ntt_for(self.params.poly_size);
                acc = blind_rotate_ntt(&self.params, &self.bsk, acc, &mask, &ntt);
            }
            MulBackend::Exact => {
                acc = blind_rotate_exact(&self.params, &self.bsk, acc, &mask);
            }
        }
        // SE: constant coefficient as an LWE sample.
        Ok(sample_extract(&acc))
    }

    /// A plain (identity-LUT) bootstrap: refreshes noise, keeps the
    /// message.
    pub fn bootstrap(&self, ct: &LweCiphertext) -> LweCiphertext {
        let lut = Lut::identity(self.params.poly_size, self.params.plaintext_modulus);
        self.programmable_bootstrap(ct, &lut)
    }

    /// Gate bootstrap: blind-rotate the ±1/8 test polynomial and key-switch
    /// back; the result encrypts `+1/8` iff the input phase is positive.
    fn gate_bootstrap(&self, lin: &LweCiphertext) -> LweCiphertext {
        let lut = Lut::bool_gate(self.params.poly_size);
        self.programmable_bootstrap(lin, &lut)
    }

    /// Bootstrapped NAND of two boolean ciphertexts (±1/8 encoding).
    pub fn nand(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = LweCiphertext::trivial(Torus32::from_f64(0.125), self.params.lwe_dim)
            .sub(a)
            .sub(b);
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped AND.
    pub fn and(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a.add(b).add_plain(Torus32::from_f64(-0.125));
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped OR.
    pub fn or(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a.add(b).add_plain(Torus32::from_f64(0.125));
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped NOR.
    pub fn nor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a.add(b).add_plain(Torus32::from_f64(0.125)).neg();
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped XOR.
    pub fn xor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a.add(b).scalar_mul(2).add_plain(Torus32::from_f64(0.25));
        self.gate_bootstrap(&lin)
    }

    /// Bootstrapped XNOR.
    pub fn xnor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = a
            .add(b)
            .scalar_mul(2)
            .add_plain(Torus32::from_f64(0.25))
            .neg();
        self.gate_bootstrap(&lin)
    }

    /// NOT — a negation, free of bootstrapping (and of noise growth).
    pub fn not(&self, a: &LweCiphertext) -> LweCiphertext {
        a.neg()
    }

    /// Bootstrapped MUX: `cond ? a : b` (three gate bootstraps).
    pub fn mux(&self, cond: &LweCiphertext, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let t = self.and(cond, a);
        let f = self.and(&self.not(cond), b);
        self.or(&t, &f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(backend: MulBackend) -> (ClientKey, ServerKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(80);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let sk = ServerKey::with_backend(&ck, backend, &mut rng);
        (ck, sk, rng)
    }

    #[test]
    fn identity_bootstrap_preserves_messages() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            let boosted = sk.bootstrap(&ct);
            assert_eq!(ck.decrypt(&boosted), m, "m={m}");
        }
    }

    #[test]
    fn programmable_bootstrap_applies_the_lut() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let lut = Lut::from_fn(sk.params().poly_size, 4, |m| (3 * m + 1) % 4);
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            let out = sk.programmable_bootstrap(&ct, &lut);
            assert_eq!(ck.decrypt(&out), (3 * m + 1) % 4, "m={m}");
        }
    }

    #[test]
    fn bootstrap_resets_noise() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        // Stack additions until the noise is sizable, then bootstrap.
        let ct = ck.encrypt(1, &mut rng);
        let zero = ck.encrypt(0, &mut rng);
        let mut noisy = ct;
        for _ in 0..8 {
            noisy = noisy.add(&zero);
        }
        let refreshed = sk.bootstrap(&noisy);
        assert_eq!(ck.decrypt(&refreshed), 1);
        // The refreshed noise must be below the stacked noise.
        let target = Torus32::encode(1, 8);
        let stacked_err = (ck.decrypt_torus(&noisy) - target).to_f64_signed().abs();
        let fresh_err = (ck.decrypt_torus(&refreshed) - target)
            .to_f64_signed()
            .abs();
        assert!(
            fresh_err < stacked_err.max(1e-3),
            "fresh {fresh_err} vs stacked {stacked_err}"
        );
    }

    #[test]
    fn all_two_input_gates_truth_tables() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (x, y) in cases {
            let a = ck.encrypt_bool(x, &mut rng);
            let b = ck.encrypt_bool(y, &mut rng);
            assert_eq!(ck.decrypt_bool(&sk.nand(&a, &b)), !(x && y), "nand {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.and(&a, &b)), x && y, "and {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.or(&a, &b)), x || y, "or {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.nor(&a, &b)), !(x || y), "nor {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.xor(&a, &b)), x ^ y, "xor {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.xnor(&a, &b)), !(x ^ y), "xnor {x} {y}");
            assert_eq!(ck.decrypt_bool(&sk.not(&a)), !x, "not {x}");
        }
    }

    #[test]
    fn mux_selects() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        for (c, x, y) in [
            (true, true, false),
            (false, true, false),
            (true, false, true),
        ] {
            let cc = ck.encrypt_bool(c, &mut rng);
            let a = ck.encrypt_bool(x, &mut rng);
            let b = ck.encrypt_bool(y, &mut rng);
            assert_eq!(ck.decrypt_bool(&sk.mux(&cc, &a, &b)), if c { x } else { y });
        }
    }

    #[test]
    fn workspace_bootstrap_is_bit_identical_to_plain_bootstrap() {
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        let lut = Lut::from_fn(sk.params().poly_size, 4, |m| (m + 1) % 4);
        let mut ws = sk.workspace();
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            let plain = sk.try_programmable_bootstrap(&ct, &lut).unwrap();
            // Reuse the same workspace across all messages — state left
            // over from one bootstrap must not leak into the next.
            let with_ws = sk
                .try_programmable_bootstrap_with(&ct, &lut, &mut ws)
                .unwrap();
            assert_eq!(with_ws, plain, "m={m}");
        }
    }

    #[test]
    fn exact_backend_agrees_with_fft_backend() {
        let mut rng = StdRng::seed_from_u64(81);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let sk_fft = ServerKey::with_backend(&ck, MulBackend::Fft, &mut rng);
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            assert_eq!(ck.decrypt(&sk_fft.bootstrap(&ct)), m);
        }
        for backend in [MulBackend::Exact, MulBackend::Ntt] {
            let mut rng2 = StdRng::seed_from_u64(81);
            let ck2 = ClientKey::generate(ParamSet::Test.params(), &mut rng2);
            let sk2 = ServerKey::with_backend(&ck2, backend, &mut rng2);
            for m in 0..4 {
                let ct = ck2.encrypt(m, &mut rng2);
                assert_eq!(ck2.decrypt(&sk2.bootstrap(&ct)), m, "{backend:?}");
            }
        }
    }

    #[test]
    fn gates_chain_through_many_levels() {
        // A small circuit: ((a NAND b) XOR c) OR (a AND c), evaluated
        // homomorphically and in the clear.
        let (ck, sk, mut rng) = setup(MulBackend::Fft);
        for bits in 0..8u32 {
            let (x, y, z) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let a = ck.encrypt_bool(x, &mut rng);
            let b = ck.encrypt_bool(y, &mut rng);
            let c = ck.encrypt_bool(z, &mut rng);
            let out = sk.or(&sk.xor(&sk.nand(&a, &b), &c), &sk.and(&a, &c));
            assert_eq!(
                ck.decrypt_bool(&out),
                (!(x && y) ^ z) || (x && z),
                "bits={bits}"
            );
        }
    }
}
