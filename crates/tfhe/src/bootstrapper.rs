//! The unified batch-bootstrap API surface: [`BatchRequest`] and the
//! [`Bootstrapper`] trait.
//!
//! Four bootstrap backends share this one operator interface — the
//! sequential [`ServerKey`] loop, the per-call scoped-thread
//! [`ParallelServerKey`] path, the persistent
//! [`BootstrapEngine`](crate::BootstrapEngine) pool, and the
//! dynamic-batching [`Dispatcher`](crate::dispatch::Dispatcher). Callers
//! describe *what* to bootstrap in a [`BatchRequest`] (ciphertexts, how
//! LUTs map onto them, an optional thread hint and deadline) and any
//! [`Bootstrapper`] decides *how*, the way single-kernel TFHE designs
//! define one configurable entry point.
//!
//! Requests come in three shapes: a **shared** LUT for every ciphertext,
//! **per-item** selectors (`lut_of[i]` names ciphertext `i`'s LUT), and a
//! **fanout** map (`fanout[i]` names *several* LUTs for ciphertext `i`,
//! all evaluated from one blind rotation via multi-value bootstrapping —
//! see [`ServerKey::try_programmable_bootstrap_many`]). Fanout outputs are
//! flattened in input order: first every output of ciphertext 0, then
//! every output of ciphertext 1, and so on.
//!
//! # Quickstart
//!
//! ```
//! use morphling_tfhe::{BatchRequest, Bootstrapper, ClientKey, Lut, ParamSet, ServerKey};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let params = ParamSet::Test.params();
//! let ck = ClientKey::generate(params.clone(), &mut rng);
//! let sk = ServerKey::new(&ck, &mut rng);
//! let lut = Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4);
//! let cts: Vec<_> = (0..3).map(|m| ck.encrypt(m, &mut rng)).collect();
//!
//! let req = BatchRequest::shared(cts, lut);
//! let out = sk.try_bootstrap_batch(&req).unwrap();
//! assert_eq!(ck.decrypt(&out[0]), 1);
//! ```

use std::sync::Arc;
use std::time::Instant;

use crate::batch;
use crate::error::TfheError;
use crate::keystore::TenantId;
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::server::ServerKey;

/// A self-describing batch-bootstrap request: the one argument every
/// [`Bootstrapper`] takes.
///
/// Built via [`BatchRequest::builder`] (the same consuming-builder idiom
/// as [`BootstrapEngineBuilder`](crate::BootstrapEngineBuilder)), or the
/// [`shared`](Self::shared) / [`per_item`](Self::per_item) shortcuts.
/// Construction validates the LUT/selector shape once, so every backend
/// can trust `lut_for` to be in range.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    cts: Vec<LweCiphertext>,
    luts: Vec<Lut>,
    lut_of: Option<Vec<usize>>,
    fanout: Option<Vec<Vec<usize>>>,
    threads: Option<usize>,
    deadline: Option<Instant>,
    tenant: Option<TenantId>,
}

impl BatchRequest {
    /// Start building a request.
    pub fn builder() -> BatchRequestBuilder {
        BatchRequestBuilder::new()
    }

    /// Every ciphertext through the same `lut` — the common case, and
    /// infallible (a single LUT needs no selectors).
    pub fn shared(cts: Vec<LweCiphertext>, lut: Lut) -> Self {
        Self {
            cts,
            luts: vec![lut],
            lut_of: None,
            fanout: None,
            threads: None,
            deadline: None,
            tenant: None,
        }
    }

    /// Every ciphertext through **all** of `luts` — the multi-value shape
    /// (`k` outputs per input for one blind rotation each).
    ///
    /// # Errors
    ///
    /// [`TfheError::NoLutProvided`] if `luts` is empty while ciphertexts
    /// are present.
    pub fn many(cts: Vec<LweCiphertext>, luts: Vec<Lut>) -> Result<Self, TfheError> {
        let all: Vec<usize> = (0..luts.len()).collect();
        let map = vec![all; cts.len()];
        Self::builder()
            .ciphertexts(cts)
            .luts(luts)
            .fanout(map)
            .build()
    }

    /// Ciphertext `i` through every LUT in `fanout[i]` — the general
    /// multi-value shape (e.g. a tree node comparing one feature against
    /// several thresholds at once).
    ///
    /// # Errors
    ///
    /// [`TfheError::FanoutLengthMismatch`], [`TfheError::EmptyFanout`],
    /// [`TfheError::LutIndexOutOfRange`], or [`TfheError::NoLutProvided`]
    /// on a malformed map.
    pub fn fanned_out(
        cts: Vec<LweCiphertext>,
        luts: Vec<Lut>,
        fanout: Vec<Vec<usize>>,
    ) -> Result<Self, TfheError> {
        Self::builder()
            .ciphertexts(cts)
            .luts(luts)
            .fanout(fanout)
            .build()
    }

    /// Ciphertext `i` through `luts[lut_of[i]]` — the shape mixed
    /// workloads produce (e.g. a tree evaluator comparing against several
    /// thresholds in one wave).
    ///
    /// # Errors
    ///
    /// [`TfheError::LutSelectorLengthMismatch`] if
    /// `lut_of.len() != cts.len()`, [`TfheError::LutIndexOutOfRange`] if a
    /// selector references a missing LUT, [`TfheError::NoLutProvided`] if
    /// `luts` is empty while ciphertexts are present.
    pub fn per_item(
        cts: Vec<LweCiphertext>,
        luts: Vec<Lut>,
        lut_of: Vec<usize>,
    ) -> Result<Self, TfheError> {
        Self::builder()
            .ciphertexts(cts)
            .luts(luts)
            .selectors(lut_of)
            .build()
    }

    /// The ciphertexts to bootstrap, in order.
    pub fn ciphertexts(&self) -> &[LweCiphertext] {
        &self.cts
    }

    /// The LUT table (one entry in the shared-LUT case).
    pub fn luts(&self) -> &[Lut] {
        &self.luts
    }

    /// Per-item LUT selectors, if this is a multi-LUT request.
    pub fn selectors(&self) -> Option<&[usize]> {
        self.lut_of.as_deref()
    }

    /// The fanout map, if this is a multi-value request: `fanout()[i]`
    /// lists the LUT indices ciphertext `i` is evaluated through.
    pub fn fanout(&self) -> Option<&[Vec<usize>]> {
        self.fanout.as_deref()
    }

    /// Number of output ciphertexts input `i` produces (1 unless this is
    /// a fanout request).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn output_count(&self, i: usize) -> usize {
        match &self.fanout {
            Some(map) => map[i].len(),
            None => {
                debug_assert!(i < self.cts.len());
                1
            }
        }
    }

    /// Total number of output ciphertexts the request produces
    /// (`Σ output_count(i)`; equals [`len`](Self::len) unless this is a
    /// fanout request).
    pub fn output_len(&self) -> usize {
        match &self.fanout {
            Some(map) => map.iter().map(Vec::len).sum(),
            None => self.cts.len(),
        }
    }

    /// The LUTs ciphertext `i` goes through, in output order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn luts_for(&self, i: usize) -> Vec<&Lut> {
        match &self.fanout {
            Some(map) => map[i].iter().map(|&j| &self.luts[j]).collect(),
            None => vec![self.lut_for(i)],
        }
    }

    /// The LUT ciphertext `i` goes through.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` — construction already guaranteed
    /// every in-range selector resolves.
    pub fn lut_for(&self, i: usize) -> &Lut {
        match &self.lut_of {
            Some(sel) => &self.luts[sel[i]],
            None => &self.luts[0],
        }
    }

    /// Thread-count hint for scoped-thread backends (advisory; pooled
    /// backends size themselves at construction and ignore it).
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Latest acceptable *start* time. Only deadline-aware backends (the
    /// dispatcher) act on it; immediate backends start right away and
    /// ignore it.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The tenant whose key material should serve this request, if any.
    /// Tenant-aware backends ([`KeyStoreBootstrapper`]
    /// (crate::KeyStoreBootstrapper)) resolve the key through their
    /// [`KeyStore`](crate::KeyStore); single-key backends ignore it.
    pub fn tenant(&self) -> Option<TenantId> {
        self.tenant
    }

    /// Attach a tenant to an already-built request (key-affinity routing).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Number of ciphertexts in the batch.
    pub fn len(&self) -> usize {
        self.cts.len()
    }

    /// Whether the batch is empty (every backend maps it to `Ok(vec![])`).
    pub fn is_empty(&self) -> bool {
        self.cts.is_empty()
    }
}

/// Builder for [`BatchRequest`], mirroring
/// [`BootstrapEngineBuilder`](crate::BootstrapEngineBuilder)'s consuming
/// style.
#[derive(Clone, Debug, Default)]
pub struct BatchRequestBuilder {
    cts: Vec<LweCiphertext>,
    luts: Vec<Lut>,
    lut_of: Option<Vec<usize>>,
    fanout: Option<Vec<Vec<usize>>>,
    threads: Option<usize>,
    deadline: Option<Instant>,
    tenant: Option<TenantId>,
}

impl BatchRequestBuilder {
    /// An empty request: no ciphertexts, no LUTs.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ciphertexts to bootstrap, in order.
    pub fn ciphertexts(mut self, cts: Vec<LweCiphertext>) -> Self {
        self.cts = cts;
        self
    }

    /// A single LUT shared by every ciphertext (replaces any previously
    /// set LUT table).
    pub fn lut(mut self, lut: Lut) -> Self {
        self.luts = vec![lut];
        self
    }

    /// A LUT table for per-item selection (pair with
    /// [`selectors`](Self::selectors)).
    pub fn luts(mut self, luts: Vec<Lut>) -> Self {
        self.luts = luts;
        self
    }

    /// Per-item LUT selectors: ciphertext `i` goes through
    /// `luts[lut_of[i]]`.
    pub fn selectors(mut self, lut_of: Vec<usize>) -> Self {
        self.lut_of = Some(lut_of);
        self
    }

    /// A fanout map: ciphertext `i` goes through **every** LUT in
    /// `fanout[i]` (multi-value bootstrapping — one blind rotation per
    /// input, one output per listed LUT). Mutually exclusive with
    /// [`selectors`](Self::selectors).
    pub fn fanout(mut self, fanout: Vec<Vec<usize>>) -> Self {
        self.fanout = Some(fanout);
        self
    }

    /// Thread-count hint for scoped-thread backends.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Latest acceptable start time (see [`BatchRequest::deadline`]).
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The tenant whose key serves this request (see
    /// [`BatchRequest::tenant`]).
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Validate the LUT/selector shape and produce the request.
    ///
    /// # Errors
    ///
    /// [`TfheError::NoLutProvided`] if there are ciphertexts but no LUT;
    /// [`TfheError::FanoutSelectorConflict`] if both selectors and a
    /// fanout map were supplied; [`TfheError::FanoutLengthMismatch`] /
    /// [`TfheError::EmptyFanout`] on a malformed fanout map;
    /// [`TfheError::LutSelectorLengthMismatch`] if selectors are present
    /// with the wrong length, or absent while more than one LUT was
    /// supplied (ambiguous); [`TfheError::LutIndexOutOfRange`] if a
    /// selector or fanout entry references a missing LUT.
    pub fn build(self) -> Result<BatchRequest, TfheError> {
        if !self.cts.is_empty() && self.luts.is_empty() {
            return Err(TfheError::NoLutProvided);
        }
        if self.lut_of.is_some() && self.fanout.is_some() {
            return Err(TfheError::FanoutSelectorConflict);
        }
        if let Some(map) = &self.fanout {
            if map.len() != self.cts.len() {
                return Err(TfheError::FanoutLengthMismatch {
                    expected: self.cts.len(),
                    got: map.len(),
                });
            }
            for (input, list) in map.iter().enumerate() {
                if list.is_empty() {
                    return Err(TfheError::EmptyFanout { input });
                }
                for &s in list {
                    if s >= self.luts.len() {
                        return Err(TfheError::LutIndexOutOfRange {
                            index: s,
                            luts: self.luts.len(),
                        });
                    }
                }
            }
        } else {
            match &self.lut_of {
                Some(sel) => {
                    if sel.len() != self.cts.len() {
                        return Err(TfheError::LutSelectorLengthMismatch {
                            expected: self.cts.len(),
                            got: sel.len(),
                        });
                    }
                    for &s in sel {
                        if s >= self.luts.len() {
                            return Err(TfheError::LutIndexOutOfRange {
                                index: s,
                                luts: self.luts.len(),
                            });
                        }
                    }
                }
                None => {
                    if self.luts.len() > 1 {
                        // More than one LUT with no selectors is ambiguous —
                        // surfaced as a zero-length selector mismatch.
                        return Err(TfheError::LutSelectorLengthMismatch {
                            expected: self.cts.len(),
                            got: 0,
                        });
                    }
                }
            }
        }
        Ok(BatchRequest {
            cts: self.cts,
            luts: self.luts,
            lut_of: self.lut_of,
            fanout: self.fanout,
            threads: self.threads,
            deadline: self.deadline,
            tenant: self.tenant,
        })
    }
}

/// The canonical batch-bootstrap entry point, implemented by every
/// backend in the crate:
///
/// | backend | strategy |
/// |---|---|
/// | [`ServerKey`] | sequential, one reused workspace |
/// | [`ParallelServerKey`] | per-call scoped threads, chunked |
/// | [`BootstrapEngine`](crate::BootstrapEngine) | persistent self-healing pool |
/// | [`Dispatcher`](crate::dispatch::Dispatcher) | dynamic micro-batching front-end |
/// | [`FailoverBootstrapper`](crate::resilience::FailoverBootstrapper) | breaker-guarded tier stack, degraded-mode failover |
///
/// All implementations return results in input order, bit-identical to
/// the sequential [`ServerKey`] path, so backends are swappable anywhere
/// that is generic over `B: Bootstrapper + ?Sized`.
pub trait Bootstrapper {
    /// Bootstrap every ciphertext in `req` through its LUT, in input
    /// order.
    ///
    /// # Errors
    ///
    /// Validation errors ([`TfheError::LweDimensionMismatch`],
    /// [`TfheError::LutSizeMismatch`], …) on malformed requests, plus
    /// whatever execution errors the backend can produce (engine:
    /// [`TfheError::WorkerPanicked`] / [`TfheError::JobTimedOut`];
    /// dispatcher: [`TfheError::DeadlineExceeded`] /
    /// [`TfheError::DispatcherShutDown`]; …).
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError>;
}

impl<B: Bootstrapper + ?Sized> Bootstrapper for &B {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        (**self).try_bootstrap_batch(req)
    }
}

impl<B: Bootstrapper + ?Sized> Bootstrapper for Arc<B> {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        (**self).try_bootstrap_batch(req)
    }
}

impl ServerKey {
    /// Check every ciphertext and every LUT in `req` against this key's
    /// parameters (shared by all backends).
    pub(crate) fn validate_request(&self, req: &BatchRequest) -> Result<(), TfheError> {
        for ct in req.ciphertexts() {
            if ct.dim() != self.params().lwe_dim {
                return Err(TfheError::LweDimensionMismatch {
                    expected: self.params().lwe_dim,
                    got: ct.dim(),
                });
            }
        }
        for lut in req.luts() {
            if lut.polynomial().len() != self.params().poly_size {
                return Err(TfheError::LutSizeMismatch {
                    lut: lut.polynomial().len(),
                    poly_size: self.params().poly_size,
                });
            }
        }
        Ok(())
    }
}

/// The single-core CPU baseline: one bootstrap after another through a
/// single reused [`BootstrapWorkspace`](crate::BootstrapWorkspace) — zero
/// steady-state allocations, deterministic order. On the FFT backends,
/// non-fanout batches run their blind rotations in lockstep: every CMUX
/// step forward-transforms the whole wave's digit polynomials as one
/// batched SoA pass (bit-identical to the per-item loop — see
/// [`blind_rotate_assign_many`](crate::bootstrap::blind_rotate_assign_many)).
impl Bootstrapper for ServerKey {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        if req.is_empty() {
            return Ok(Vec::new());
        }
        self.validate_request(req)?;
        let mut ws = self.workspace();
        let mut out = Vec::with_capacity(req.output_len());
        match req.fanout() {
            Some(map) => {
                for (ct, indices) in req.ciphertexts().iter().zip(map) {
                    let luts: Vec<&Lut> = indices.iter().map(|&j| &req.luts()[j]).collect();
                    out.extend(self.try_bootstrap_many_refs(ct, &luts, &mut ws)?);
                }
            }
            None => match self.backend() {
                crate::MulBackend::Fft | crate::MulBackend::FftPlain => {
                    let items: Vec<(&LweCiphertext, &Lut)> = req
                        .ciphertexts()
                        .iter()
                        .enumerate()
                        .map(|(i, ct)| (ct, req.lut_for(i)))
                        .collect();
                    out.extend(self.try_bootstrap_wave_lockstep(&items, &mut ws)?);
                }
                _ => {
                    for (i, ct) in req.ciphertexts().iter().enumerate() {
                        out.push(self.try_programmable_bootstrap_with(
                            ct,
                            req.lut_for(i),
                            &mut ws,
                        )?);
                    }
                }
            },
        }
        Ok(out)
    }
}

/// The per-call scoped-thread backend: splits each request into
/// contiguous chunks across `threads` OS threads (spawned and joined
/// every call — for a stream of batches prefer the pooled
/// [`BootstrapEngine`](crate::BootstrapEngine)).
///
/// A request's [`threads`](BatchRequest::threads) hint overrides the
/// default set here.
#[derive(Clone, Debug)]
pub struct ParallelServerKey {
    server: Arc<ServerKey>,
    threads: usize,
}

impl ParallelServerKey {
    /// Wrap `server` with a default thread count.
    ///
    /// # Errors
    ///
    /// [`TfheError::ZeroThreads`] if `threads == 0`.
    pub fn new(server: Arc<ServerKey>, threads: usize) -> Result<Self, TfheError> {
        if threads == 0 {
            return Err(TfheError::ZeroThreads);
        }
        Ok(Self { server, threads })
    }

    /// The wrapped server key.
    pub fn server(&self) -> &Arc<ServerKey> {
        &self.server
    }

    /// The default thread count (overridable per request).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Bootstrapper for ParallelServerKey {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        let threads = req.threads().unwrap_or(self.threads);
        batch::bootstrap_scoped_parallel(&self.server, req, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (ClientKey, ServerKey, Lut, Vec<LweCiphertext>) {
        let mut rng = StdRng::seed_from_u64(9000);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4);
        let cts: Vec<_> = (0..5).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        (ck, sk, lut, cts)
    }

    #[test]
    fn builder_validates_selector_length() {
        let (_, _, lut, cts) = fixture();
        let n = cts.len();
        let err = BatchRequest::builder()
            .ciphertexts(cts)
            .luts(vec![lut.clone(), lut])
            .selectors(vec![0])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TfheError::LutSelectorLengthMismatch {
                expected: n,
                got: 1
            }
        );
    }

    #[test]
    fn builder_rejects_missing_lut_and_bad_index() {
        let (_, _, lut, cts) = fixture();
        let err = BatchRequest::builder()
            .ciphertexts(cts.clone())
            .build()
            .unwrap_err();
        assert_eq!(err, TfheError::NoLutProvided);

        let err = BatchRequest::per_item(cts.clone(), vec![lut.clone()], vec![0, 0, 0, 0, 7])
            .unwrap_err();
        assert_eq!(err, TfheError::LutIndexOutOfRange { index: 7, luts: 1 });

        // Several LUTs with no selectors is ambiguous.
        let err = BatchRequest::builder()
            .ciphertexts(cts)
            .luts(vec![lut.clone(), lut])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            TfheError::LutSelectorLengthMismatch { got: 0, .. }
        ));
    }

    #[test]
    fn fanout_request_validates_shape() {
        let (_, _, lut, cts) = fixture();
        let n = cts.len();
        let err = BatchRequest::builder()
            .ciphertexts(cts.clone())
            .luts(vec![lut.clone()])
            .selectors(vec![0; n])
            .fanout(vec![vec![0]; n])
            .build()
            .unwrap_err();
        assert_eq!(err, TfheError::FanoutSelectorConflict);

        let err =
            BatchRequest::fanned_out(cts.clone(), vec![lut.clone()], vec![vec![0]; 3]).unwrap_err();
        assert_eq!(
            err,
            TfheError::FanoutLengthMismatch {
                expected: n,
                got: 3
            }
        );

        let mut map = vec![vec![0]; n];
        map[2].clear();
        let err = BatchRequest::fanned_out(cts.clone(), vec![lut.clone()], map).unwrap_err();
        assert_eq!(err, TfheError::EmptyFanout { input: 2 });

        let err = BatchRequest::fanned_out(cts, vec![lut], vec![vec![1]; n]).unwrap_err();
        assert_eq!(err, TfheError::LutIndexOutOfRange { index: 1, luts: 1 });
    }

    #[test]
    fn fanout_batch_matches_bootstrap_many_per_input() {
        let (ck, sk, _, cts) = fixture();
        let poly = sk.params().poly_size;
        let luts = vec![
            Lut::identity(poly, 4),
            Lut::from_fn(poly, 4, |m| (m + 1) % 4),
            Lut::from_fn(poly, 4, |m| (3 * m) % 4),
        ];
        let req = BatchRequest::many(cts.clone(), luts.clone()).unwrap();
        assert_eq!(req.output_len(), cts.len() * luts.len());
        assert_eq!(req.output_count(0), luts.len());
        assert_eq!(req.luts_for(1).len(), luts.len());
        let out = sk.try_bootstrap_batch(&req).unwrap();
        assert_eq!(out.len(), cts.len() * luts.len());
        let funcs: [fn(u64) -> u64; 3] = [|m| m, |m| (m + 1) % 4, |m| (3 * m) % 4];
        for (i, ct) in cts.iter().enumerate() {
            let want = sk.try_programmable_bootstrap_many(ct, &luts).unwrap();
            assert_eq!(
                &out[i * luts.len()..(i + 1) * luts.len()],
                want.as_slice(),
                "input {i}"
            );
            let m = i as u64 % 4;
            for (j, f) in funcs.iter().enumerate() {
                assert_eq!(ck.decrypt(&out[i * luts.len() + j]), f(m), "i={i} j={j}");
            }
        }
    }

    #[test]
    fn empty_request_needs_no_lut() {
        let req = BatchRequest::builder().build().unwrap();
        assert!(req.is_empty());
        let (_, sk, _, _) = fixture();
        assert_eq!(sk.try_bootstrap_batch(&req).unwrap(), Vec::new());
    }

    #[test]
    fn server_key_backend_matches_plain_bootstrap() {
        let (ck, sk, lut, cts) = fixture();
        let req = BatchRequest::shared(cts.clone(), lut.clone());
        let out = sk.try_bootstrap_batch(&req).unwrap();
        assert_eq!(out.len(), cts.len());
        for (i, (ct, o)) in cts.iter().zip(&out).enumerate() {
            assert_eq!(o, &sk.programmable_bootstrap(ct, &lut), "i={i}");
            assert_eq!(ck.decrypt(o), ((i as u64 % 4) + 1) % 4);
        }
    }

    #[test]
    fn per_item_selects_the_right_lut() {
        let (ck, sk, _, cts) = fixture();
        let p = sk.params().clone();
        let plus1 = Lut::from_fn(p.poly_size, 4, |m| (m + 1) % 4);
        let double = Lut::from_fn(p.poly_size, 4, |m| (2 * m) % 4);
        let sel = vec![0, 1, 0, 1, 0];
        let req = BatchRequest::per_item(cts.clone(), vec![plus1, double], sel.clone()).unwrap();
        let out = sk.try_bootstrap_batch(&req).unwrap();
        for (i, o) in out.iter().enumerate() {
            let m = i as u64 % 4;
            let want = if sel[i] == 0 {
                (m + 1) % 4
            } else {
                (2 * m) % 4
            };
            assert_eq!(ck.decrypt(o), want, "i={i}");
        }
    }

    #[test]
    fn parallel_backend_matches_sequential_and_honors_hint() {
        let (_, sk, lut, cts) = fixture();
        let sk = Arc::new(sk);
        let par = ParallelServerKey::new(Arc::clone(&sk), 3).unwrap();
        let req = BatchRequest::shared(cts.clone(), lut.clone());
        let want = sk.try_bootstrap_batch(&req).unwrap();
        assert_eq!(par.try_bootstrap_batch(&req).unwrap(), want);

        // A request-level hint of 1 thread must still agree.
        let hinted = BatchRequest::builder()
            .ciphertexts(cts)
            .lut(lut)
            .threads(1)
            .build()
            .unwrap();
        assert_eq!(par.try_bootstrap_batch(&hinted).unwrap(), want);

        assert_eq!(
            ParallelServerKey::new(sk, 0).unwrap_err(),
            TfheError::ZeroThreads
        );
    }

    #[test]
    fn blanket_impls_forward() {
        let (_, sk, lut, cts) = fixture();
        let req = BatchRequest::shared(cts, lut);
        let want = sk.try_bootstrap_batch(&req).unwrap();
        let by_ref: &ServerKey = &sk;
        assert_eq!(by_ref.try_bootstrap_batch(&req).unwrap(), want);
        let arced: Arc<ServerKey> = Arc::new(sk);
        assert_eq!(arced.try_bootstrap_batch(&req).unwrap(), want);
        let dynamic: &dyn Bootstrapper = &arced;
        assert_eq!(dynamic.try_bootstrap_batch(&req).unwrap(), want);
    }

    #[test]
    fn validation_errors_surface() {
        let mut rng = StdRng::seed_from_u64(9001);
        let (_, sk, lut, _) = fixture();
        let mut small = ParamSet::Test.params();
        small.lwe_dim = 8;
        let other = ClientKey::generate(small, &mut rng);
        let bad = other.encrypt(0, &mut rng);
        let req = BatchRequest::shared(vec![bad], lut);
        assert!(matches!(
            sk.try_bootstrap_batch(&req),
            Err(TfheError::LweDimensionMismatch { .. })
        ));

        let (_, _, _, cts) = fixture();
        let wrong_lut = Lut::identity(64, 4);
        let req = BatchRequest::shared(cts, wrong_lut);
        assert!(matches!(
            sk.try_bootstrap_batch(&req),
            Err(TfheError::LutSizeMismatch { .. })
        ));
    }
}
