//! The four bootstrapping stages of Algorithm 1: modulus switching, blind
//! rotation, sample extraction (key switching lives in [`crate::ksk`]).

use morphling_math::{Polynomial, Torus32, TorusScalar};

use crate::bootstrap_key::BootstrapKey;
use crate::external_product::{cmux, ExternalProductEngine};
use crate::glwe::GlweCiphertext;
use crate::lwe::LweCiphertext;
use crate::params::TfheParams;
use crate::workspace::BootstrapWorkspace;

/// Modulus-switch an LWE ciphertext to modulus `2N`: every mask element and
/// the body are rescaled and rounded, `ã_i = ⌊2N·a_i⌉ mod 2N` (Algorithm 1
/// line 1). Returns `(ã, b̃)` as exponents for the blind rotation.
pub fn modulus_switch(ct: &LweCiphertext, two_n: u64) -> (Vec<u64>, u64) {
    let mask = ct.mask().iter().map(|a| a.mod_switch(two_n)).collect();
    (mask, ct.body().mod_switch(two_n))
}

/// Blind rotation (Algorithm 1 lines 2–4) through the transform-domain
/// engine: `n` sequential external products
/// `ACC ← BSK_i ⊡ (X^ã_i · ACC − ACC) + ACC`.
///
/// `acc` must already include the initial `X^(−b̃)` rotation of the test
/// polynomial.
pub fn blind_rotate(
    engine: &ExternalProductEngine,
    bsk: &BootstrapKey,
    mut acc: GlweCiphertext,
    mask_exponents: &[u64],
) -> GlweCiphertext {
    let mut ws = engine.workspace(acc.dim());
    blind_rotate_assign(engine, bsk, &mut acc, mask_exponents, &mut ws);
    acc
}

/// [`blind_rotate`] in place: rotates `acc` through caller-owned workspace
/// buffers. With a warm `ws` the whole rotation — `n` external products —
/// touches no allocator at all (the software analogue of the paper keeping
/// ACC resident in Private-A1 for the entire bootstrap).
///
/// # Panics
///
/// Panics if `mask_exponents`, `bsk`, `acc`, and `ws` disagree on shape.
pub fn blind_rotate_assign(
    engine: &ExternalProductEngine,
    bsk: &BootstrapKey,
    acc: &mut GlweCiphertext,
    mask_exponents: &[u64],
    ws: &mut BootstrapWorkspace,
) {
    assert_eq!(
        mask_exponents.len(),
        bsk.lwe_dim(),
        "mask length must equal the LWE dimension"
    );
    for (i, &a_tilde) in mask_exponents.iter().enumerate() {
        if a_tilde == 0 {
            // X^0 − 1 = 0: the external product would add an encryption of
            // zero. Hardware still spends the cycles; functionally a no-op.
            continue;
        }
        engine.rotate_cmux_into(bsk.fourier(i), acc, a_tilde as i64, ws);
    }
}

/// [`blind_rotate_assign`] for several independent accumulators sharing
/// one bootstrapping key, with the forward transforms of every request
/// run as **one lockstep SoA batch per CMUX step** — the software twin of
/// the paper's throughput mode, where coalesced bootstraps stream their
/// digit polynomials through the 2D VPE array together.
///
/// At step `i`, every request whose `ã_i` is nonzero decomposes its
/// `X^ã·ACC − ACC` operand; all active requests' digit rows then go
/// through a single batched forward transform before the per-request
/// MAC + inverse stages. Results are **bit-identical** to calling
/// [`blind_rotate_assign`] once per request: per lane the batch kernels
/// replay the scalar f64 schedule, and the merge-split pairing never
/// straddles a request boundary because the lockstep path only engages
/// when the per-request row count is even (or merge-split is off). When
/// the engine has batched transforms disabled, or pairing would straddle
/// a boundary, this transparently falls back to the per-request loop.
///
/// # Panics
///
/// Panics if `accs` and `masks` disagree in length, any mask length
/// differs from the BSK's LWE dimension, or any accumulator's shape
/// disagrees with `ws`.
pub fn blind_rotate_assign_many(
    engine: &ExternalProductEngine,
    bsk: &BootstrapKey,
    accs: &mut [GlweCiphertext],
    masks: &[Vec<u64>],
    ws: &mut BootstrapWorkspace,
) {
    assert_eq!(accs.len(), masks.len(), "one mask per accumulator required");
    let rows = ws.digit_polys.len();
    // Merge-split pairs digit rows (2t, 2t+1) within one request; an odd
    // row count would make lockstep pairs straddle request boundaries and
    // break bit-identity with the per-request schedule.
    let lockstep = accs.len() > 1
        && engine.batched_transforms()
        && (!engine.merge_split() || rows.is_multiple_of(2));
    if !lockstep {
        for (acc, mask) in accs.iter_mut().zip(masks) {
            blind_rotate_assign(engine, bsk, acc, mask, ws);
        }
        return;
    }
    for (acc, mask) in accs.iter().zip(masks) {
        assert_eq!(
            mask.len(),
            bsk.lwe_dim(),
            "mask length must equal the LWE dimension"
        );
        assert!(
            ws.fits(acc.dim(), acc.poly_size()),
            "workspace shape does not match the accumulator"
        );
    }
    let n = ws.poly_size();
    let mut active: Vec<usize> = Vec::with_capacity(accs.len());
    for i in 0..bsk.lwe_dim() {
        active.clear();
        active.extend(
            masks
                .iter()
                .enumerate()
                .filter(|(_, mask)| mask[i] != 0)
                .map(|(r, _)| r),
        );
        if active.is_empty() {
            continue;
        }
        // Stage 1: decompose every active request's Λ operand and scatter
        // its digit rows into the shared planar batch.
        ws.digit_batch.reshape(n, active.len() * rows);
        ws.spectra_batch.reshape(n, active.len() * rows);
        for (slot, &r) in active.iter().enumerate() {
            accs[r].monomial_mul_minus_one_into(masks[r][i] as i64, &mut ws.lambda);
            engine.decompose_lambda(ws);
            for (row, p) in ws.digit_polys.iter().enumerate() {
                ws.digit_batch.load_lane(slot * rows + row, p);
            }
        }
        // Stage 2: one lockstep forward transform over every active row.
        if engine.merge_split() {
            engine.fft().forward_pair_int_batch_into(
                &ws.digit_batch,
                &mut ws.spectra_batch,
                &mut ws.batch_scratch,
            );
        } else {
            engine
                .fft()
                .forward_int_batch_into(&ws.digit_batch, &mut ws.spectra_batch);
        }
        // Stage 3: per request, MAC against the BSK rows, inverse, and
        // fold the product into that request's accumulator.
        for (slot, &r) in active.iter().enumerate() {
            for (row, s) in ws.digit_spectra.iter_mut().enumerate() {
                ws.spectra_batch.store_lane(slot * rows + row, s);
            }
            engine.mac_and_inverse(bsk.fourier(i), ws);
            accs[r].add_assign_components(&ws.product);
        }
    }
}

/// Blind rotation through the exact integer-domain oracle (no FFT) — used
/// to validate the transform path.
pub fn blind_rotate_exact(
    params: &TfheParams,
    bsk: &BootstrapKey,
    mut acc: GlweCiphertext,
    mask_exponents: &[u64],
) -> GlweCiphertext {
    assert_eq!(
        mask_exponents.len(),
        bsk.lwe_dim(),
        "mask length must equal the LWE dimension"
    );
    for (i, &a_tilde) in mask_exponents.iter().enumerate() {
        if a_tilde == 0 {
            continue;
        }
        let rotated = acc.monomial_mul(a_tilde as i64);
        acc = cmux(bsk.coefficient(i), &acc, &rotated, params);
    }
    acc
}

/// Blind rotation through the exact NTT backend — O(N log N) like the FFT
/// path but with integer arithmetic throughout (no rounding at all).
pub fn blind_rotate_ntt(
    params: &TfheParams,
    bsk: &BootstrapKey,
    mut acc: GlweCiphertext,
    mask_exponents: &[u64],
    ntt: &morphling_transform::NegacyclicNtt,
) -> GlweCiphertext {
    assert_eq!(
        mask_exponents.len(),
        bsk.lwe_dim(),
        "mask length must equal the LWE dimension"
    );
    for (i, &a_tilde) in mask_exponents.iter().enumerate() {
        if a_tilde == 0 {
            continue;
        }
        let lambda = acc.monomial_mul_minus_one(a_tilde as i64);
        acc = acc.add(&crate::external_product::external_product_ntt(
            bsk.coefficient(i),
            &lambda,
            params,
            ntt,
        ));
    }
    acc
}

/// Sample extraction (Algorithm 1 line 5): read the constant coefficient of
/// the final accumulator as an LWE ciphertext under the extracted `k·N`
/// key. Pure data movement — "only memory access and data-regrouping"
/// (§II-B) — which is why the paper gives it to the VPU.
pub fn sample_extract(acc: &GlweCiphertext) -> LweCiphertext {
    let n = acc.poly_size();
    let mut mask = Vec::with_capacity(acc.dim() * n);
    for a in acc.masks() {
        mask.push(a[0]);
        // Extracting coefficient 0: mask entry j (j > 0) is −A_i[N−j]
        // because of the negacyclic wrap.
        for j in 1..n {
            mask.push(-a[n - j]);
        }
    }
    LweCiphertext::from_parts(mask, acc.body()[0])
}

/// Build the initial accumulator: the (pre-rotated) test polynomial as a
/// trivial GLWE, rotated by `X^(−b̃)`.
pub fn initial_accumulator(
    test_poly: &Polynomial<Torus32>,
    glwe_dim: usize,
    b_tilde: u64,
) -> GlweCiphertext {
    GlweCiphertext::trivial(test_poly.clone(), glwe_dim).monomial_mul(-(b_tilde as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{ClientKey, GlweSecretKey};
    use crate::params::ParamSet;
    use morphling_math::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modulus_switch_scales_correctly() {
        let ct = LweCiphertext::from_parts(
            vec![Torus32::from_f64(0.5), Torus32::from_f64(0.25)],
            Torus32::from_f64(0.75),
        );
        let (mask, body) = modulus_switch(&ct, 2048);
        assert_eq!(mask, vec![1024, 512]);
        assert_eq!(body, 1536);
    }

    #[test]
    fn sample_extract_phase_matches_glwe_constant_coefficient() {
        let mut rng = StdRng::seed_from_u64(60);
        let params = ParamSet::TestMedium.params();
        let glwe_key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        let msg = Polynomial::from_fn(params.poly_size, |j| Torus32::encode((j as u64) % 8, 16));
        let ct = GlweCiphertext::encrypt(&msg, &glwe_key, 0.0, &mut rng);
        let extracted = sample_extract(&ct);
        let lwe_key = glwe_key.to_extracted_lwe_key();
        assert_eq!(lwe_key.phase(&extracted), msg[0]);
    }

    #[test]
    fn sample_extract_after_rotation_reads_other_coefficients() {
        let mut rng = StdRng::seed_from_u64(61);
        let params = ParamSet::TestMedium.params();
        let glwe_key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        let msg = Polynomial::from_fn(params.poly_size, |j| Torus32::encode((j as u64) % 8, 16));
        let ct = GlweCiphertext::encrypt(&msg, &glwe_key, 0.0, &mut rng);
        let lwe_key = glwe_key.to_extracted_lwe_key();
        for shift in [1usize, 7, 100] {
            // X^(−shift)·ct brings coefficient `shift` to position 0.
            let rotated = ct.monomial_mul(-(shift as i64));
            let extracted = sample_extract(&rotated);
            assert_eq!(lwe_key.phase(&extracted), msg[shift], "shift={shift}");
        }
    }

    #[test]
    fn blind_rotate_rotates_by_the_masked_phase() {
        // With a noiseless setup, the blind rotation must land the
        // accumulator exactly on X^(Σ ã_i s_i − b̃) · TP ... i.e. rotating by
        // the negative phase.
        let mut rng = StdRng::seed_from_u64(62);
        let params = ParamSet::Test.params().noiseless();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let bsk = BootstrapKey::generate(&ck, &mut rng);
        let engine = ExternalProductEngine::new(&params);

        // A blocked test polynomial (block size N/4): coefficient j encodes
        // its block index. Blocks absorb the ± few-index modulus-switch
        // rounding error.
        let n = params.poly_size;
        let tp = Polynomial::from_fn(n, |j| Torus32::encode((j / (n / 4)) as u64, 8));

        // Encrypt the torus value 5/16 noiselessly: m̃ ≈ 2N·5/16 lands in
        // the middle of block 2.
        let mu = Torus32::from_f64(5.0 / 16.0);
        let ct = ck.encrypt_torus(mu, &mut rng);
        let (mask, b_tilde) = modulus_switch(&ct, params.two_n());
        let acc0 = initial_accumulator(&tp, params.glwe_dim, b_tilde);
        let acc = blind_rotate(&engine, &bsk, acc0, &mask);
        let extracted = sample_extract(&acc);
        let phase = ck.glwe_key().to_extracted_lwe_key().phase(&extracted);
        assert_eq!(phase.decode(8), 2);
    }

    #[test]
    fn blind_rotate_assign_is_bit_identical_to_allocating_chain() {
        let mut rng = StdRng::seed_from_u64(64);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let bsk = BootstrapKey::generate(&ck, &mut rng);
        let engine = ExternalProductEngine::new(&params);
        let tp = Polynomial::from_fn(params.poly_size, |j| Torus32::encode((j % 4) as u64, 8));
        let mask: Vec<u64> = (0..params.lwe_dim)
            .map(|_| sampling::uniform_torus::<Torus32, _>(&mut rng).mod_switch(params.two_n()))
            .collect();
        let acc0 = initial_accumulator(&tp, params.glwe_dim, 9);

        // Reference: the pre-workspace allocating chain, one fresh
        // ciphertext per step.
        let mut want = acc0.clone();
        for (i, &a_tilde) in mask.iter().enumerate() {
            if a_tilde == 0 {
                continue;
            }
            want = engine.rotate_cmux(bsk.fourier(i), &want, a_tilde as i64);
        }

        let mut acc = acc0.clone();
        let mut ws = engine.workspace(params.glwe_dim);
        blind_rotate_assign(&engine, &bsk, &mut acc, &mask, &mut ws);
        assert_eq!(acc, want);
        // And the wrapper delegates to the same path.
        assert_eq!(blind_rotate(&engine, &bsk, acc0, &mask), want);
    }

    #[test]
    fn blind_rotate_assign_many_is_bit_identical_to_sequential() {
        // Every engine configuration, k = 1 (even row count → lockstep
        // engages under merge-split) and k = 2 (odd row count → merge-split
        // falls back per-request): the many-rotation path must equal one
        // blind_rotate_assign per request bit for bit. Batch sizes cover
        // the degenerate 1 and an odd count.
        for set in [ParamSet::Test, ParamSet::TestMedium] {
            let mut rng = StdRng::seed_from_u64(65);
            let params = set.params();
            let ck = ClientKey::generate(params.clone(), &mut rng);
            let bsk = BootstrapKey::generate(&ck, &mut rng);
            let tp = Polynomial::from_fn(params.poly_size, |j| Torus32::encode((j % 4) as u64, 8));
            for batch_len in [1usize, 3, 4] {
                // Distinct masks per request, with a few zero exponents so
                // the active-lane gathering is exercised.
                let masks: Vec<Vec<u64>> = (0..batch_len)
                    .map(|_| {
                        (0..params.lwe_dim)
                            .map(|_| {
                                sampling::uniform_torus::<Torus32, _>(&mut rng)
                                    .mod_switch(params.two_n())
                                    & !3
                            })
                            .collect()
                    })
                    .collect();
                let accs0: Vec<GlweCiphertext> = (0..batch_len)
                    .map(|r| initial_accumulator(&tp, params.glwe_dim, 7 + r as u64))
                    .collect();
                for ms in [true, false] {
                    for batched in [true, false] {
                        let engine = ExternalProductEngine::new(&params)
                            .with_merge_split(ms)
                            .with_batched_transforms(batched);
                        let mut ws = engine.workspace(params.glwe_dim);
                        let want: Vec<GlweCiphertext> = accs0
                            .iter()
                            .zip(&masks)
                            .map(|(acc, mask)| {
                                let mut acc = acc.clone();
                                blind_rotate_assign(&engine, &bsk, &mut acc, mask, &mut ws);
                                acc
                            })
                            .collect();
                        let mut accs = accs0.clone();
                        blind_rotate_assign_many(&engine, &bsk, &mut accs, &masks, &mut ws);
                        assert_eq!(
                            accs, want,
                            "set={set:?} batch_len={batch_len} ms={ms} batched={batched}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_and_fft_blind_rotation_agree() {
        let mut rng = StdRng::seed_from_u64(63);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let bsk = BootstrapKey::generate(&ck, &mut rng);
        let engine = ExternalProductEngine::new(&params);
        let tp = Polynomial::from_fn(params.poly_size, |j| Torus32::encode((j % 4) as u64, 8));
        let mask: Vec<u64> = (0..params.lwe_dim)
            .map(|_| sampling::uniform_torus::<Torus32, _>(&mut rng).mod_switch(params.two_n()))
            .collect();
        let acc0 = initial_accumulator(&tp, params.glwe_dim, 17);
        let fft_acc = blind_rotate(&engine, &bsk, acc0.clone(), &mask);
        let exact_acc = blind_rotate_exact(&params, &bsk, acc0, &mask);
        // Both are valid encryptions of the same thing; compare phases
        // after decryption (they decode identically on the p=8 grid).
        let pf = ck.glwe_key().phase(&fft_acc);
        let pe = ck.glwe_key().phase(&exact_acc);
        for j in 0..params.poly_size {
            assert_eq!(pf[j].decode(8), pe[j].decode(8), "j={j}");
        }
    }
}
