//! A persistent bootstrap engine: the software analogue of Morphling's
//! always-resident bootstrapping cores.
//!
//! [`ServerKey::batch_bootstrap_parallel`] spawns a fresh set of OS
//! threads for every call — fine for one large batch, wasteful for the
//! steady stream of medium batches that inference workloads produce
//! (thread spawn/join plus first-touch transform setup on every call).
//! [`BootstrapEngine`] instead spawns its worker pool **once** and feeds
//! it through a channel:
//!
//! - workers hold an `Arc<ServerKey>` and stay warm for the engine's
//!   lifetime, sharing the process-global transform caches (one FFT per
//!   polynomial size for the whole pool, the way Morphling banks one set
//!   of twiddles for all 16 cores);
//! - a batch is split into contiguous chunks, each chunk is bootstrapped
//!   into a chunk-owned output vector, and the chunks are reassembled in
//!   index order — no per-slot locks anywhere on the result path;
//! - every job is timed, and the engine exposes the totals as
//!   [`EngineStats`] so benches and the CPU cost model can calibrate from
//!   real measurements.
//!
//! The API is `Result`-based from day one: all submission paths validate
//! eagerly and return [`TfheError`] instead of panicking.
//!
//! ```
//! use std::sync::Arc;
//! use morphling_tfhe::{BootstrapEngine, ClientKey, Lut, ParamSet, ServerKey};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(9);
//! let params = ParamSet::Test.params();
//! let client = ClientKey::generate(params.clone(), &mut rng);
//! let server = Arc::new(ServerKey::builder().build(&client, &mut rng));
//!
//! let engine = BootstrapEngine::builder().workers(2).build(Arc::clone(&server)).unwrap();
//! let lut = Lut::identity(params.poly_size, 4);
//! let cts: Vec<_> = (0..4).map(|m| client.encrypt(m, &mut rng)).collect();
//! let out = engine.bootstrap_batch(&cts, &lut).unwrap();
//! for (m, ct) in out.iter().enumerate() {
//!     assert_eq!(client.decrypt(ct), m as u64);
//! }
//! assert_eq!(engine.stats().bootstraps, 4);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};

use crate::error::TfheError;
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::server::ServerKey;

/// Running totals across everything an engine has executed.
///
/// `busy` sums the wall time each worker spent inside jobs, so
/// `bootstraps / busy` is the **per-core** bootstrap rate — exactly the
/// `single_core_bs_s` input of the CPU cost model — while
/// `bootstraps / (busy / workers)` estimates pool throughput.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of worker threads in the pool.
    pub workers: usize,
    /// Batches submitted.
    pub batches: u64,
    /// Bootstraps completed.
    pub bootstraps: u64,
    /// Total worker time spent executing jobs (summed across workers).
    pub busy: Duration,
}

impl EngineStats {
    /// Mean wall time of one bootstrap on one core, if any completed.
    pub fn mean_bootstrap_time(&self) -> Option<Duration> {
        (self.bootstraps > 0).then(|| self.busy / self.bootstraps.max(1) as u32)
    }

    /// Single-core bootstrap rate (bootstraps per busy-second).
    pub fn bootstraps_per_core_sec(&self) -> f64 {
        let busy_s = self.busy.as_secs_f64();
        if busy_s > 0.0 {
            self.bootstraps as f64 / busy_s
        } else {
            0.0
        }
    }
}

/// One worker's execution of one job, stamped relative to the engine's
/// construction instant — the raw material for per-worker trace tracks
/// (`morphling-core`'s `trace` module converts a slice of these into a
/// Chrome-trace timeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpan {
    /// Index of the worker thread that ran the job.
    pub worker: usize,
    /// Job start, measured from engine construction.
    pub start: Duration,
    /// Time the worker spent inside the job.
    pub dur: Duration,
    /// Bootstraps the job completed.
    pub bootstraps: usize,
}

#[derive(Default)]
struct Counters {
    batches: AtomicU64,
    bootstraps: AtomicU64,
    busy_nanos: AtomicU64,
    /// Workers still inside their receive loop; 0 means the pool is dead
    /// (every worker exited or panicked) and submissions must fail fast.
    alive: AtomicUsize,
    /// Per-job execution spans (coarse-grained: one entry per chunk, so
    /// the mutex is uncontended relative to the bootstrap work itself).
    spans: Mutex<Vec<JobSpan>>,
}

/// Decrements the alive-worker count when a worker exits its loop — via
/// `Drop` so a panicking worker is counted out too.
struct AliveGuard(Arc<Counters>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.alive.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One contiguous chunk of a batch, self-contained: workers never borrow
/// from the submitting call's stack (the crate forbids `unsafe`, so no
/// lifetime laundering), they share the inputs via `Arc` and send owned
/// results back.
struct Job {
    cts: Arc<Vec<LweCiphertext>>,
    luts: Arc<Vec<Lut>>,
    /// `lut_of[i]` selects the LUT for ciphertext `i`; `None` means all
    /// ciphertexts use `luts[0]`.
    lut_of: Option<Arc<Vec<usize>>>,
    range: Range<usize>,
    reply: Sender<Chunk>,
}

struct Chunk {
    start: usize,
    result: Result<Vec<LweCiphertext>, TfheError>,
}

fn worker_loop(
    worker: usize,
    epoch: Instant,
    server: Arc<ServerKey>,
    rx: Receiver<Job>,
    counters: Arc<Counters>,
) {
    let _alive = AliveGuard(Arc::clone(&counters));
    while let Ok(job) = rx.recv() {
        let t0 = Instant::now();
        let mut outs = Vec::with_capacity(job.range.len());
        let mut err = None;
        for i in job.range.clone() {
            let lut = match &job.lut_of {
                Some(sel) => &job.luts[sel[i]],
                None => &job.luts[0],
            };
            match server.try_programmable_bootstrap(&job.cts[i], lut) {
                Ok(out) => outs.push(out),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let dur = t0.elapsed();
        counters
            .busy_nanos
            .fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
        counters
            .bootstraps
            .fetch_add(outs.len() as u64, Ordering::Relaxed);
        if let Ok(mut spans) = counters.spans.lock() {
            spans.push(JobSpan {
                worker,
                start: t0.duration_since(epoch),
                dur,
                bootstraps: outs.len(),
            });
        }
        let result = match err {
            Some(e) => Err(e),
            None => Ok(outs),
        };
        // The submitter may have bailed early; a closed reply channel is
        // not the worker's problem.
        let _ = job.reply.send(Chunk {
            start: job.range.start,
            result,
        });
    }
}

/// Configures a [`BootstrapEngine`].
#[derive(Clone, Copy, Debug, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct BootstrapEngineBuilder {
    workers: Option<usize>,
    chunk_size: Option<usize>,
}

impl BootstrapEngineBuilder {
    /// Start from the defaults (one worker per available core, automatic
    /// chunking).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of worker threads. Defaults to
    /// `std::thread::available_parallelism()`.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Force a fixed chunk size (ciphertexts per job). By default the
    /// engine splits each batch into about two jobs per worker, which
    /// balances load without flooding the queue.
    pub fn chunk_size(mut self, n: usize) -> Self {
        self.chunk_size = Some(n.max(1));
        self
    }

    /// Spawn the worker pool.
    ///
    /// # Errors
    ///
    /// [`TfheError::ZeroThreads`] if `workers(0)` was requested.
    pub fn build(self, server: Arc<ServerKey>) -> Result<BootstrapEngine, TfheError> {
        let workers = match self.workers {
            Some(0) => return Err(TfheError::ZeroThreads),
            Some(n) => n,
            None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        };
        let (tx, rx) = channel::unbounded::<Job>();
        let counters = Arc::new(Counters::default());
        counters.alive.store(workers, Ordering::SeqCst);
        let epoch = Instant::now();
        let handles = (0..workers)
            .map(|i| {
                let server = Arc::clone(&server);
                let rx = rx.clone();
                let counters = Arc::clone(&counters);
                std::thread::Builder::new()
                    .name(format!("bootstrap-worker-{i}"))
                    .spawn(move || worker_loop(i, epoch, server, rx, counters))
                    .expect("spawn bootstrap worker")
            })
            .collect();
        Ok(BootstrapEngine {
            server,
            tx: Some(tx),
            handles,
            counters,
            chunk_size: self.chunk_size,
        })
    }
}

/// A persistent pool of bootstrap workers fed over a channel — spawn
/// once, submit many batches. See the [module docs](self) for rationale
/// and an example.
pub struct BootstrapEngine {
    server: Arc<ServerKey>,
    /// `Some` until drop; taken there to close the channel and stop the
    /// workers.
    tx: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    counters: Arc<Counters>,
    chunk_size: Option<usize>,
}

impl std::fmt::Debug for BootstrapEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootstrapEngine")
            .field("workers", &self.handles.len())
            .field("chunk_size", &self.chunk_size)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl BootstrapEngine {
    /// Configure worker count and chunking before spawning the pool.
    pub fn builder() -> BootstrapEngineBuilder {
        BootstrapEngineBuilder::new()
    }

    /// Spawn an engine with default settings (one worker per core).
    pub fn new(server: Arc<ServerKey>) -> Self {
        Self::builder()
            .build(server)
            .expect("default worker count is nonzero")
    }

    /// The shared server key the pool evaluates under.
    pub fn server(&self) -> &Arc<ServerKey> {
        &self.server
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Bootstrap a batch, every ciphertext through the same `lut`.
    /// Results are in input order and bit-identical to
    /// [`ServerKey::batch_bootstrap`].
    ///
    /// # Errors
    ///
    /// [`TfheError::LweDimensionMismatch`] / [`TfheError::LutSizeMismatch`]
    /// on malformed inputs, [`TfheError::EngineShutDown`] if the pool died.
    pub fn bootstrap_batch(
        &self,
        cts: &[LweCiphertext],
        lut: &Lut,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        self.submit(cts.to_vec(), vec![lut.clone()], None)
    }

    /// Bootstrap a batch where ciphertext `i` goes through
    /// `luts[lut_of[i]]` — the shape mixed workloads produce (e.g. a tree
    /// evaluator comparing against several thresholds in one wave).
    ///
    /// # Errors
    ///
    /// As [`bootstrap_batch`](Self::bootstrap_batch), plus
    /// [`TfheError::LutIndexOutOfRange`] if `lut_of` references a missing
    /// LUT, and [`TfheError::LutSelectorLengthMismatch`] if
    /// `lut_of.len() != cts.len()`.
    pub fn bootstrap_batch_multi(
        &self,
        cts: &[LweCiphertext],
        luts: &[Lut],
        lut_of: &[usize],
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        if lut_of.len() != cts.len() {
            return Err(TfheError::LutSelectorLengthMismatch {
                expected: cts.len(),
                got: lut_of.len(),
            });
        }
        for &sel in lut_of {
            if sel >= luts.len() {
                return Err(TfheError::LutIndexOutOfRange {
                    index: sel,
                    luts: luts.len(),
                });
            }
        }
        self.submit(cts.to_vec(), luts.to_vec(), Some(lut_of.to_vec()))
    }

    /// Totals since construction (or the last
    /// [`reset_stats`](Self::reset_stats)).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            workers: self.handles.len(),
            batches: self.counters.batches.load(Ordering::Relaxed),
            bootstraps: self.counters.bootstraps.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.counters.busy_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Zero the counters and the job journal (e.g. between bench warm-up
    /// and measurement).
    pub fn reset_stats(&self) {
        self.counters.batches.store(0, Ordering::Relaxed);
        self.counters.bootstraps.store(0, Ordering::Relaxed);
        self.counters.busy_nanos.store(0, Ordering::Relaxed);
        if let Ok(mut spans) = self.counters.spans.lock() {
            spans.clear();
        }
    }

    /// Snapshot of the per-worker job journal (one [`JobSpan`] per
    /// executed chunk) since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn job_spans(&self) -> Vec<JobSpan> {
        self.counters
            .spans
            .lock()
            .map(|s| s.clone())
            .unwrap_or_default()
    }

    /// Workers still running their receive loop. Drops to zero only if
    /// every worker exited (engine shut down, or the whole pool
    /// panicked).
    pub fn alive_workers(&self) -> usize {
        self.counters.alive.load(Ordering::SeqCst)
    }

    /// Gracefully stop the pool: close the job channel, join every
    /// worker. Subsequent submissions return
    /// [`TfheError::EngineShutDown`]. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            // A worker that panicked already surfaced as EngineShutDown to
            // any in-flight submitter; nothing useful in the payload here.
            let _ = handle.join();
        }
    }

    fn chunk_len(&self, n: usize) -> usize {
        match self.chunk_size {
            Some(c) => c,
            // About two jobs per worker: coarse enough that channel
            // traffic is negligible next to a bootstrap, fine enough
            // that a straggler chunk can't idle half the pool.
            None => n.div_ceil(self.handles.len() * 2).max(1),
        }
    }

    fn submit(
        &self,
        cts: Vec<LweCiphertext>,
        luts: Vec<Lut>,
        lut_of: Option<Vec<usize>>,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        let n = cts.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        // Fail fast on a dead pool: the channel may still accept sends
        // (queued jobs hold receiver clones), but with zero live workers
        // nothing would ever reply and the submitter would hang.
        let Some(tx) = self.tx.as_ref() else {
            return Err(TfheError::EngineShutDown);
        };
        if self.counters.alive.load(Ordering::SeqCst) == 0 {
            return Err(TfheError::EngineShutDown);
        }
        // Validate eagerly so errors surface here, not inside the pool.
        let params = self.server.params();
        for ct in &cts {
            if ct.dim() != params.lwe_dim {
                return Err(TfheError::LweDimensionMismatch {
                    expected: params.lwe_dim,
                    got: ct.dim(),
                });
            }
        }
        for lut in &luts {
            if lut.polynomial().len() != params.poly_size {
                return Err(TfheError::LutSizeMismatch {
                    lut: lut.polynomial().len(),
                    poly_size: params.poly_size,
                });
            }
        }

        let cts = Arc::new(cts);
        let luts = Arc::new(luts);
        let lut_of = lut_of.map(Arc::new);
        let chunk = self.chunk_len(n);
        // Count only batches that actually reach the pool — rejected
        // submissions must not inflate the calibration denominator.
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel::unbounded::<Chunk>();
        let mut jobs = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            let job = Job {
                cts: Arc::clone(&cts),
                luts: Arc::clone(&luts),
                lut_of: lut_of.clone(),
                range: start..end,
                reply: reply_tx.clone(),
            };
            tx.send(job).map_err(|_| TfheError::EngineShutDown)?;
            jobs += 1;
            start = end;
        }
        drop(reply_tx);

        let mut parts: Vec<(usize, Vec<LweCiphertext>)> = Vec::with_capacity(jobs);
        let mut first_err: Option<(usize, TfheError)> = None;
        for _ in 0..jobs {
            let chunk = reply_rx.recv().map_err(|_| TfheError::EngineShutDown)?;
            match chunk.result {
                Ok(outs) => parts.push((chunk.start, outs)),
                Err(e) => {
                    let replace = first_err.as_ref().is_none_or(|(s, _)| chunk.start < *s);
                    if replace {
                        first_err = Some((chunk.start, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        // Lock-free ordered assembly: chunks are disjoint contiguous
        // ranges, so sorting by start index and flattening restores input
        // order exactly.
        parts.sort_unstable_by_key(|(s, _)| *s);
        let out: Vec<LweCiphertext> = parts.into_iter().flat_map(|(_, outs)| outs).collect();
        debug_assert_eq!(out.len(), n);
        Ok(out)
    }
}

impl Drop for BootstrapEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (ClientKey, Arc<ServerKey>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
        (ck, sk, rng)
    }

    #[test]
    fn engine_matches_sequential_batch() {
        let (ck, sk, mut rng) = setup(700);
        let lut = Lut::from_fn(sk.params().poly_size, 4, |m| (m + 1) % 4);
        let cts: Vec<_> = (0..13).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let engine = BootstrapEngine::builder()
            .workers(3)
            .build(Arc::clone(&sk))
            .unwrap();
        let seq = sk.batch_bootstrap(&cts, &lut);
        let eng = engine.bootstrap_batch(&cts, &lut).unwrap();
        assert_eq!(seq, eng);
    }

    #[test]
    fn engine_survives_many_batches() {
        let (ck, sk, mut rng) = setup(701);
        let lut = Lut::identity(sk.params().poly_size, 4);
        let engine = BootstrapEngine::builder()
            .workers(2)
            .build(Arc::clone(&sk))
            .unwrap();
        for round in 0..4u64 {
            let cts: Vec<_> = (0..5)
                .map(|m| ck.encrypt((m + round) % 4, &mut rng))
                .collect();
            let out = engine.bootstrap_batch(&cts, &lut).unwrap();
            for (m, ct) in out.iter().enumerate() {
                assert_eq!(ck.decrypt(ct), (m as u64 + round) % 4, "round={round}");
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.bootstraps, 20);
        assert!(stats.busy > Duration::ZERO);
    }

    #[test]
    fn multi_lut_batches_route_each_ciphertext() {
        let (ck, sk, mut rng) = setup(702);
        let n = sk.params().poly_size;
        let luts = [
            Lut::identity(n, 4),
            Lut::from_fn(n, 4, |m| (m + 1) % 4),
            Lut::from_fn(n, 4, |m| 3 - m),
        ];
        let msgs = [0u64, 1, 2, 3, 2, 1];
        let lut_of = [0usize, 1, 2, 0, 1, 2];
        let cts: Vec<_> = msgs.iter().map(|&m| ck.encrypt(m, &mut rng)).collect();
        let engine = BootstrapEngine::builder()
            .workers(2)
            .build(Arc::clone(&sk))
            .unwrap();
        let out = engine.bootstrap_batch_multi(&cts, &luts, &lut_of).unwrap();
        let expect = |m: u64, sel: usize| match sel {
            0 => m,
            1 => (m + 1) % 4,
            _ => 3 - m,
        };
        for i in 0..msgs.len() {
            assert_eq!(ck.decrypt(&out[i]), expect(msgs[i], lut_of[i]), "i={i}");
        }
    }

    #[test]
    fn rejects_bad_inputs_eagerly() {
        let (ck, sk, mut rng) = setup(703);
        let engine = BootstrapEngine::builder()
            .workers(1)
            .build(Arc::clone(&sk))
            .unwrap();
        let good_lut = Lut::identity(sk.params().poly_size, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];

        let wrong_dim = crate::lwe::LweCiphertext::trivial(morphling_math::Torus32::ZERO, 3);
        assert!(matches!(
            engine.bootstrap_batch(&[wrong_dim], &good_lut),
            Err(TfheError::LweDimensionMismatch { .. })
        ));

        let wrong_lut = Lut::identity(sk.params().poly_size * 2, 4);
        assert!(matches!(
            engine.bootstrap_batch(&cts, &wrong_lut),
            Err(TfheError::LutSizeMismatch { .. })
        ));

        assert!(matches!(
            engine.bootstrap_batch_multi(&cts, std::slice::from_ref(&good_lut), &[1]),
            Err(TfheError::LutIndexOutOfRange { index: 1, luts: 1 })
        ));
        assert!(matches!(
            engine.bootstrap_batch_multi(&cts, &[good_lut], &[0, 0]),
            Err(TfheError::LutSelectorLengthMismatch {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn zero_workers_is_an_error_and_empty_batch_is_ok() {
        let (_ck, sk, _rng) = setup(704);
        assert_eq!(
            BootstrapEngine::builder()
                .workers(0)
                .build(Arc::clone(&sk))
                .err(),
            Some(TfheError::ZeroThreads)
        );
        let engine = BootstrapEngine::builder().workers(1).build(sk).unwrap();
        let lut = Lut::identity(engine.server().params().poly_size, 4);
        assert_eq!(engine.bootstrap_batch(&[], &lut).unwrap(), Vec::new());
    }

    #[test]
    fn rejected_batches_do_not_count_toward_stats() {
        let (ck, sk, mut rng) = setup(706);
        let engine = BootstrapEngine::builder()
            .workers(1)
            .build(Arc::clone(&sk))
            .unwrap();
        // Malformed submissions are rejected before dispatch.
        let wrong_lut = Lut::identity(sk.params().poly_size * 2, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];
        assert!(engine.bootstrap_batch(&cts, &wrong_lut).is_err());
        assert_eq!(engine.stats().batches, 0, "rejected batch was counted");
        // Empty batches never reach the pool either.
        let lut = Lut::identity(sk.params().poly_size, 4);
        assert!(engine.bootstrap_batch(&[], &lut).is_ok());
        assert_eq!(engine.stats().batches, 0, "empty batch was counted");
        // A dispatched batch counts exactly once.
        engine.bootstrap_batch(&cts, &lut).unwrap();
        assert_eq!(engine.stats().batches, 1);
    }

    #[test]
    fn dead_pool_is_detected_at_submit_time() {
        let (ck, sk, mut rng) = setup(707);
        let mut engine = BootstrapEngine::builder()
            .workers(2)
            .build(Arc::clone(&sk))
            .unwrap();
        let lut = Lut::identity(sk.params().poly_size, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];
        engine.bootstrap_batch(&cts, &lut).unwrap();
        assert_eq!(engine.alive_workers(), 2);
        engine.shutdown();
        assert_eq!(engine.alive_workers(), 0);
        // Submitting to the dead pool errors instead of hanging.
        assert_eq!(
            engine.bootstrap_batch(&cts, &lut).err(),
            Some(TfheError::EngineShutDown)
        );
        assert_eq!(engine.stats().batches, 1, "failed submit was counted");
        // Shutdown is idempotent.
        engine.shutdown();
    }

    #[test]
    fn job_spans_journal_every_chunk() {
        let (ck, sk, mut rng) = setup(708);
        let lut = Lut::identity(sk.params().poly_size, 4);
        let cts: Vec<_> = (0..6).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let engine = BootstrapEngine::builder()
            .workers(2)
            .chunk_size(2)
            .build(Arc::clone(&sk))
            .unwrap();
        engine.bootstrap_batch(&cts, &lut).unwrap();
        let spans = engine.job_spans();
        assert_eq!(spans.len(), 3, "one span per 2-ciphertext chunk");
        assert_eq!(spans.iter().map(|s| s.bootstraps).sum::<usize>(), 6);
        for s in &spans {
            assert!(s.worker < 2);
            assert!(s.dur > Duration::ZERO);
        }
        engine.reset_stats();
        assert!(engine.job_spans().is_empty());
    }

    #[test]
    fn forced_chunk_size_still_orders_results() {
        let (ck, sk, mut rng) = setup(705);
        let lut = Lut::identity(sk.params().poly_size, 4);
        let cts: Vec<_> = (0..7).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let engine = BootstrapEngine::builder()
            .workers(4)
            .chunk_size(2)
            .build(Arc::clone(&sk))
            .unwrap();
        let out = engine.bootstrap_batch(&cts, &lut).unwrap();
        assert_eq!(out, sk.batch_bootstrap(&cts, &lut));
    }
}
