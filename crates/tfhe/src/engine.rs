//! A persistent, self-healing bootstrap engine: the software analogue of
//! Morphling's always-resident bootstrapping cores, hardened for
//! production serving.
//!
//! The scoped-thread path ([`ParallelServerKey`](crate::ParallelServerKey))
//! spawns a fresh set of OS threads for every call — fine for one large
//! batch, wasteful for the steady stream of medium batches that inference
//! workloads produce. [`BootstrapEngine`] instead spawns its worker pool
//! **once** and feeds it through a channel:
//!
//! - workers hold an `Arc<ServerKey>` and stay warm for the engine's
//!   lifetime, sharing the process-global transform caches (one FFT per
//!   polynomial size for the whole pool, the way Morphling banks one set
//!   of twiddles for all 16 cores);
//! - a batch is split into contiguous chunks, each chunk is bootstrapped
//!   into a chunk-owned output vector, and the chunks are reassembled in
//!   index order — no per-slot locks anywhere on the result path;
//! - every job is timed, and the engine exposes the totals as
//!   [`EngineStats`] so benches and the CPU cost model can calibrate from
//!   real measurements.
//!
//! # Fault tolerance
//!
//! A serving pool must outlive its faults. The engine's recovery
//! machinery (all policies configurable on the builder):
//!
//! - **Panic isolation + respawn** — every job runs under
//!   `catch_unwind`; a panicking worker reports the failed chunk as
//!   [`TfheError::WorkerPanicked`] (so the submitter retries it
//!   elsewhere) and respawns its receive loop in place, bounded by a
//!   per-worker [respawn budget](BootstrapEngineBuilder::respawn_budget).
//!   A worker that exhausts the budget retires; the pool keeps serving on
//!   the remaining workers (degraded mode).
//! - **Watchdog** — with a [`job_timeout`](BootstrapEngineBuilder::job_timeout)
//!   configured, a chunk that produces no reply in time is presumed
//!   wedged and re-dispatched to another worker; a late reply from the
//!   original worker is deduplicated (bootstrapping is deterministic, so
//!   either copy is bit-identical).
//! - **Bounded retry with exponential backoff** — transient failures
//!   (panics, timeouts, failed output checks) are retried up to
//!   [`max_retries`](BootstrapEngineBuilder::max_retries) times with
//!   [`retry_backoff`](BootstrapEngineBuilder::retry_backoff) doubling
//!   per attempt. [`noise_adaptive_retries`](BootstrapEngineBuilder::noise_adaptive_retries)
//!   derives the budget from [`noise::failure_probability`](crate::noise).
//! - **Output sanity checks** — an optional
//!   [hook](BootstrapEngineBuilder::output_check) vets every output;
//!   failures are retried like any transient fault.
//! - **Degraded-mode serving** — [`EngineHealth`] (`Healthy` /
//!   `Degraded` / `Failed`), exposed via [`EngineStats`] and
//!   [`BootstrapEngine::health`], tells callers whether the pool is at
//!   full strength, serving on reduced capacity, or dead. Submissions
//!   fail fast with [`TfheError::EngineShutDown`] only at `Failed`.
//!
//! Every fault and recovery action is journaled as a [`FaultEvent`];
//! `morphling_core::trace` renders the journal (together with the
//! [`JobSpan`] timeline) as a Chrome-trace file, so a chaos run produces
//! a readable timeline of what failed and how the engine recovered.
//!
//! Deterministic fault *injection* for tests lives in [`crate::faults`];
//! a zero-rate [`FaultPlan`] (the default) makes every hook a no-op.
//!
//! The API is `Result`-based from day one: all submission paths validate
//! eagerly and return [`TfheError`] instead of panicking.
//!
//! ```
//! use std::sync::Arc;
//! use morphling_tfhe::{
//!     BatchRequest, BootstrapEngine, Bootstrapper, ClientKey, Lut, ParamSet, ServerKey,
//! };
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(9);
//! let params = ParamSet::Test.params();
//! let client = ClientKey::generate(params.clone(), &mut rng);
//! let server = Arc::new(ServerKey::builder().build(&client, &mut rng));
//!
//! let engine = BootstrapEngine::builder().workers(2).build(Arc::clone(&server)).unwrap();
//! let lut = Lut::identity(params.poly_size, 4);
//! let cts: Vec<_> = (0..4).map(|m| client.encrypt(m, &mut rng)).collect();
//! let out = engine.try_bootstrap_batch(&BatchRequest::shared(cts, lut)).unwrap();
//! for (m, ct) in out.iter().enumerate() {
//!     assert_eq!(client.decrypt(ct), m as u64);
//! }
//! assert_eq!(engine.stats().bootstraps, 4);
//! ```

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};

use crate::bootstrapper::{BatchRequest, Bootstrapper};
use crate::error::TfheError;
use crate::faults::{corrupt_ciphertext, fault_key, FaultInjector, FaultPlan, FaultSite};
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::params::TfheParams;
use crate::server::ServerKey;
use crate::workspace::BootstrapWorkspace;

/// Liveness-check period for the submit loop when no watchdog timeout is
/// configured: often enough that a dead pool is detected promptly, rare
/// enough to cost nothing.
const LIVENESS_TICK: Duration = Duration::from_millis(100);

/// The engine's serving state — the degraded-mode contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineHealth {
    /// Every spawned worker is alive; full throughput.
    #[default]
    Healthy,
    /// At least one worker retired (respawn budget exhausted) but the
    /// pool still serves on the survivors at reduced throughput.
    Degraded,
    /// No live workers (every worker retired, or the engine shut down);
    /// submissions fail fast with [`TfheError::EngineShutDown`].
    Failed,
}

impl EngineHealth {
    /// Short lower-case label for trace args and logs.
    pub fn label(self) -> &'static str {
        match self {
            EngineHealth::Healthy => "healthy",
            EngineHealth::Degraded => "degraded",
            EngineHealth::Failed => "failed",
        }
    }
}

/// A cloneable handle onto one engine's health, detached from the engine's
/// lifetime (see [`BootstrapEngine::health_handle`]). Computed from the
/// live-worker count alone: shutdown joins every worker, driving the count
/// to zero, so a dropped or shut-down engine reads
/// [`EngineHealth::Failed`] here too (with at most a join's worth of lag
/// versus [`BootstrapEngine::health`]).
#[derive(Clone)]
pub struct EngineHealthHandle {
    counters: Arc<Counters>,
    spawned: usize,
}

impl std::fmt::Debug for EngineHealthHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHealthHandle")
            .field("spawned", &self.spawned)
            .field("health", &self.health())
            .finish_non_exhaustive()
    }
}

impl EngineHealthHandle {
    /// The pool's current serving state.
    pub fn health(&self) -> EngineHealth {
        let alive = self.counters.alive.load(Ordering::SeqCst);
        if alive == 0 {
            EngineHealth::Failed
        } else if alive < self.spawned {
            EngineHealth::Degraded
        } else {
            EngineHealth::Healthy
        }
    }

    /// Workers still running their receive loop.
    pub fn alive_workers(&self) -> usize {
        self.counters.alive.load(Ordering::SeqCst)
    }
}

/// What happened in one fault/recovery incident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEventKind {
    /// A worker's job panicked (caught; the chunk was reported back as
    /// [`TfheError::WorkerPanicked`]).
    WorkerPanic,
    /// A panicked worker re-entered its receive loop (in-place respawn).
    WorkerRespawn,
    /// A worker exhausted its respawn budget and retired.
    RespawnExhausted,
    /// The watchdog declared a chunk wedged (no reply within the job
    /// timeout).
    WatchdogTimeout {
        /// Engine-wide batch sequence number.
        batch: u64,
        /// Batch-relative index of the chunk's first ciphertext.
        chunk_start: usize,
    },
    /// An output failed the sanity check.
    OutputCheckFailed {
        /// Batch-relative index of the offending ciphertext.
        index: usize,
    },
    /// A chunk was re-dispatched (after a panic, timeout, or failed
    /// check).
    Retry {
        /// Batch-relative index of the chunk's first ciphertext.
        chunk_start: usize,
        /// The attempt number of the re-dispatch (1 = first retry).
        attempt: u32,
    },
}

impl FaultEventKind {
    /// Short lower-case label for trace span names.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEventKind::WorkerPanic => "worker_panic",
            FaultEventKind::WorkerRespawn => "worker_respawn",
            FaultEventKind::RespawnExhausted => "respawn_exhausted",
            FaultEventKind::WatchdogTimeout { .. } => "watchdog_timeout",
            FaultEventKind::OutputCheckFailed { .. } => "output_check_failed",
            FaultEventKind::Retry { .. } => "retry",
        }
    }
}

/// One fault or recovery incident, stamped relative to the engine's
/// construction instant (the same epoch as [`JobSpan`], so the two
/// journals merge into one timeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the incident was recorded, measured from engine construction.
    pub at: Duration,
    /// The worker involved, if the incident is worker-local.
    pub worker: Option<usize>,
    /// What happened.
    pub kind: FaultEventKind,
}

/// Running totals across everything an engine has executed.
///
/// `busy` sums the wall time each worker spent inside jobs, so
/// `bootstraps / busy` is the **per-core** bootstrap rate — exactly the
/// `single_core_bs_s` input of the CPU cost model — while
/// `bootstraps / (busy / workers)` estimates pool throughput. The fault
/// counters summarize the engine's recovery history; `health` is the
/// degraded-mode state at the instant of the snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of worker threads in the pool (as spawned).
    pub workers: usize,
    /// Batches submitted.
    pub batches: u64,
    /// Bootstrap operations completed — one per input ciphertext. A
    /// fanout input counts once no matter how many LUTs it fans out to:
    /// this is the *blind rotation* denominator of the cost model.
    pub bootstraps: u64,
    /// Sample extractions performed — one per produced output. Exceeds
    /// `bootstraps` exactly when fanout batches amortize one rotation
    /// across several LUTs; the `extractions / bootstraps` ratio is the
    /// realized multi-value reuse factor.
    pub extractions: u64,
    /// Total worker time spent executing jobs (summed across workers).
    pub busy: Duration,
    /// Serving state at snapshot time.
    pub health: EngineHealth,
    /// Worker panics caught by the isolation boundary.
    pub panics: u64,
    /// In-place worker respawns after a caught panic.
    pub respawns: u64,
    /// Chunk re-dispatches (after panics, timeouts, or failed checks).
    pub retries: u64,
    /// Chunks the watchdog declared wedged.
    pub watchdog_timeouts: u64,
    /// Outputs rejected by the sanity-check hook.
    pub check_failures: u64,
}

impl EngineStats {
    /// Mean wall time of one bootstrap on one core, if any completed.
    pub fn mean_bootstrap_time(&self) -> Option<Duration> {
        // The count is u64: dividing through f64 avoids the truncating
        // `as u32` cast, which would silently shrink the divisor (and
        // inflate the mean) on any long-lived engine past 2³² bootstraps.
        (self.bootstraps > 0).then(|| self.busy.div_f64(self.bootstraps as f64))
    }

    /// Single-core bootstrap rate (bootstraps per busy-second).
    pub fn bootstraps_per_core_sec(&self) -> f64 {
        let busy_s = self.busy.as_secs_f64();
        if busy_s > 0.0 {
            self.bootstraps as f64 / busy_s
        } else {
            0.0
        }
    }
}

/// One worker's execution of one job, stamped relative to the engine's
/// construction instant — the raw material for per-worker trace tracks
/// (`morphling-core`'s `trace` module converts a slice of these into a
/// Chrome-trace timeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpan {
    /// Index of the worker thread that ran the job.
    pub worker: usize,
    /// Job start, measured from engine construction.
    pub start: Duration,
    /// Time the worker spent inside the job.
    pub dur: Duration,
    /// Bootstraps (input ciphertexts, = blind rotations) the job
    /// completed.
    pub bootstraps: usize,
    /// Sample extractions (outputs) the job produced; exceeds
    /// `bootstraps` for fanout jobs.
    pub extractions: usize,
}

#[derive(Default)]
struct Counters {
    batches: AtomicU64,
    bootstraps: AtomicU64,
    extractions: AtomicU64,
    busy_nanos: AtomicU64,
    panics: AtomicU64,
    respawns: AtomicU64,
    retries: AtomicU64,
    watchdog_timeouts: AtomicU64,
    check_failures: AtomicU64,
    /// Workers still inside their receive loop; 0 means the pool is dead
    /// (every worker retired or the engine shut down) and submissions
    /// must fail fast.
    alive: AtomicUsize,
    /// Per-job execution spans (coarse-grained: one entry per chunk, so
    /// the mutex is uncontended relative to the bootstrap work itself).
    spans: Mutex<Vec<JobSpan>>,
    /// Fault/recovery incident journal, same epoch as `spans`.
    events: Mutex<Vec<FaultEvent>>,
}

impl Counters {
    fn record(&self, epoch: Instant, worker: Option<usize>, kind: FaultEventKind) {
        if let Ok(mut events) = self.events.lock() {
            events.push(FaultEvent {
                at: epoch.elapsed(),
                worker,
                kind,
            });
        }
    }
}

/// Decrements the alive-worker count when a worker thread exits — via
/// `Drop` so even an unexpected unwind past the respawn loop is counted
/// out.
struct AliveGuard(Arc<Counters>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.alive.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One contiguous chunk of a batch, self-contained: workers never borrow
/// from the submitting call's stack (the crate forbids `unsafe`, so no
/// lifetime laundering), they share the inputs via `Arc` and send owned
/// results back.
struct Job {
    /// Engine-wide batch sequence number (fault-injection key component).
    batch: u64,
    /// Dispatch attempt (0 = first; retries re-roll injected faults).
    attempt: u32,
    cts: Arc<Vec<LweCiphertext>>,
    luts: Arc<Vec<Lut>>,
    /// `lut_of[i]` selects the LUT for ciphertext `i`; `None` means all
    /// ciphertexts use `luts[0]`.
    lut_of: Option<Arc<Vec<usize>>>,
    /// `fanout[i]` lists the LUT indices ciphertext `i` fans out to (one
    /// output per index, multi-value bootstrapped from a single
    /// rotation). Mutually exclusive with `lut_of`.
    fanout: Option<Arc<Vec<Vec<usize>>>>,
    range: Range<usize>,
    reply: Sender<Chunk>,
}

struct Chunk {
    start: usize,
    result: Result<Vec<LweCiphertext>, TfheError>,
}

/// State shared by every worker thread.
struct WorkerShared {
    server: Arc<ServerKey>,
    counters: Arc<Counters>,
    injector: FaultInjector,
    epoch: Instant,
}

/// Execute one job's bootstraps, with fault-injection hooks. Runs under
/// `catch_unwind`: an (injected or organic) panic unwinds out of here and
/// is handled by the caller. `ws` is the worker's long-lived
/// [`BootstrapWorkspace`], so a warm worker bootstraps allocation-free.
fn run_job(
    shared: &WorkerShared,
    job: &Job,
    ws: &mut BootstrapWorkspace,
) -> Result<Vec<LweCiphertext>, TfheError> {
    let injector = &shared.injector;
    let mut outs = Vec::with_capacity(job.range.len());
    for i in job.range.clone() {
        let key = fault_key(job.batch, i);
        if injector.fires(FaultSite::WorkerPanic, key, job.attempt) {
            panic!(
                "injected fault: worker panic (batch {} ct {i} attempt {})",
                job.batch, job.attempt
            );
        }
        if injector.fires(FaultSite::WedgedJob, key, job.attempt) {
            std::thread::sleep(injector.plan().wedge);
        }
        let corrupt = injector.fires(FaultSite::CorruptOutput, key, job.attempt);
        match &job.fanout {
            Some(map) => {
                // Multi-value path: one rotation, map[i].len() outputs.
                let luts: Vec<&Lut> = map[i].iter().map(|&j| &job.luts[j]).collect();
                let item = shared
                    .server
                    .try_bootstrap_many_refs(&job.cts[i], &luts, ws)?;
                outs.extend(item.into_iter().map(|out| {
                    if corrupt {
                        corrupt_ciphertext(&out)
                    } else {
                        out
                    }
                }));
            }
            None => {
                let lut = match &job.lut_of {
                    Some(sel) => &job.luts[sel[i]],
                    None => &job.luts[0],
                };
                let mut out =
                    shared
                        .server
                        .try_programmable_bootstrap_with(&job.cts[i], lut, ws)?;
                if corrupt {
                    out = corrupt_ciphertext(&out);
                }
                outs.push(out);
            }
        }
    }
    Ok(outs)
}

enum WorkerExit {
    /// The job channel closed: the engine is shutting down.
    ChannelClosed,
    /// A job panicked; the worker's state is suspect and the loop
    /// returned for a (budget-gated) respawn.
    Panicked,
}

fn worker_loop(
    worker: usize,
    shared: &WorkerShared,
    rx: &Receiver<Job>,
    ws: &mut BootstrapWorkspace,
) -> WorkerExit {
    while let Ok(job) = rx.recv() {
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(shared, &job, ws)));
        let dur = t0.elapsed();
        let counters = &shared.counters;
        counters
            .busy_nanos
            .fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
        match outcome {
            Ok(result) => {
                // `bootstraps` counts input ciphertexts (blind rotations);
                // `extractions` counts outputs. They differ only on
                // fanout jobs, where one rotation feeds several LUTs.
                let rotations = result.as_ref().map_or(0, |_| job.range.len());
                let extracted = result.as_ref().map_or(0, Vec::len);
                counters
                    .bootstraps
                    .fetch_add(rotations as u64, Ordering::Relaxed);
                counters
                    .extractions
                    .fetch_add(extracted as u64, Ordering::Relaxed);
                if let Ok(mut spans) = counters.spans.lock() {
                    spans.push(JobSpan {
                        worker,
                        start: t0.duration_since(shared.epoch),
                        dur,
                        bootstraps: rotations,
                        extractions: extracted,
                    });
                }
                // The submitter may have bailed early; a closed reply
                // channel is not the worker's problem.
                let _ = job.reply.send(Chunk {
                    start: job.range.start,
                    result,
                });
            }
            Err(_) => {
                counters.panics.fetch_add(1, Ordering::Relaxed);
                counters.record(shared.epoch, Some(worker), FaultEventKind::WorkerPanic);
                // Report the chunk as failed so the submitter can retry
                // it immediately (no reply is ever lost to a panic), then
                // hand control to the respawn loop.
                let _ = job.reply.send(Chunk {
                    start: job.range.start,
                    result: Err(TfheError::WorkerPanicked { worker }),
                });
                return WorkerExit::Panicked;
            }
        }
    }
    WorkerExit::ChannelClosed
}

/// Worker thread body: run the receive loop, respawning it in place
/// after each caught panic until the respawn budget is spent. An
/// in-place respawn (a fresh loop over the same channel) has the same
/// recovery semantics as replacing the OS thread — the worker holds no
/// job-local state across iterations — at a fraction of the cost.
fn worker_thread(worker: usize, shared: WorkerShared, rx: Receiver<Job>, respawn_budget: u32) {
    let _alive = AliveGuard(Arc::clone(&shared.counters));
    let mut respawns_left = respawn_budget;
    // One workspace for the worker's whole lifetime: after the first job
    // warms it, every later bootstrap runs allocation-free.
    let mut ws = shared.server.workspace();
    loop {
        match worker_loop(worker, &shared, &rx, &mut ws) {
            WorkerExit::ChannelClosed => break,
            WorkerExit::Panicked => {
                if respawns_left == 0 {
                    shared.counters.record(
                        shared.epoch,
                        Some(worker),
                        FaultEventKind::RespawnExhausted,
                    );
                    break;
                }
                respawns_left -= 1;
                shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .record(shared.epoch, Some(worker), FaultEventKind::WorkerRespawn);
                // The panic may have left the workspace mid-operation;
                // rebuild it so the respawned loop starts from clean state.
                ws = shared.server.workspace();
            }
        }
    }
}

/// Output sanity-check hook: `(batch-relative index, output) → accept?`.
pub type OutputCheck = Arc<dyn Fn(usize, &LweCiphertext) -> bool + Send + Sync>;

/// Configures a [`BootstrapEngine`].
#[derive(Clone, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct BootstrapEngineBuilder {
    workers: Option<usize>,
    chunk_size: Option<usize>,
    job_timeout: Option<Duration>,
    max_retries: Option<u32>,
    retry_backoff: Option<Duration>,
    respawn_budget: Option<u32>,
    fault_plan: FaultPlan,
    output_check: Option<OutputCheck>,
}

impl std::fmt::Debug for BootstrapEngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootstrapEngineBuilder")
            .field("workers", &self.workers)
            .field("chunk_size", &self.chunk_size)
            .field("job_timeout", &self.job_timeout)
            .field("max_retries", &self.max_retries)
            .field("retry_backoff", &self.retry_backoff)
            .field("respawn_budget", &self.respawn_budget)
            .field("fault_plan", &self.fault_plan)
            .field(
                "output_check",
                &self.output_check.as_ref().map(|_| "<hook>"),
            )
            .finish()
    }
}

impl BootstrapEngineBuilder {
    /// Default number of retries per chunk.
    pub const DEFAULT_MAX_RETRIES: u32 = 3;
    /// Default backoff before the first retry (doubles per attempt).
    pub const DEFAULT_RETRY_BACKOFF: Duration = Duration::from_micros(200);
    /// Default respawn budget per worker.
    pub const DEFAULT_RESPAWN_BUDGET: u32 = 2;

    /// Start from the defaults (one worker per available core, automatic
    /// chunking, no watchdog, 3 retries, 2 respawns per worker, no fault
    /// injection).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of worker threads. Defaults to
    /// `std::thread::available_parallelism()`.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Force a fixed chunk size (ciphertexts per job). By default the
    /// engine splits each batch into about two jobs per worker, which
    /// balances load without flooding the queue.
    pub fn chunk_size(mut self, n: usize) -> Self {
        self.chunk_size = Some(n.max(1));
        self
    }

    /// Watchdog timeout per job: a chunk with no reply within this window
    /// is presumed wedged and re-dispatched (up to the retry budget).
    /// Disabled by default — set it comfortably above the worst-case
    /// honest chunk time, or the watchdog will duplicate live work.
    pub fn job_timeout(mut self, timeout: Duration) -> Self {
        self.job_timeout = Some(timeout);
        self
    }

    /// Maximum re-dispatches per chunk after transient failures (panics,
    /// watchdog timeouts, failed output checks). Default
    /// [`Self::DEFAULT_MAX_RETRIES`].
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = Some(n);
        self
    }

    /// Derive the retry budget from the parameter set's predicted
    /// per-bootstrap failure probability
    /// ([`noise::failure_probability`](crate::noise::failure_probability)):
    /// enough retries that a noise-induced transient failure surviving
    /// all of them is rarer than 2⁻⁴⁰.
    pub fn noise_adaptive_retries(mut self, params: &TfheParams) -> Self {
        let p_fail = crate::noise::bootstrap_failure_probability(params);
        let budget = crate::faults::retry_budget_for(p_fail, 2f64.powi(-40));
        self.max_retries = Some(budget.clamp(1, 8));
        self
    }

    /// Backoff before the first retry; doubles on each subsequent attempt
    /// of the same chunk. Default [`Self::DEFAULT_RETRY_BACKOFF`].
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = Some(backoff);
        self
    }

    /// How many times one worker may respawn its receive loop after a
    /// caught panic before retiring. Default
    /// [`Self::DEFAULT_RESPAWN_BUDGET`].
    pub fn respawn_budget(mut self, n: u32) -> Self {
        self.respawn_budget = Some(n);
        self
    }

    /// Install a deterministic fault-injection plan (chaos testing). The
    /// default zero-rate plan injects nothing and costs nothing.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Install an output sanity check: called as `check(index, output)`
    /// for every bootstrap output (batch-relative index); returning
    /// `false` rejects the chunk and triggers a retry.
    pub fn output_check(
        mut self,
        check: impl Fn(usize, &LweCiphertext) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.output_check = Some(Arc::new(check));
        self
    }

    /// Spawn the worker pool.
    ///
    /// # Errors
    ///
    /// [`TfheError::ZeroThreads`] if `workers(0)` was requested.
    pub fn build(self, server: Arc<ServerKey>) -> Result<BootstrapEngine, TfheError> {
        let workers = match self.workers {
            Some(0) => return Err(TfheError::ZeroThreads),
            Some(n) => n,
            None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        };
        let (tx, rx) = channel::unbounded::<Job>();
        let counters = Arc::new(Counters::default());
        counters.alive.store(workers, Ordering::SeqCst);
        let epoch = Instant::now();
        let injector = FaultInjector::new(self.fault_plan);
        let respawn_budget = self.respawn_budget.unwrap_or(Self::DEFAULT_RESPAWN_BUDGET);
        let handles = (0..workers)
            .map(|i| {
                let shared = WorkerShared {
                    server: Arc::clone(&server),
                    counters: Arc::clone(&counters),
                    injector,
                    epoch,
                };
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("bootstrap-worker-{i}"))
                    .spawn(move || worker_thread(i, shared, rx, respawn_budget))
                    .expect("spawn bootstrap worker")
            })
            .collect();
        Ok(BootstrapEngine {
            server,
            tx: Some(tx),
            handles,
            spawned: workers,
            counters,
            epoch,
            chunk_size: self.chunk_size,
            job_timeout: self.job_timeout,
            max_retries: self.max_retries.unwrap_or(Self::DEFAULT_MAX_RETRIES),
            retry_backoff: self.retry_backoff.unwrap_or(Self::DEFAULT_RETRY_BACKOFF),
            output_check: self.output_check,
        })
    }
}

/// A persistent, self-healing pool of bootstrap workers fed over a
/// channel — spawn once, submit many batches. See the
/// [module docs](self) for the recovery machinery and an example.
pub struct BootstrapEngine {
    server: Arc<ServerKey>,
    /// `Some` until drop; taken there to close the channel and stop the
    /// workers.
    tx: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Workers spawned at construction (denominator for degraded-mode
    /// detection; `handles` is drained by shutdown).
    spawned: usize,
    counters: Arc<Counters>,
    epoch: Instant,
    chunk_size: Option<usize>,
    job_timeout: Option<Duration>,
    max_retries: u32,
    retry_backoff: Duration,
    output_check: Option<OutputCheck>,
}

impl std::fmt::Debug for BootstrapEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootstrapEngine")
            .field("workers", &self.spawned)
            .field("chunk_size", &self.chunk_size)
            .field("job_timeout", &self.job_timeout)
            .field("max_retries", &self.max_retries)
            .field("health", &self.health())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl BootstrapEngine {
    /// Configure worker count, chunking, and fault tolerance before
    /// spawning the pool.
    pub fn builder() -> BootstrapEngineBuilder {
        BootstrapEngineBuilder::new()
    }

    /// Spawn an engine with default settings (one worker per core).
    pub fn new(server: Arc<ServerKey>) -> Self {
        match Self::builder().build(server) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// The shared server key the pool evaluates under.
    pub fn server(&self) -> &Arc<ServerKey> {
        &self.server
    }

    /// Number of worker threads spawned at construction.
    pub fn workers(&self) -> usize {
        self.spawned
    }

    /// Totals since construction (or the last
    /// [`reset_stats`](Self::reset_stats)).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            workers: self.spawned,
            batches: self.counters.batches.load(Ordering::Relaxed),
            bootstraps: self.counters.bootstraps.load(Ordering::Relaxed),
            extractions: self.counters.extractions.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.counters.busy_nanos.load(Ordering::Relaxed)),
            health: self.health(),
            panics: self.counters.panics.load(Ordering::Relaxed),
            respawns: self.counters.respawns.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            watchdog_timeouts: self.counters.watchdog_timeouts.load(Ordering::Relaxed),
            check_failures: self.counters.check_failures.load(Ordering::Relaxed),
        }
    }

    /// The degraded-mode state machine: `Healthy` while every spawned
    /// worker is alive, `Degraded` once some (but not all) have retired,
    /// `Failed` when none remain or the engine has shut down.
    pub fn health(&self) -> EngineHealth {
        let alive = self.counters.alive.load(Ordering::SeqCst);
        if self.tx.is_none() || alive == 0 {
            EngineHealth::Failed
        } else if alive < self.spawned {
            EngineHealth::Degraded
        } else {
            EngineHealth::Healthy
        }
    }

    /// Zero the counters and the job/fault journals (e.g. between bench
    /// warm-up and measurement).
    pub fn reset_stats(&self) {
        self.counters.batches.store(0, Ordering::Relaxed);
        self.counters.bootstraps.store(0, Ordering::Relaxed);
        self.counters.extractions.store(0, Ordering::Relaxed);
        self.counters.busy_nanos.store(0, Ordering::Relaxed);
        self.counters.panics.store(0, Ordering::Relaxed);
        self.counters.respawns.store(0, Ordering::Relaxed);
        self.counters.retries.store(0, Ordering::Relaxed);
        self.counters.watchdog_timeouts.store(0, Ordering::Relaxed);
        self.counters.check_failures.store(0, Ordering::Relaxed);
        if let Ok(mut spans) = self.counters.spans.lock() {
            spans.clear();
        }
        if let Ok(mut events) = self.counters.events.lock() {
            events.clear();
        }
    }

    /// Snapshot of the per-worker job journal (one [`JobSpan`] per
    /// executed chunk) since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn job_spans(&self) -> Vec<JobSpan> {
        self.counters
            .spans
            .lock()
            .map(|s| s.clone())
            .unwrap_or_default()
    }

    /// Snapshot of the fault/recovery incident journal since construction
    /// or the last [`reset_stats`](Self::reset_stats).
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.counters
            .events
            .lock()
            .map(|e| e.clone())
            .unwrap_or_default()
    }

    /// Workers still running their receive loop. Drops below
    /// [`workers`](Self::workers) when a worker exhausts its respawn
    /// budget; zero means the pool is dead.
    pub fn alive_workers(&self) -> usize {
        self.counters.alive.load(Ordering::SeqCst)
    }

    /// A cloneable, engine-independent handle reporting this pool's
    /// [`EngineHealth`] — the probe a
    /// [`CircuitBreaker`](crate::resilience::CircuitBreakerBuilder::health_probe)
    /// polls without borrowing the engine itself.
    pub fn health_handle(&self) -> EngineHealthHandle {
        EngineHealthHandle {
            counters: Arc::clone(&self.counters),
            spawned: self.spawned,
        }
    }

    /// Gracefully stop the pool: close the job channel, join every
    /// worker. Subsequent submissions return
    /// [`TfheError::EngineShutDown`]. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            // A worker that panicked already surfaced as a failed chunk
            // to any in-flight submitter; nothing useful in the payload.
            let _ = handle.join();
        }
    }

    fn chunk_len(&self, n: usize) -> usize {
        match self.chunk_size {
            Some(c) => c,
            // About two jobs per worker: coarse enough that channel
            // traffic is negligible next to a bootstrap, fine enough
            // that a straggler chunk can't idle half the pool.
            None => n.div_ceil(self.spawned * 2).max(1),
        }
    }

    /// Flat index of the first output (counting from `out_start`) that
    /// the sanity check rejects, if a check is installed. Indices are
    /// batch-relative *output* positions — they diverge from ciphertext
    /// indices on fanout batches.
    fn rejected_output(&self, out_start: usize, outs: &[LweCiphertext]) -> Option<usize> {
        let check = self.output_check.as_ref()?;
        outs.iter()
            .enumerate()
            .find_map(|(j, ct)| (!check(out_start + j, ct)).then_some(out_start + j))
    }

    fn submit(
        &self,
        cts: Vec<LweCiphertext>,
        luts: Vec<Lut>,
        lut_of: Option<Vec<usize>>,
        fanout: Option<Vec<Vec<usize>>>,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        let n = cts.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        // Fail fast on a dead pool: the channel may still accept sends
        // (queued jobs hold receiver clones), but with zero live workers
        // nothing would ever reply and the submitter would hang.
        let Some(tx) = self.tx.as_ref() else {
            return Err(TfheError::EngineShutDown);
        };
        if self.counters.alive.load(Ordering::SeqCst) == 0 {
            return Err(TfheError::EngineShutDown);
        }
        // Validate eagerly so errors surface here, not inside the pool.
        let params = self.server.params();
        for ct in &cts {
            if ct.dim() != params.lwe_dim {
                return Err(TfheError::LweDimensionMismatch {
                    expected: params.lwe_dim,
                    got: ct.dim(),
                });
            }
        }
        for lut in &luts {
            if lut.polynomial().len() != params.poly_size {
                return Err(TfheError::LutSizeMismatch {
                    lut: lut.polynomial().len(),
                    poly_size: params.poly_size,
                });
            }
        }

        // Flat output offset of each ciphertext (identity without fanout):
        // the ordered-assembly and output-check index space.
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut total_outputs = 0usize;
        for i in 0..n {
            out_offsets.push(total_outputs);
            total_outputs += fanout.as_ref().map_or(1, |m| m[i].len());
        }
        out_offsets.push(total_outputs);

        let cts = Arc::new(cts);
        let luts = Arc::new(luts);
        let lut_of = lut_of.map(Arc::new);
        let fanout = fanout.map(Arc::new);
        let chunk = self.chunk_len(n);
        // Count only batches that actually reach the pool — rejected
        // submissions must not inflate the calibration denominator. The
        // pre-increment value doubles as the batch's fault-injection id.
        let batch = self.counters.batches.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel::unbounded::<Chunk>();

        // The fixed chunk plan: disjoint contiguous ranges in ascending
        // order. Retries re-dispatch a range verbatim, so the plan (and
        // with it the fault-injection keys) never shifts mid-batch.
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(n.div_ceil(chunk));
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            ranges.push(start..end);
            start = end;
        }

        let dispatch = |slot: usize, attempt: u32| -> Result<(), TfheError> {
            let job = Job {
                batch,
                attempt,
                cts: Arc::clone(&cts),
                luts: Arc::clone(&luts),
                lut_of: lut_of.clone(),
                fanout: fanout.clone(),
                range: ranges[slot].clone(),
                reply: reply_tx.clone(),
            };
            tx.send(job).map_err(|_| TfheError::EngineShutDown)
        };

        let mut slots: Vec<Option<Vec<LweCiphertext>>> = vec![None; ranges.len()];
        let mut attempts = vec![0u32; ranges.len()];
        let mut sent_at: Vec<Instant> = Vec::with_capacity(ranges.len());
        for slot in 0..ranges.len() {
            dispatch(slot, 0)?;
            sent_at.push(Instant::now());
        }
        let mut pending = ranges.len();

        // Re-dispatch `slot` after a transient failure, with exponential
        // backoff. Returns the new attempt number, or `None` if the
        // retry budget is exhausted (caller converts to its error).
        let retry = |slot: usize,
                     attempts: &mut [u32],
                     sent_at: &mut [Instant]|
         -> Result<Option<u32>, TfheError> {
            if attempts[slot] >= self.max_retries {
                return Ok(None);
            }
            attempts[slot] += 1;
            let attempt = attempts[slot];
            self.counters.retries.fetch_add(1, Ordering::Relaxed);
            self.counters.record(
                self.epoch,
                None,
                FaultEventKind::Retry {
                    chunk_start: ranges[slot].start,
                    attempt,
                },
            );
            let backoff = self
                .retry_backoff
                .saturating_mul(1u32 << (attempt - 1).min(16));
            if backoff > Duration::ZERO {
                std::thread::sleep(backoff);
            }
            dispatch(slot, attempt)?;
            sent_at[slot] = Instant::now();
            Ok(Some(attempt))
        };

        // Liveness tick: at most the watchdog timeout, at least often
        // enough to notice a dead pool.
        let tick = self
            .job_timeout
            .map_or(LIVENESS_TICK, |t| t.min(LIVENESS_TICK));

        while pending > 0 {
            match reply_rx.recv_timeout(tick) {
                Ok(reply) => {
                    let Some(slot) = ranges.iter().position(|r| r.start == reply.start) else {
                        continue;
                    };
                    if slots[slot].is_some() {
                        // Late duplicate from a watchdog-rescued worker;
                        // results are deterministic, so drop it.
                        continue;
                    }
                    match reply.result {
                        Ok(outs) => {
                            if let Some(index) =
                                self.rejected_output(out_offsets[ranges[slot].start], &outs)
                            {
                                self.counters.check_failures.fetch_add(1, Ordering::Relaxed);
                                self.counters.record(
                                    self.epoch,
                                    None,
                                    FaultEventKind::OutputCheckFailed { index },
                                );
                                if retry(slot, &mut attempts, &mut sent_at)?.is_none() {
                                    return Err(TfheError::OutputCheckFailed { index });
                                }
                                continue;
                            }
                            slots[slot] = Some(outs);
                            pending -= 1;
                        }
                        Err(e @ TfheError::WorkerPanicked { .. }) => {
                            if retry(slot, &mut attempts, &mut sent_at)?.is_none() {
                                return Err(e);
                            }
                        }
                        // Validation errors are deterministic — retrying
                        // would reproduce them, so fail the batch.
                        Err(e) => return Err(e),
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.counters.alive.load(Ordering::SeqCst) == 0 {
                        return Err(TfheError::EngineShutDown);
                    }
                    let Some(limit) = self.job_timeout else {
                        continue;
                    };
                    for slot in 0..ranges.len() {
                        if slots[slot].is_none() && sent_at[slot].elapsed() >= limit {
                            self.counters
                                .watchdog_timeouts
                                .fetch_add(1, Ordering::Relaxed);
                            self.counters.record(
                                self.epoch,
                                None,
                                FaultEventKind::WatchdogTimeout {
                                    batch,
                                    chunk_start: ranges[slot].start,
                                },
                            );
                            if retry(slot, &mut attempts, &mut sent_at)?.is_none() {
                                return Err(TfheError::JobTimedOut {
                                    chunk_start: ranges[slot].start,
                                    attempts: attempts[slot] + 1,
                                });
                            }
                        }
                    }
                }
                // Unreachable while we hold `reply_tx`, but map it
                // defensively rather than hanging.
                Err(RecvTimeoutError::Disconnected) => return Err(TfheError::EngineShutDown),
            }
        }

        // Ordered assembly: slots follow the ascending chunk plan, so
        // flattening restores input order exactly.
        let out: Vec<LweCiphertext> = slots.into_iter().flatten().flatten().collect();
        debug_assert_eq!(out.len(), total_outputs);
        Ok(out)
    }
}

/// The pooled backend: requests route through the persistent self-healing
/// worker pool. [`BatchRequest::threads`] and
/// [`BatchRequest::deadline`] are ignored — the pool was sized at
/// construction and executes immediately (put a
/// [`Dispatcher`](crate::dispatch::Dispatcher) in front for
/// deadline-aware batching).
impl Bootstrapper for BootstrapEngine {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        self.submit(
            req.ciphertexts().to_vec(),
            req.luts().to_vec(),
            req.selectors().map(|s| s.to_vec()),
            req.fanout().map(|m| m.to_vec()),
        )
    }
}

impl Drop for BootstrapEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Route a shared-LUT batch through the trait surface.
    fn bb(
        b: &impl Bootstrapper,
        cts: &[LweCiphertext],
        lut: &Lut,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        b.try_bootstrap_batch(&BatchRequest::shared(cts.to_vec(), lut.clone()))
    }

    /// Route a per-item-LUT batch through the trait surface.
    fn bbm(
        b: &impl Bootstrapper,
        cts: &[LweCiphertext],
        luts: &[Lut],
        lut_of: &[usize],
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        b.try_bootstrap_batch(&BatchRequest::per_item(
            cts.to_vec(),
            luts.to_vec(),
            lut_of.to_vec(),
        )?)
    }

    fn setup(seed: u64) -> (ClientKey, Arc<ServerKey>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
        (ck, sk, rng)
    }

    #[test]
    fn engine_matches_sequential_batch() {
        let (ck, sk, mut rng) = setup(700);
        let lut = Lut::from_fn(sk.params().poly_size, 4, |m| (m + 1) % 4);
        let cts: Vec<_> = (0..13).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let engine = BootstrapEngine::builder()
            .workers(3)
            .build(Arc::clone(&sk))
            .unwrap();
        let seq = bb(&*sk, &cts, &lut).unwrap();
        let eng = bb(&engine, &cts, &lut).unwrap();
        assert_eq!(seq, eng);
    }

    #[test]
    fn engine_survives_many_batches() {
        let (ck, sk, mut rng) = setup(701);
        let lut = Lut::identity(sk.params().poly_size, 4);
        let engine = BootstrapEngine::builder()
            .workers(2)
            .build(Arc::clone(&sk))
            .unwrap();
        for round in 0..4u64 {
            let cts: Vec<_> = (0..5)
                .map(|m| ck.encrypt((m + round) % 4, &mut rng))
                .collect();
            let out = bb(&engine, &cts, &lut).unwrap();
            for (m, ct) in out.iter().enumerate() {
                assert_eq!(ck.decrypt(ct), (m as u64 + round) % 4, "round={round}");
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.bootstraps, 20);
        assert!(stats.busy > Duration::ZERO);
        assert_eq!(stats.health, EngineHealth::Healthy);
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn multi_lut_batches_route_each_ciphertext() {
        let (ck, sk, mut rng) = setup(702);
        let n = sk.params().poly_size;
        let luts = [
            Lut::identity(n, 4),
            Lut::from_fn(n, 4, |m| (m + 1) % 4),
            Lut::from_fn(n, 4, |m| 3 - m),
        ];
        let msgs = [0u64, 1, 2, 3, 2, 1];
        let lut_of = [0usize, 1, 2, 0, 1, 2];
        let cts: Vec<_> = msgs.iter().map(|&m| ck.encrypt(m, &mut rng)).collect();
        let engine = BootstrapEngine::builder()
            .workers(2)
            .build(Arc::clone(&sk))
            .unwrap();
        let out = bbm(&engine, &cts, &luts, &lut_of).unwrap();
        let expect = |m: u64, sel: usize| match sel {
            0 => m,
            1 => (m + 1) % 4,
            _ => 3 - m,
        };
        for i in 0..msgs.len() {
            assert_eq!(ck.decrypt(&out[i]), expect(msgs[i], lut_of[i]), "i={i}");
        }
    }

    #[test]
    fn fanout_batches_route_through_the_pool() {
        let (ck, sk, mut rng) = setup(714);
        let n = sk.params().poly_size;
        let luts = vec![
            Lut::identity(n, 4),
            Lut::from_fn(n, 4, |m| (m + 1) % 4),
            Lut::from_fn(n, 4, |m| 3 - m),
        ];
        let cts: Vec<_> = (0..5).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let req = BatchRequest::many(cts, luts).unwrap();
        let engine = BootstrapEngine::builder()
            .workers(2)
            .chunk_size(2)
            .build(Arc::clone(&sk))
            .unwrap();
        let out = engine.try_bootstrap_batch(&req).unwrap();
        // Same request through the sequential backend: chunking must not
        // change results or their flattened order.
        assert_eq!(out, sk.try_bootstrap_batch(&req).unwrap());
        assert_eq!(out.len(), 15);
        let stats = engine.stats();
        assert_eq!(stats.bootstraps, 5, "one rotation per input");
        assert_eq!(stats.extractions, 15, "one extraction per output");
        let spans = engine.job_spans();
        assert_eq!(spans.iter().map(|s| s.bootstraps).sum::<usize>(), 5);
        assert_eq!(spans.iter().map(|s| s.extractions).sum::<usize>(), 15);
    }

    #[test]
    fn fanout_output_check_sees_flat_output_indices() {
        let (ck, sk, mut rng) = setup(715);
        let n = sk.params().poly_size;
        let luts = vec![Lut::identity(n, 4), Lut::from_fn(n, 4, |m| (m + 1) % 4)];
        let cts: Vec<_> = (0..3).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let req = BatchRequest::many(cts, luts).unwrap();
        // Reject exactly flat output 3 (= input 1's second output): the
        // surfaced index must be in output space, not ciphertext space.
        let engine = BootstrapEngine::builder()
            .workers(1)
            .chunk_size(1)
            .max_retries(1)
            .retry_backoff(Duration::ZERO)
            .output_check(|i, _| i != 3)
            .build(Arc::clone(&sk))
            .unwrap();
        assert_eq!(
            engine.try_bootstrap_batch(&req).err(),
            Some(TfheError::OutputCheckFailed { index: 3 })
        );
    }

    #[test]
    fn rejects_bad_inputs_eagerly() {
        let (ck, sk, mut rng) = setup(703);
        let engine = BootstrapEngine::builder()
            .workers(1)
            .build(Arc::clone(&sk))
            .unwrap();
        let good_lut = Lut::identity(sk.params().poly_size, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];

        let wrong_dim = crate::lwe::LweCiphertext::trivial(morphling_math::Torus32::ZERO, 3);
        assert!(matches!(
            bb(&engine, &[wrong_dim], &good_lut),
            Err(TfheError::LweDimensionMismatch { .. })
        ));

        let wrong_lut = Lut::identity(sk.params().poly_size * 2, 4);
        assert!(matches!(
            bb(&engine, &cts, &wrong_lut),
            Err(TfheError::LutSizeMismatch { .. })
        ));

        assert!(matches!(
            bbm(&engine, &cts, std::slice::from_ref(&good_lut), &[1]),
            Err(TfheError::LutIndexOutOfRange { index: 1, luts: 1 })
        ));
        assert!(matches!(
            bbm(&engine, &cts, &[good_lut], &[0, 0]),
            Err(TfheError::LutSelectorLengthMismatch {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn zero_workers_is_an_error_and_empty_batch_is_ok() {
        let (_ck, sk, _rng) = setup(704);
        assert_eq!(
            BootstrapEngine::builder()
                .workers(0)
                .build(Arc::clone(&sk))
                .err(),
            Some(TfheError::ZeroThreads)
        );
        let engine = BootstrapEngine::builder().workers(1).build(sk).unwrap();
        let lut = Lut::identity(engine.server().params().poly_size, 4);
        assert_eq!(bb(&engine, &[], &lut).unwrap(), Vec::new());
    }

    #[test]
    fn rejected_batches_do_not_count_toward_stats() {
        let (ck, sk, mut rng) = setup(706);
        let engine = BootstrapEngine::builder()
            .workers(1)
            .build(Arc::clone(&sk))
            .unwrap();
        // Malformed submissions are rejected before dispatch.
        let wrong_lut = Lut::identity(sk.params().poly_size * 2, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];
        assert!(bb(&engine, &cts, &wrong_lut).is_err());
        assert_eq!(engine.stats().batches, 0, "rejected batch was counted");
        // Empty batches never reach the pool either.
        let lut = Lut::identity(sk.params().poly_size, 4);
        assert!(bb(&engine, &[], &lut).is_ok());
        assert_eq!(engine.stats().batches, 0, "empty batch was counted");
        // A dispatched batch counts exactly once.
        bb(&engine, &cts, &lut).unwrap();
        assert_eq!(engine.stats().batches, 1);
    }

    #[test]
    fn dead_pool_is_detected_at_submit_time() {
        let (ck, sk, mut rng) = setup(707);
        let mut engine = BootstrapEngine::builder()
            .workers(2)
            .build(Arc::clone(&sk))
            .unwrap();
        let lut = Lut::identity(sk.params().poly_size, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];
        bb(&engine, &cts, &lut).unwrap();
        assert_eq!(engine.alive_workers(), 2);
        assert_eq!(engine.health(), EngineHealth::Healthy);
        engine.shutdown();
        assert_eq!(engine.alive_workers(), 0);
        assert_eq!(engine.health(), EngineHealth::Failed);
        // Submitting to the dead pool errors instead of hanging.
        assert_eq!(
            bb(&engine, &cts, &lut).err(),
            Some(TfheError::EngineShutDown)
        );
        assert_eq!(engine.stats().batches, 1, "failed submit was counted");
        // Shutdown is idempotent.
        engine.shutdown();
    }

    #[test]
    fn health_handle_outlives_the_engine() {
        let (_ck, sk, _rng) = setup(711);
        let mut engine = BootstrapEngine::builder()
            .workers(2)
            .build(Arc::clone(&sk))
            .unwrap();
        let handle = engine.health_handle();
        assert_eq!(handle.health(), EngineHealth::Healthy);
        assert_eq!(handle.alive_workers(), 2);
        engine.shutdown();
        assert_eq!(handle.health(), EngineHealth::Failed);
        drop(engine);
        // Detached from the engine's lifetime: still answers after drop.
        assert_eq!(handle.health(), EngineHealth::Failed);
        assert_eq!(handle.alive_workers(), 0);
    }

    #[test]
    fn job_spans_journal_every_chunk() {
        let (ck, sk, mut rng) = setup(708);
        let lut = Lut::identity(sk.params().poly_size, 4);
        let cts: Vec<_> = (0..6).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let engine = BootstrapEngine::builder()
            .workers(2)
            .chunk_size(2)
            .build(Arc::clone(&sk))
            .unwrap();
        bb(&engine, &cts, &lut).unwrap();
        let spans = engine.job_spans();
        assert_eq!(spans.len(), 3, "one span per 2-ciphertext chunk");
        assert_eq!(spans.iter().map(|s| s.bootstraps).sum::<usize>(), 6);
        for s in &spans {
            assert!(s.worker < 2);
            assert!(s.dur > Duration::ZERO);
        }
        engine.reset_stats();
        assert!(engine.job_spans().is_empty());
        assert!(engine.fault_events().is_empty());
    }

    #[test]
    fn forced_chunk_size_still_orders_results() {
        let (ck, sk, mut rng) = setup(705);
        let lut = Lut::identity(sk.params().poly_size, 4);
        let cts: Vec<_> = (0..7).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let engine = BootstrapEngine::builder()
            .workers(4)
            .chunk_size(2)
            .build(Arc::clone(&sk))
            .unwrap();
        let out = bb(&engine, &cts, &lut).unwrap();
        assert_eq!(out, bb(&*sk, &cts, &lut).unwrap());
    }

    #[test]
    fn injected_panics_are_retried_and_respawned() {
        let (ck, sk, mut rng) = setup(710);
        let lut = Lut::identity(sk.params().poly_size, 4);
        let cts: Vec<_> = (0..12).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let engine = BootstrapEngine::builder()
            .workers(2)
            .chunk_size(3)
            .respawn_budget(16)
            .max_retries(8)
            .fault_plan(FaultPlan::seeded(4242).with_worker_panic(0.3))
            .build(Arc::clone(&sk))
            .unwrap();
        let out = bb(&engine, &cts, &lut).unwrap();
        assert_eq!(out, bb(&*sk, &cts, &lut).unwrap(), "bit-identical");
        let stats = engine.stats();
        assert!(stats.panics > 0, "seed 4242 must fire at rate 0.3");
        assert_eq!(stats.panics, stats.respawns, "every panic respawned");
        assert_eq!(stats.retries, stats.panics, "every panic retried");
        assert_eq!(stats.health, EngineHealth::Healthy);
        assert!(engine
            .fault_events()
            .iter()
            .any(|e| e.kind == FaultEventKind::WorkerPanic));
    }

    #[test]
    fn exhausted_respawn_budget_degrades_then_fails() {
        let (ck, sk, mut rng) = setup(711);
        let lut = Lut::identity(sk.params().poly_size, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];
        // Every job panics; zero respawns: the single worker dies on the
        // first job and the pool fails — without hanging the submitter.
        let engine = BootstrapEngine::builder()
            .workers(1)
            .respawn_budget(0)
            .max_retries(1)
            .retry_backoff(Duration::ZERO)
            .fault_plan(FaultPlan::seeded(1).with_worker_panic(1.0))
            .build(Arc::clone(&sk))
            .unwrap();
        let err = bb(&engine, &cts, &lut).unwrap_err();
        assert!(
            matches!(
                err,
                TfheError::WorkerPanicked { .. } | TfheError::EngineShutDown
            ),
            "got {err:?}"
        );
        // The pool is dead; later submissions fail fast.
        while engine.alive_workers() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(engine.health(), EngineHealth::Failed);
        assert_eq!(
            bb(&engine, &cts, &lut).err(),
            Some(TfheError::EngineShutDown)
        );
    }

    #[test]
    fn output_check_failures_exhaust_into_an_error() {
        let (ck, sk, mut rng) = setup(712);
        let lut = Lut::identity(sk.params().poly_size, 4);
        let cts = vec![ck.encrypt(2, &mut rng)];
        // A check that rejects everything: retries burn out, the caller
        // gets OutputCheckFailed, and the pool stays healthy.
        let engine = BootstrapEngine::builder()
            .workers(1)
            .max_retries(2)
            .retry_backoff(Duration::ZERO)
            .output_check(|_, _| false)
            .build(Arc::clone(&sk))
            .unwrap();
        assert_eq!(
            bb(&engine, &cts, &lut).err(),
            Some(TfheError::OutputCheckFailed { index: 0 })
        );
        let stats = engine.stats();
        assert_eq!(stats.check_failures, 3, "initial attempt + 2 retries");
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.health, EngineHealth::Healthy);
    }

    #[test]
    fn mean_bootstrap_time_survives_counts_beyond_u32() {
        assert_eq!(EngineStats::default().mean_bootstrap_time(), None);

        let small = EngineStats {
            bootstraps: 4,
            busy: Duration::from_secs(2),
            ..Default::default()
        };
        assert_eq!(
            small.mean_bootstrap_time(),
            Some(Duration::from_millis(500))
        );

        // 6e9 bootstraps over 600 s of busy time: mean = 100 ns. The old
        // `busy / (bootstraps as u32)` truncated the divisor to
        // 6e9 mod 2³² ≈ 1.7e9 and reported ~353 ns instead.
        let huge = EngineStats {
            bootstraps: 6_000_000_000,
            busy: Duration::from_secs(600),
            ..Default::default()
        };
        let mean = huge.mean_bootstrap_time().unwrap();
        let err_ns = (mean.as_nanos() as i128 - 100).abs();
        assert!(err_ns <= 1, "mean {mean:?} should be ~100ns");
    }

    #[test]
    fn noise_adaptive_retries_are_bounded() {
        let (_, sk, _) = setup(713);
        let b = BootstrapEngine::builder().noise_adaptive_retries(sk.params());
        let engine = b.workers(1).build(sk).unwrap();
        assert!((1..=8).contains(&engine.max_retries));
    }
}
