//! Compact versioned binary (de)serialization for key material — the
//! wire format a [`KeyStore`](crate::KeyStore) backend stores per tenant.
//!
//! Every blob is framed identically:
//!
//! ```text
//! magic   b"MPHK"                      4 bytes
//! version u16 little-endian            2 bytes   (currently 1)
//! kind    u8                           1 byte    (which key type follows)
//! length  u64 little-endian            8 bytes   (payload byte count)
//! payload length bytes
//! check   u64 little-endian            8 bytes   (FNV-1a-64 over all
//!                                                 preceding bytes)
//! ```
//!
//! All multi-byte integers are little-endian; torus values travel as raw
//! `u32` words; noise parameters as IEEE-754 `f64` bit patterns; secret
//! key bits are packed eight to a byte. The bootstrapping key is
//! serialized in the **coefficient domain** only — the transform-domain
//! form is recomputed on load, never trusted from the wire.
//!
//! Deserialization never panics on malformed input: every framing,
//! bounds, checksum, or shape violation surfaces as
//! [`TfheError::KeyCorrupted`] with a description of the first failure.
//! There is no serde involved; the format is hand-rolled and pinned by
//! round-trip property tests (`tests/serialization.rs`).

use morphling_math::{DecompParams, Polynomial, Torus32};

use crate::bootstrap_key::BootstrapKey;
use crate::error::TfheError;
use crate::ggsw::GgswCiphertext;
use crate::glwe::GlweCiphertext;
use crate::keys::{GlweSecretKey, LweSecretKey};
use crate::ksk::KeySwitchKey;
use crate::lwe::LweCiphertext;
use crate::params::TfheParams;
use crate::server::{MulBackend, ServerKey};

/// Frame magic: "MPHK" (Morphling key).
const MAGIC: [u8; 4] = *b"MPHK";
/// Current wire-format version.
const VERSION: u16 = 1;

/// Frame kind tags, one per serializable key type. The variants
/// intentionally mirror the key type names they tag.
#[allow(clippy::enum_variant_names)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    LweSecretKey = 1,
    GlweSecretKey = 2,
    BootstrapKey = 3,
    KeySwitchKey = 4,
    ServerKey = 5,
}

/// Parameter-set names the reader can intern back to `&'static str`
/// (matching [`crate::ParamSet`]); anything else round-trips as "CUSTOM".
const KNOWN_NAMES: [&str; 11] = [
    "I", "II", "III", "IV", "A", "B", "C", "FIG1", "TEST", "TEST-M", "CUSTOM",
];

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free, and plenty to
/// catch truncation and bit flips (malice is out of scope: blobs come
/// from the operator's own key backend).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn corrupt(detail: impl Into<String>) -> TfheError {
    TfheError::KeyCorrupted {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------
// Little-endian writer / bounds-checked reader
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bits (each 0 or 1) packed eight to a byte, LSB first.
    fn packed_bits(&mut self, bits: &[i64]) {
        for chunk in bits.chunks(8) {
            let mut byte = 0u8;
            for (i, &b) in chunk.iter().enumerate() {
                byte |= (b as u8 & 1) << i;
            }
            self.buf.push(byte);
        }
    }

    fn torus_poly(&mut self, p: &Polynomial<Torus32>) {
        for &c in p.coeffs() {
            self.u32(c.into_raw());
        }
    }

    fn glwe(&mut self, ct: &GlweCiphertext) {
        for comp in ct.components() {
            self.torus_poly(comp);
        }
    }

    fn lwe(&mut self, ct: &LweCiphertext) {
        for &a in ct.mask() {
            self.u32(a.into_raw());
        }
        self.u32(ct.body().into_raw());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TfheError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                corrupt(format!(
                    "truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TfheError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TfheError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, TfheError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A `u64` that must fit `usize` and stay under a sanity cap — wire
    /// lengths drive allocations, so a corrupt length must not OOM us.
    fn len_field(&mut self, what: &str) -> Result<usize, TfheError> {
        const CAP: u64 = 1 << 33; // 8 GiB of elements is already absurd
        let v = self.u64()?;
        if v > CAP {
            return Err(corrupt(format!("{what} length {v} is implausible")));
        }
        usize::try_from(v).map_err(|_| corrupt(format!("{what} length {v} overflows usize")))
    }

    fn f64(&mut self) -> Result<f64, TfheError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn packed_bits(&mut self, n: usize) -> Result<Vec<i64>, TfheError> {
        let bytes = self.take(n.div_ceil(8))?;
        let mut bits = Vec::with_capacity(n);
        for i in 0..n {
            bits.push(i64::from((bytes[i / 8] >> (i % 8)) & 1));
        }
        Ok(bits)
    }

    fn torus_poly(&mut self, n: usize) -> Result<Polynomial<Torus32>, TfheError> {
        let mut coeffs = Vec::with_capacity(n);
        for _ in 0..n {
            coeffs.push(Torus32::from_raw(self.u32()?));
        }
        Ok(Polynomial::from_coeffs(coeffs))
    }

    fn glwe(&mut self, k: usize, n: usize) -> Result<GlweCiphertext, TfheError> {
        let mut masks = Vec::with_capacity(k);
        for _ in 0..k {
            masks.push(self.torus_poly(n)?);
        }
        let body = self.torus_poly(n)?;
        Ok(GlweCiphertext::from_parts(masks, body))
    }

    fn lwe(&mut self, dim: usize) -> Result<LweCiphertext, TfheError> {
        let mut mask = Vec::with_capacity(dim);
        for _ in 0..dim {
            mask.push(Torus32::from_raw(self.u32()?));
        }
        let body = Torus32::from_raw(self.u32()?);
        Ok(LweCiphertext::from_parts(mask, body))
    }

    fn done(&self) -> Result<(), TfheError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(format!(
                "trailing garbage: {} unread payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

fn frame(kind: Kind, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 23);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let check = fnv1a(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

fn unframe(bytes: &[u8], want: Kind) -> Result<&[u8], TfheError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:02x?}")));
    }
    let version = {
        let b = r.take(2)?;
        u16::from_le_bytes([b[0], b[1]])
    };
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let kind = r.u8()?;
    if kind != want as u8 {
        return Err(corrupt(format!(
            "kind mismatch: frame holds kind {kind}, expected {} ({want:?})",
            want as u8
        )));
    }
    let len = r.len_field("payload")?;
    let payload = r.take(len)?;
    let check = r.u64()?;
    r.done()
        .map_err(|_| corrupt("trailing bytes after checksum"))?;
    let computed = fnv1a(&bytes[..bytes.len() - 8]);
    if check != computed {
        return Err(corrupt(format!(
            "checksum mismatch: stored {check:#018x}, computed {computed:#018x}"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// Parameter block (embedded in the ServerKey payload)
// ---------------------------------------------------------------------

fn write_params(w: &mut Writer, p: &TfheParams) {
    let name = if KNOWN_NAMES.contains(&p.name) {
        p.name
    } else {
        "CUSTOM"
    };
    w.u8(name.len() as u8);
    w.bytes(name.as_bytes());
    w.usize(p.poly_size);
    w.usize(p.lwe_dim);
    w.usize(p.glwe_dim);
    w.u32(p.bsk_decomp.base_log());
    w.usize(p.bsk_decomp.level());
    w.u32(p.ksk_decomp.base_log());
    w.usize(p.ksk_decomp.level());
    w.f64(p.lwe_noise_std);
    w.f64(p.glwe_noise_std);
    w.u64(p.plaintext_modulus);
    w.u32(p.security_bits);
    w.u8(u8::from(p.functional));
}

fn read_params(r: &mut Reader<'_>) -> Result<TfheParams, TfheError> {
    let name_len = r.u8()? as usize;
    let name_bytes = r.take(name_len)?;
    let name = KNOWN_NAMES
        .iter()
        .copied()
        .find(|n| n.as_bytes() == name_bytes)
        .unwrap_or("CUSTOM");
    let poly_size = r.len_field("poly_size")?;
    let lwe_dim = r.len_field("lwe_dim")?;
    let glwe_dim = r.len_field("glwe_dim")?;
    let bsk_base_log = r.u32()?;
    let bsk_level = r.len_field("bsk level")?;
    let ksk_base_log = r.u32()?;
    let ksk_level = r.len_field("ksk level")?;
    let lwe_noise_std = r.f64()?;
    let glwe_noise_std = r.f64()?;
    let plaintext_modulus = r.u64()?;
    let security_bits = r.u32()?;
    let functional = r.u8()? != 0;
    if poly_size == 0 || !poly_size.is_power_of_two() {
        return Err(corrupt(format!("poly_size {poly_size} not a power of two")));
    }
    if bsk_base_log == 0 || bsk_base_log > 32 || ksk_base_log == 0 || ksk_base_log > 32 {
        return Err(corrupt("decomposition base_log out of range"));
    }
    if bsk_level == 0
        || ksk_level == 0
        || bsk_base_log as usize * bsk_level > 32
        || ksk_base_log as usize * ksk_level > 32
    {
        return Err(corrupt("decomposition level out of range"));
    }
    if !lwe_noise_std.is_finite() || !glwe_noise_std.is_finite() {
        return Err(corrupt("noise parameters are not finite"));
    }
    Ok(TfheParams {
        name,
        poly_size,
        lwe_dim,
        glwe_dim,
        bsk_decomp: DecompParams::new(bsk_base_log, bsk_level),
        ksk_decomp: DecompParams::new(ksk_base_log, ksk_level),
        lwe_noise_std,
        glwe_noise_std,
        plaintext_modulus,
        security_bits,
        functional,
    })
}

// ---------------------------------------------------------------------
// Per-type payloads
// ---------------------------------------------------------------------

fn lwe_secret_key_payload(key: &LweSecretKey) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(key.dim());
    w.packed_bits(key.bits());
    w.buf
}

fn read_lwe_secret_key(r: &mut Reader<'_>) -> Result<LweSecretKey, TfheError> {
    let n = r.len_field("LWE key dimension")?;
    let bits = r.packed_bits(n)?;
    Ok(LweSecretKey::from_bits(bits))
}

/// Serialize an [`LweSecretKey`].
pub fn serialize_lwe_secret_key(key: &LweSecretKey) -> Vec<u8> {
    frame(Kind::LweSecretKey, lwe_secret_key_payload(key))
}

/// Deserialize an [`LweSecretKey`].
///
/// # Errors
///
/// [`TfheError::KeyCorrupted`] on any framing, checksum, or shape
/// violation.
pub fn deserialize_lwe_secret_key(bytes: &[u8]) -> Result<LweSecretKey, TfheError> {
    let mut r = Reader::new(unframe(bytes, Kind::LweSecretKey)?);
    let key = read_lwe_secret_key(&mut r)?;
    r.done()?;
    Ok(key)
}

fn glwe_secret_key_payload(key: &GlweSecretKey) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(key.dim());
    w.usize(key.poly_size());
    for p in key.polys() {
        w.packed_bits(p.coeffs());
    }
    w.buf
}

fn read_glwe_secret_key(r: &mut Reader<'_>) -> Result<GlweSecretKey, TfheError> {
    let k = r.len_field("GLWE key dimension")?;
    let n = r.len_field("GLWE key poly size")?;
    if k == 0 || n == 0 {
        return Err(corrupt("GLWE key must have k ≥ 1 and N ≥ 1"));
    }
    let mut polys = Vec::with_capacity(k);
    for _ in 0..k {
        polys.push(Polynomial::from_coeffs(r.packed_bits(n)?));
    }
    Ok(GlweSecretKey::from_polys(polys))
}

/// Serialize a [`GlweSecretKey`].
pub fn serialize_glwe_secret_key(key: &GlweSecretKey) -> Vec<u8> {
    frame(Kind::GlweSecretKey, glwe_secret_key_payload(key))
}

/// Deserialize a [`GlweSecretKey`].
///
/// # Errors
///
/// [`TfheError::KeyCorrupted`] on any framing, checksum, or shape
/// violation.
pub fn deserialize_glwe_secret_key(bytes: &[u8]) -> Result<GlweSecretKey, TfheError> {
    let mut r = Reader::new(unframe(bytes, Kind::GlweSecretKey)?);
    let key = read_glwe_secret_key(&mut r)?;
    r.done()?;
    Ok(key)
}

fn bootstrap_key_payload(key: &BootstrapKey) -> Vec<u8> {
    let mut w = Writer::new();
    let n_ggsw = key.lwe_dim();
    let first = key.coefficient(0);
    w.usize(n_ggsw);
    w.usize(first.glwe_dim());
    w.usize(first.level());
    w.usize(first.poly_size());
    for i in 0..n_ggsw {
        for row in key.coefficient(i).rows() {
            w.glwe(row);
        }
    }
    w.buf
}

fn read_bootstrap_key(r: &mut Reader<'_>) -> Result<BootstrapKey, TfheError> {
    let n_ggsw = r.len_field("BSK GGSW count")?;
    let k = r.len_field("BSK GLWE dimension")?;
    let level = r.len_field("BSK level")?;
    let n = r.len_field("BSK poly size")?;
    if n_ggsw == 0 || level == 0 || n == 0 || !n.is_power_of_two() {
        return Err(corrupt("BSK shape header is degenerate"));
    }
    let rows_per = (k + 1) * level;
    let mut coefficient = Vec::with_capacity(n_ggsw);
    for _ in 0..n_ggsw {
        let mut rows = Vec::with_capacity(rows_per);
        for _ in 0..rows_per {
            rows.push(r.glwe(k, n)?);
        }
        coefficient.push(GgswCiphertext::from_rows(rows, k, level));
    }
    Ok(BootstrapKey::from_coefficient(coefficient))
}

/// Serialize a [`BootstrapKey`] (coefficient domain only — the Fourier
/// form is recomputed on load).
pub fn serialize_bootstrap_key(key: &BootstrapKey) -> Vec<u8> {
    frame(Kind::BootstrapKey, bootstrap_key_payload(key))
}

/// Deserialize a [`BootstrapKey`], regenerating its transform-domain
/// form.
///
/// # Errors
///
/// [`TfheError::KeyCorrupted`] on any framing, checksum, or shape
/// violation.
pub fn deserialize_bootstrap_key(bytes: &[u8]) -> Result<BootstrapKey, TfheError> {
    let mut r = Reader::new(unframe(bytes, Kind::BootstrapKey)?);
    let key = read_bootstrap_key(&mut r)?;
    r.done()?;
    Ok(key)
}

fn key_switch_key_payload(key: &KeySwitchKey) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(key.dim_in());
    w.usize(key.dim_out());
    w.u32(key.decomp_params().base_log());
    w.usize(key.decomp_params().level());
    for row in key.rows() {
        for ct in row {
            w.lwe(ct);
        }
    }
    w.buf
}

fn read_key_switch_key(r: &mut Reader<'_>) -> Result<KeySwitchKey, TfheError> {
    let dim_in = r.len_field("KSK input dimension")?;
    let dim_out = r.len_field("KSK output dimension")?;
    let base_log = r.u32()?;
    let level = r.len_field("KSK level")?;
    if base_log == 0 || base_log > 32 || level == 0 || base_log as usize * level > 32 {
        return Err(corrupt("KSK decomposition parameters out of range"));
    }
    let mut rows = Vec::with_capacity(dim_in);
    for _ in 0..dim_in {
        let mut row = Vec::with_capacity(level);
        for _ in 0..level {
            row.push(r.lwe(dim_out)?);
        }
        rows.push(row);
    }
    Ok(KeySwitchKey::from_rows(
        rows,
        DecompParams::new(base_log, level),
        dim_out,
    ))
}

/// Serialize a [`KeySwitchKey`].
pub fn serialize_key_switch_key(key: &KeySwitchKey) -> Vec<u8> {
    frame(Kind::KeySwitchKey, key_switch_key_payload(key))
}

/// Deserialize a [`KeySwitchKey`].
///
/// # Errors
///
/// [`TfheError::KeyCorrupted`] on any framing, checksum, or shape
/// violation.
pub fn deserialize_key_switch_key(bytes: &[u8]) -> Result<KeySwitchKey, TfheError> {
    let mut r = Reader::new(unframe(bytes, Kind::KeySwitchKey)?);
    let key = read_key_switch_key(&mut r)?;
    r.done()?;
    Ok(key)
}

fn backend_tag(b: MulBackend) -> u8 {
    match b {
        MulBackend::Fft => 0,
        MulBackend::FftPlain => 1,
        MulBackend::Ntt => 2,
        MulBackend::Exact => 3,
    }
}

fn backend_from_tag(tag: u8) -> Result<MulBackend, TfheError> {
    Ok(match tag {
        0 => MulBackend::Fft,
        1 => MulBackend::FftPlain,
        2 => MulBackend::Ntt,
        3 => MulBackend::Exact,
        other => return Err(corrupt(format!("unknown MulBackend tag {other}"))),
    })
}

/// Serialize a [`ServerKey`]: parameter block, backend + engine flags,
/// then the embedded BSK and KSK payloads.
pub fn serialize_server_key(key: &ServerKey) -> Vec<u8> {
    let mut w = Writer::new();
    write_params(&mut w, key.params());
    w.u8(backend_tag(key.backend()));
    w.u8(u8::from(key.merge_split()));
    w.u8(u8::from(key.batched_transforms()));
    let bsk = bootstrap_key_payload(key.bootstrap_key());
    w.usize(bsk.len());
    w.bytes(&bsk);
    let ksk = key_switch_key_payload(key.key_switch_key());
    w.usize(ksk.len());
    w.bytes(&ksk);
    frame(Kind::ServerKey, w.buf)
}

/// Deserialize a [`ServerKey`], rebuilding its transform engine (and the
/// BSK's Fourier form) locally.
///
/// # Errors
///
/// [`TfheError::KeyCorrupted`] on any framing, checksum, or shape
/// violation.
pub fn deserialize_server_key(bytes: &[u8]) -> Result<ServerKey, TfheError> {
    let mut r = Reader::new(unframe(bytes, Kind::ServerKey)?);
    let params = read_params(&mut r)?;
    let backend = backend_from_tag(r.u8()?)?;
    let merge_split = r.u8()? != 0;
    let batched = r.u8()? != 0;
    let bsk_len = r.len_field("embedded BSK")?;
    let mut bsk_r = Reader::new(r.take(bsk_len)?);
    let bsk = read_bootstrap_key(&mut bsk_r)?;
    bsk_r.done()?;
    let ksk_len = r.len_field("embedded KSK")?;
    let mut ksk_r = Reader::new(r.take(ksk_len)?);
    let ksk = read_key_switch_key(&mut ksk_r)?;
    ksk_r.done()?;
    r.done()?;
    if bsk.lwe_dim() != params.lwe_dim {
        return Err(corrupt(format!(
            "BSK has {} GGSWs but params.lwe_dim is {}",
            bsk.lwe_dim(),
            params.lwe_dim
        )));
    }
    if ksk.dim_out() != params.lwe_dim || ksk.dim_in() != params.extracted_lwe_dim() {
        return Err(corrupt(format!(
            "KSK dims {}→{} disagree with params {}→{}",
            ksk.dim_in(),
            ksk.dim_out(),
            params.extracted_lwe_dim(),
            params.lwe_dim
        )));
    }
    Ok(ServerKey::from_parts(
        params,
        bsk,
        ksk,
        backend,
        merge_split,
        batched,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn secret_keys_round_trip() {
        let mut rng = StdRng::seed_from_u64(41);
        let lwe = LweSecretKey::generate(37, &mut rng); // non-multiple of 8
        assert_eq!(
            deserialize_lwe_secret_key(&serialize_lwe_secret_key(&lwe)).unwrap(),
            lwe
        );
        let glwe = GlweSecretKey::generate(2, 64, &mut rng);
        assert_eq!(
            deserialize_glwe_secret_key(&serialize_glwe_secret_key(&glwe)).unwrap(),
            glwe
        );
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let mut rng = StdRng::seed_from_u64(42);
        let lwe = LweSecretKey::generate(16, &mut rng);
        let blob = serialize_lwe_secret_key(&lwe);
        let err = deserialize_glwe_secret_key(&blob).unwrap_err();
        assert!(matches!(err, TfheError::KeyCorrupted { .. }), "{err}");
        assert!(err.to_string().contains("kind mismatch"), "{err}");
    }

    #[test]
    fn server_key_round_trips_bit_identically() {
        let mut rng = StdRng::seed_from_u64(43);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params, &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let blob = serialize_server_key(&sk);
        let back = deserialize_server_key(&blob).unwrap();
        assert_eq!(back.params(), sk.params());
        assert_eq!(back.backend(), sk.backend());
        assert_eq!(back.merge_split(), sk.merge_split());
        assert_eq!(back.batched_transforms(), sk.batched_transforms());
        // Key material matches exactly...
        for i in 0..sk.bootstrap_key().lwe_dim() {
            assert_eq!(
                back.bootstrap_key().coefficient(i),
                sk.bootstrap_key().coefficient(i),
                "BSK_{i}"
            );
        }
        assert_eq!(back.key_switch_key().rows(), sk.key_switch_key().rows());
        // ...and so does a bootstrap through the reloaded key.
        let lut = crate::Lut::identity(sk.params().poly_size, 4);
        let ct = ck.encrypt(3, &mut rng);
        assert_eq!(
            back.programmable_bootstrap(&ct, &lut),
            sk.programmable_bootstrap(&ct, &lut)
        );
    }

    #[test]
    fn empty_and_garbage_inputs_are_rejected_not_panicked() {
        for bad in [&b""[..], &b"MP"[..], &b"NOPE1234"[..], &[0u8; 64][..]] {
            assert!(matches!(
                deserialize_server_key(bad),
                Err(TfheError::KeyCorrupted { .. })
            ));
        }
    }
}
