//! Multi-value bootstrapping: one blind rotation, many LUT outputs.
//!
//! Morphling's organizing principle is transform-domain reuse — pay for
//! one expensive transform, harvest many results from it. The blind
//! rotation is the expensive transform of TFHE itself (n external
//! products), and the multi-value technique of Carpov–Izabachène–
//! Mollimard reuses *it*: factor every test polynomial `TP_i` as
//!
//! ```text
//! TP_i = v_i · w        with  w = 2^(t−1) · (1 + X + … + X^(N−1))
//! ```
//!
//! blind-rotate the **common** factor `w` once, then recover each LUT's
//! rotated accumulator by the cheap sparse product `v_i ⊙ ACC` (a handful
//! of shifted scalar-multiply-accumulates per GLWE component). The
//! identity making this work in the negacyclic ring `Z[X]/(X^N + 1)` is
//!
//! ```text
//! (1 − X) · u = 2       with  u = 1 + X + … + X^(N−1),
//! ```
//!
//! so with `d_i = TP_i · (1 − X)` (computed over **exact signed
//! integers**, not wrapping torus words — halving a wrapped value would
//! leave a 2^31-per-coefficient ambiguity) and `t = min_j ν₂(d_i[j])`:
//! `v_i = d_i / 2^t` and `v_i · w = d_i · u / 2 = TP_i` exactly mod 2^32.
//!
//! The factorization needs every `d_i[j]` even (`t ≥ 1`); LUTs built by
//! [`Lut::from_fn`] always satisfy this (their coefficients are multiples
//! of the encoding step `2^(32−log2 2p)`), while adversarial raw-torus
//! LUTs may not — [`MultiLutPlan::build`] then returns `None` and callers
//! fall back to one rotation per LUT.
//!
//! The price of reuse is noise: the derived accumulator carries `v_i ⊙ e`
//! instead of `e`, amplifying the rotation noise by up to
//! `Σ_j |v_i[j]|` ([`MultiLutPlan::factor_weight`]). Outputs therefore
//! decode identically to a plain bootstrap but are **not** bit-identical
//! to it; the deterministic reference for bit-level tests is
//! `ServerKey::try_programmable_bootstrap_many_separate`, which pays one
//! rotation per LUT of the *same* common factor.

use morphling_math::{Polynomial, Torus32, TorusScalar};

use crate::glwe::GlweCiphertext;
use crate::lut::Lut;

/// A factorization of `k` test polynomials through one common
/// accumulator: `TP_i = v_i · w` with `w` constant across the batch.
///
/// Build once per multi-LUT bootstrap with [`build`](Self::build),
/// blind-rotate [`common`](Self::common), then [`derive`](Self::derive)
/// each LUT's accumulator from the rotated result.
#[derive(Clone, Debug)]
pub struct MultiLutPlan {
    /// `w = 2^(t−1) · (1 + X + … + X^(N−1))`.
    common: Polynomial<Torus32>,
    /// Sparse `v_i` as `(degree, coefficient)` pairs, one list per LUT.
    factors: Vec<Vec<(usize, i64)>>,
    /// The extracted power of two `t` (`≥ 1`).
    shift: u32,
}

impl MultiLutPlan {
    /// Factor `luts` through a common accumulator, or `None` if no
    /// power of two can be extracted (some `TP_i · (1 − X)` coefficient
    /// is odd) or the LUTs disagree on polynomial size.
    ///
    /// Returns `None` for an empty iterator — there is nothing to plan.
    pub fn build<'a, I>(luts: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Lut>,
    {
        let luts: Vec<&Lut> = luts.into_iter().collect();
        let first = luts.first()?;
        let n = first.polynomial().len();
        if luts.iter().any(|l| l.polynomial().len() != n) {
            return None;
        }
        // d_i = TP_i · (1 − X) over exact signed integers: subtracting
        // X·TP in the negacyclic ring gives d[0] = c[0] + c[N−1] and
        // d[j] = c[j] − c[j−1]. These are the true integer coefficients
        // (|c| < 2^32 keeps them inside i64), so the halving below is
        // exact rather than a wrapping guess.
        let diffs: Vec<Vec<i64>> = luts
            .iter()
            .map(|lut| {
                let c = lut.polynomial().coeffs();
                (0..n)
                    .map(|j| {
                        if j == 0 {
                            c[0].into_raw() as i64 + c[n - 1].into_raw() as i64
                        } else {
                            c[j].into_raw() as i64 - c[j - 1].into_raw() as i64
                        }
                    })
                    .collect()
            })
            .collect();
        let shift = diffs
            .iter()
            .flatten()
            .filter(|&&d| d != 0)
            .map(|d| d.trailing_zeros())
            .min()
            // All-zero LUTs: any shift works, every factor is empty.
            .unwrap_or(1)
            .min(32);
        if shift == 0 {
            return None;
        }
        let factors = diffs
            .iter()
            .map(|d| {
                d.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(j, &v)| (j, v >> shift))
                    .collect()
            })
            .collect();
        let coeff = Torus32::from_raw(1u32 << (shift - 1));
        Some(Self {
            common: Polynomial::from_fn(n, |_| coeff),
            factors,
            shift,
        })
    }

    /// The common test polynomial `w` to blind-rotate once.
    pub fn common(&self) -> &Polynomial<Torus32> {
        &self.common
    }

    /// Number of LUTs in the plan.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Whether the plan covers zero LUTs.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// The extracted power of two `t` (always in `1..=32`).
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// `Σ_j |v_i[j]|` — the worst-case factor by which deriving LUT `i`
    /// amplifies the common accumulator's rotation noise.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn factor_weight(&self, i: usize) -> u64 {
        self.factors[i].iter().map(|&(_, v)| v.unsigned_abs()).sum()
    }

    /// Derive LUT `i`'s rotated accumulator: `v_i ⊙ acc`, the sparse
    /// negacyclic integer-polynomial product applied to every GLWE
    /// component. `O(N · nnz(v_i))` wrapping adds — no transform.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `acc`'s polynomial size differs
    /// from the plan's.
    pub fn derive(&self, i: usize, acc: &GlweCiphertext) -> GlweCiphertext {
        let n = self.common.len();
        assert_eq!(acc.poly_size(), n, "accumulator size mismatch");
        let factor = &self.factors[i];
        let comps = acc
            .components()
            .map(|src| {
                let mut dst = Polynomial::<Torus32>::zero(n);
                for &(j, v) in factor {
                    // dst += v · X^j · src  (X^N = −1 flips the wrap).
                    for (idx, &s) in src.iter().enumerate() {
                        let (out, wrapped) = if idx + j < n {
                            (idx + j, false)
                        } else {
                            (idx + j - n, true)
                        };
                        dst[out] += s.scalar_mul(if wrapped { -v } else { v });
                    }
                }
                dst
            })
            .collect();
        GlweCiphertext::from_components(comps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_trivial_accumulator_reconstructs_each_lut_exactly() {
        // v_i · w must equal TP_i *bit for bit*: deriving from a trivial
        // encryption of w alone has to reproduce the test polynomial.
        let n = 64;
        let luts = [
            Lut::identity(n, 4),
            Lut::from_fn(n, 4, |m| (3 * m + 1) % 4),
            Lut::from_fn(n, 8, |m| m / 2),
            Lut::bool_gate(n),
        ];
        let plan = MultiLutPlan::build(luts.iter()).expect("all step-aligned");
        assert!(plan.shift() >= 1);
        let acc = GlweCiphertext::trivial(plan.common().clone(), 2);
        for (i, lut) in luts.iter().enumerate() {
            let derived = plan.derive(i, &acc);
            assert_eq!(derived.body(), lut.polynomial(), "lut {i}");
            for mask in derived.masks() {
                assert_eq!(mask, &Polynomial::zero(n), "lut {i} masks stay zero");
            }
        }
    }

    #[test]
    fn derivation_commutes_with_rotation() {
        // v_i ⊙ (X^r · ACC) = X^r · (v_i ⊙ ACC): deriving after the blind
        // rotation is the same as rotating the derived accumulator.
        let n = 32;
        let lut = Lut::from_fn(n, 4, |m| (m + 2) % 4);
        let plan = MultiLutPlan::build([&lut]).expect("plan");
        let acc = GlweCiphertext::trivial(plan.common().clone(), 1);
        for r in [1i64, 7, 31, 32, 45] {
            assert_eq!(
                plan.derive(0, &acc.monomial_mul(r)),
                plan.derive(0, &acc).monomial_mul(r),
                "r={r}"
            );
        }
    }

    #[test]
    fn odd_raw_lut_cannot_be_factored() {
        // A LUT with an odd coefficient step leaves no power of two to
        // extract; the plan must refuse rather than halve inexactly.
        let n = 32;
        let odd = Lut::from_torus_fn(n, 2, |m| Torus32::from_raw(if m == 0 { 1 } else { 0 }));
        assert!(MultiLutPlan::build([&odd]).is_none());
        // And one bad LUT poisons the whole batch (t is global).
        let good = Lut::identity(n, 4);
        assert!(MultiLutPlan::build([&good, &odd]).is_none());
    }

    #[test]
    fn zero_lut_gets_an_empty_factor() {
        let n = 32;
        let zero = Lut::from_torus_fn(n, 2, |_| Torus32::ZERO);
        let plan = MultiLutPlan::build([&zero]).expect("zero LUT is trivially factorable");
        assert_eq!(plan.factor_weight(0), 0);
        let acc = GlweCiphertext::trivial(plan.common().clone(), 1);
        assert_eq!(plan.derive(0, &acc), GlweCiphertext::zero(1, n));
    }

    #[test]
    fn mismatched_sizes_and_empty_input_yield_no_plan() {
        assert!(MultiLutPlan::build([]).is_none());
        let a = Lut::identity(32, 4);
        let b = Lut::identity(64, 4);
        assert!(MultiLutPlan::build([&a, &b]).is_none());
    }

    #[test]
    fn factor_weight_bounds_are_small_for_function_luts() {
        // from_fn LUTs change value only at box boundaries, so the sparse
        // factor stays a handful of small entries — the reason derived
        // noise stays comfortably inside the decoding margin.
        let n = 256;
        let lut = Lut::from_fn(n, 4, |m| (3 * m + 1) % 4);
        let plan = MultiLutPlan::build([&lut]).expect("plan");
        assert!(
            plan.factors[0].len() <= 8,
            "sparse: {}",
            plan.factors[0].len()
        );
        assert!(
            plan.factor_weight(0) <= 32,
            "weight {}",
            plan.factor_weight(0)
        );
    }
}
