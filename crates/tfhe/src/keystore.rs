//! Multi-tenant server-key management: a byte-budget LRU cache over a
//! pluggable storage backend, with load-coalescing and pinning.
//!
//! Morphling's throughput case rests on keeping the bootstrapping key
//! resident — BSKs are tens of MB and the key working set is the scarce
//! resource (Fig 1: ≈100 MB in the transform domain at 128-bit
//! parameters). A service fronting *millions* of tenants cannot keep a
//! key per tenant resident; it needs exactly what an accelerator's HBM
//! controller needs: a budgeted cache with eviction, and a guarantee that
//! a key feeding an in-flight batch is never evicted out from under it.
//!
//! The pieces:
//!
//! - [`KeyBackend`]: where serialized keys live ([`MemoryBackend`] for
//!   tests, [`DirBackend`] for a key directory on disk). Blobs use the
//!   checksummed wire format of [`crate::serialize`].
//! - [`KeyStore`]: the cache. `get(tenant)` returns a [`PinnedKey`] —
//!   a clone-cheap handle that holds a pin for its lifetime. Concurrent
//!   misses for one tenant coalesce into a single backend load (the same
//!   double-checked discipline as the crate's transform-engine cache,
//!   plus a condvar because backend loads are slow and fallible).
//! - Eviction: strict LRU over *unpinned* residents. A key that cannot
//!   fit even after evicting every unpinned resident fails loudly with
//!   [`TfheError::KeyBudgetExceeded`] — never a livelock, never thrash.
//! - [`KeyStoreBootstrapper`]: adapts a store to the [`Bootstrapper`]
//!   trait by resolving [`BatchRequest::tenant`] through the cache and
//!   holding the pin for the duration of the batch.
//!
//! Every cache transition is journaled as a [`KeyEvent`] with a
//! store-epoch timestamp, mirroring the resilience journal, so the
//! shared Chrome-trace export can render a `keystore` track and tests
//! can reconcile counters against events.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use crate::bootstrapper::{BatchRequest, Bootstrapper};
use crate::error::TfheError;
use crate::lwe::LweCiphertext;
use crate::serialize::deserialize_server_key;
use crate::server::ServerKey;

/// Mutex guard that shrugs off poisoning: key-cache bookkeeping stays
/// usable even if a panicking thread died mid-update (same policy as the
/// dispatcher's counters).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identifies one tenant's key material in a [`KeyStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u64);

impl TenantId {
    /// Wrap a raw tenant number.
    pub const fn new(id: u64) -> Self {
        Self(id)
    }

    /// The raw tenant number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

impl From<u64> for TenantId {
    fn from(id: u64) -> Self {
        Self(id)
    }
}

/// Where serialized server keys live. Implementations must be cheap to
/// share across threads; `load` may be slow (disk, network) — the store
/// never holds its cache lock across a `load`.
pub trait KeyBackend: Send + Sync {
    /// Fetch the serialized [`ServerKey`] blob for `tenant`.
    ///
    /// # Errors
    ///
    /// [`TfheError::KeyNotFound`] if the backend has no blob for this
    /// tenant; [`TfheError::KeyCorrupted`] if the blob cannot be read.
    fn load(&self, tenant: TenantId) -> Result<Vec<u8>, TfheError>;
}

/// An in-memory backend: a map of serialized blobs (tests, seeding,
/// single-process serving).
#[derive(Default)]
pub struct MemoryBackend {
    blobs: RwLock<HashMap<u64, Vec<u8>>>,
}

impl MemoryBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a raw serialized blob for `tenant` (replacing any previous
    /// one).
    pub fn insert(&self, tenant: TenantId, blob: Vec<u8>) {
        self.blobs
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(tenant.raw(), blob);
    }

    /// Serialize `key` and store it for `tenant`.
    pub fn insert_server_key(&self, tenant: TenantId, key: &ServerKey) {
        self.insert(tenant, crate::serialize::serialize_server_key(key));
    }
}

impl KeyBackend for MemoryBackend {
    fn load(&self, tenant: TenantId) -> Result<Vec<u8>, TfheError> {
        self.blobs
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&tenant.raw())
            .cloned()
            .ok_or(TfheError::KeyNotFound {
                tenant: tenant.raw(),
            })
    }
}

/// A directory-backed backend: one `tenant-<id>.key` file per tenant.
#[derive(Clone, Debug)]
pub struct DirBackend {
    root: PathBuf,
}

impl DirBackend {
    /// Serve keys from `root` (created on first `store` if missing).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The file path holding `tenant`'s blob.
    pub fn path_for(&self, tenant: TenantId) -> PathBuf {
        self.root.join(format!("tenant-{}.key", tenant.raw()))
    }

    /// Write a serialized blob for `tenant`.
    ///
    /// # Errors
    ///
    /// [`TfheError::KeyCorrupted`] wrapping the I/O failure, if any.
    pub fn store(&self, tenant: TenantId, blob: &[u8]) -> Result<(), TfheError> {
        std::fs::create_dir_all(&self.root).map_err(|e| TfheError::KeyCorrupted {
            detail: format!("cannot create key directory {}: {e}", self.root.display()),
        })?;
        std::fs::write(self.path_for(tenant), blob).map_err(|e| TfheError::KeyCorrupted {
            detail: format!("cannot write key for {tenant}: {e}"),
        })
    }

    /// Serialize `key` and write it for `tenant`.
    ///
    /// # Errors
    ///
    /// Same as [`store`](Self::store).
    pub fn store_server_key(&self, tenant: TenantId, key: &ServerKey) -> Result<(), TfheError> {
        self.store(tenant, &crate::serialize::serialize_server_key(key))
    }
}

impl KeyBackend for DirBackend {
    fn load(&self, tenant: TenantId) -> Result<Vec<u8>, TfheError> {
        match std::fs::read(self.path_for(tenant)) {
            Ok(blob) => Ok(blob),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(TfheError::KeyNotFound {
                tenant: tenant.raw(),
            }),
            Err(e) => Err(TfheError::KeyCorrupted {
                detail: format!("cannot read key for {tenant}: {e}"),
            }),
        }
    }
}

/// What happened to a tenant's cache entry (see [`KeyEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyEventKind {
    /// A serve hit an already-resident key.
    Hit,
    /// A serve missed; a backend load was started (or joined).
    Miss,
    /// A backend load + deserialize completed and the key became
    /// resident.
    Load {
        /// Resident bytes the key accounts for.
        bytes: u64,
    },
    /// An unpinned resident was evicted to make room.
    Evict {
        /// Bytes released.
        bytes: u64,
    },
    /// A pin was taken (key in use by an in-flight batch).
    Pin,
    /// A pin was released.
    Unpin,
    /// A backend blob failed deserialization ([`TfheError::KeyCorrupted`]).
    Corrupt,
}

impl KeyEventKind {
    /// Short stable label (trace span names, journal reconciliation).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::Load { .. } => "load",
            Self::Evict { .. } => "evict",
            Self::Pin => "pin",
            Self::Unpin => "unpin",
            Self::Corrupt => "corrupt",
        }
    }
}

/// One journaled keystore transition, timestamped against
/// [`KeyStore::epoch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyEvent {
    /// When it happened, relative to the store's epoch.
    pub at: Duration,
    /// The tenant involved.
    pub tenant: u64,
    /// What happened.
    pub kind: KeyEventKind,
}

/// The journal shared by the store and every outstanding [`PinnedKey`]
/// (pins outlive `get` calls, so unpin events need a handle of their
/// own).
#[derive(Debug)]
struct KeyJournal {
    epoch: Instant,
    events: Mutex<Vec<KeyEvent>>,
}

impl KeyJournal {
    fn record(&self, tenant: TenantId, kind: KeyEventKind) {
        let at = self.epoch.elapsed();
        lock(&self.events).push(KeyEvent {
            at,
            tenant: tenant.raw(),
            kind,
        });
    }
}

/// A snapshot of the store's counters (all monotonic except
/// `bytes_resident`/`resident_keys`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KeyStoreStats {
    /// Serves satisfied by a resident key.
    pub hits: u64,
    /// Serves that had to load (or join a load in flight).
    pub misses: u64,
    /// Completed backend loads.
    pub loads: u64,
    /// Backend loads that failed (missing or corrupt blobs).
    pub load_failures: u64,
    /// Keys evicted to make room.
    pub evictions: u64,
    /// Bytes currently resident.
    pub bytes_resident: u64,
    /// Keys currently resident.
    pub resident_keys: u64,
}

/// A resident cache entry.
struct Resident {
    key: Arc<ServerKey>,
    bytes: u64,
    last_used: u64,
    pins: Arc<AtomicUsize>,
}

enum Entry {
    /// A load is in flight; waiters sleep on the store condvar.
    Loading,
    Ready(Resident),
}

struct Inner {
    map: HashMap<u64, Entry>,
    /// LRU clock: bumped on every touch.
    tick: u64,
    bytes: u64,
}

/// A byte-budget LRU cache of deserialized [`ServerKey`]s over a
/// [`KeyBackend`].
///
/// ```
/// use std::sync::Arc;
/// use morphling_tfhe::{ClientKey, KeyStore, MemoryBackend, ParamSet, ServerKey, TenantId};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
/// let sk = ServerKey::new(&ck, &mut rng);
///
/// let backend = Arc::new(MemoryBackend::new());
/// backend.insert_server_key(TenantId::new(1), &sk);
/// let store = KeyStore::new(backend, 64 << 20);
/// let pinned = store.get(TenantId::new(1)).unwrap();
/// assert_eq!(pinned.params().poly_size, 256);
/// ```
pub struct KeyStore {
    backend: Arc<dyn KeyBackend>,
    budget: u64,
    inner: Mutex<Inner>,
    loaded: Condvar,
    journal: Arc<KeyJournal>,
    hits: AtomicU64,
    misses: AtomicU64,
    loads: AtomicU64,
    load_failures: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyStore")
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Resident-size accounting for one key: the transform-domain BSK plus
/// the KSK — the working set the paper's Fig 1 is about.
pub fn server_key_bytes(key: &ServerKey) -> u64 {
    key.bootstrap_key().fourier_bytes() + key.key_switch_key().bytes()
}

impl KeyStore {
    /// A store serving from `backend` under `budget_bytes` of resident
    /// key material.
    pub fn new(backend: Arc<dyn KeyBackend>, budget_bytes: u64) -> Self {
        Self {
            backend,
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            loaded: Condvar::new(),
            journal: Arc::new(KeyJournal {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// The journal's epoch (timestamps in [`events`](Self::events) are
    /// relative to this instant).
    pub fn epoch(&self) -> Instant {
        self.journal.epoch
    }

    /// Snapshot of the journaled cache transitions.
    pub fn events(&self) -> Vec<KeyEvent> {
        lock(&self.journal.events).clone()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> KeyStoreStats {
        let (bytes_resident, resident_keys) = {
            let inner = lock(&self.inner);
            let keys = inner
                .map
                .values()
                .filter(|e| matches!(e, Entry::Ready(_)))
                .count() as u64;
            (inner.bytes, keys)
        };
        KeyStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_resident,
            resident_keys,
        }
    }

    /// Serve `tenant`'s key, loading (and possibly evicting) as needed.
    /// The returned [`PinnedKey`] holds a pin: the key cannot be evicted
    /// until every pin is dropped.
    ///
    /// Concurrent misses for the same tenant coalesce: exactly one
    /// caller performs the backend load and deserialization; the rest
    /// wait and share the result (or observe the same failure and
    /// retry-or-fail on their own).
    ///
    /// # Errors
    ///
    /// [`TfheError::KeyNotFound`] / [`TfheError::KeyCorrupted`] from the
    /// backend or deserializer; [`TfheError::KeyBudgetExceeded`] if the
    /// key cannot fit even after evicting every unpinned resident.
    pub fn get(&self, tenant: TenantId) -> Result<PinnedKey, TfheError> {
        let t = tenant.raw();
        // Phase 1: hit, join an in-flight load, or claim the load slot.
        {
            let mut inner = lock(&self.inner);
            loop {
                match inner.map.get(&t) {
                    Some(Entry::Ready(_)) => {
                        inner.tick += 1;
                        let tick = inner.tick;
                        let Some(Entry::Ready(r)) = inner.map.get_mut(&t) else {
                            unreachable!("entry vanished while locked");
                        };
                        r.last_used = tick;
                        let pinned = self.pin(tenant, r);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.journal.record(tenant, KeyEventKind::Hit);
                        return Ok(pinned);
                    }
                    Some(Entry::Loading) => {
                        // Coalesce: sleep until the loader resolves this
                        // entry (Ready or removed), then re-check.
                        inner = self
                            .loaded
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        self.journal.record(tenant, KeyEventKind::Miss);
                        inner.map.insert(t, Entry::Loading);
                        break;
                    }
                }
            }
        }
        // Phase 2: we own the Loading slot — do the slow work unlocked.
        let loaded = self
            .backend
            .load(tenant)
            .and_then(|blob| deserialize_server_key(&blob));
        let key = match loaded {
            Ok(key) => Arc::new(key),
            Err(e) => {
                self.load_failures.fetch_add(1, Ordering::Relaxed);
                if matches!(e, TfheError::KeyCorrupted { .. }) {
                    self.journal.record(tenant, KeyEventKind::Corrupt);
                }
                let mut inner = lock(&self.inner);
                inner.map.remove(&t);
                self.loaded.notify_all();
                return Err(e);
            }
        };
        let need = server_key_bytes(&key);
        // Phase 3: make room and publish.
        let mut inner = lock(&self.inner);
        if let Err(e) = self.evict_for(&mut inner, need) {
            inner.map.remove(&t);
            self.loaded.notify_all();
            self.load_failures.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        inner.tick += 1;
        let tick = inner.tick;
        let mut resident = Resident {
            key,
            bytes: need,
            last_used: tick,
            pins: Arc::new(AtomicUsize::new(0)),
        };
        let pinned = self.pin(tenant, &mut resident);
        inner.bytes += need;
        inner.map.insert(t, Entry::Ready(resident));
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.journal
            .record(tenant, KeyEventKind::Load { bytes: need });
        self.loaded.notify_all();
        Ok(pinned)
    }

    /// Take a pin on `r` and build the guard.
    fn pin(&self, tenant: TenantId, r: &mut Resident) -> PinnedKey {
        r.pins.fetch_add(1, Ordering::SeqCst);
        self.journal.record(tenant, KeyEventKind::Pin);
        PinnedKey {
            key: Arc::clone(&r.key),
            pins: Arc::clone(&r.pins),
            tenant,
            journal: Arc::clone(&self.journal),
        }
    }

    /// Evict LRU unpinned residents until `need` more bytes fit the
    /// budget. Fails loudly — never waits on a pin (that way lies
    /// livelock when the pin holder is itself waiting on this load).
    fn evict_for(&self, inner: &mut Inner, need: u64) -> Result<(), TfheError> {
        if need > self.budget {
            return Err(TfheError::KeyBudgetExceeded {
                budget: self.budget,
                need,
            });
        }
        while inner.bytes + need > self.budget {
            let victim = inner
                .map
                .iter()
                .filter_map(|(&t, e)| match e {
                    Entry::Ready(r) if r.pins.load(Ordering::SeqCst) == 0 => Some((t, r.last_used)),
                    _ => None,
                })
                .min_by_key(|&(_, last_used)| last_used)
                .map(|(t, _)| t);
            let Some(victim) = victim else {
                // Everything resident is pinned (or loading): evicting
                // nothing more can ever free the bytes, so fail now.
                return Err(TfheError::KeyBudgetExceeded {
                    budget: self.budget.saturating_sub(inner.bytes),
                    need,
                });
            };
            if let Some(Entry::Ready(r)) = inner.map.remove(&victim) {
                inner.bytes -= r.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.journal.record(
                    TenantId::new(victim),
                    KeyEventKind::Evict { bytes: r.bytes },
                );
            }
        }
        Ok(())
    }
}

/// A pinned, resident server key: dereferences to [`ServerKey`] and
/// holds its pin until dropped — the store will not evict the key while
/// any `PinnedKey` for it is alive.
pub struct PinnedKey {
    key: Arc<ServerKey>,
    pins: Arc<AtomicUsize>,
    tenant: TenantId,
    journal: Arc<KeyJournal>,
}

impl PinnedKey {
    /// The tenant this key serves.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The shared key handle (outlives the pin — cloning the `Arc` does
    /// NOT extend eviction protection).
    pub fn key(&self) -> &Arc<ServerKey> {
        &self.key
    }
}

impl std::ops::Deref for PinnedKey {
    type Target = ServerKey;

    fn deref(&self) -> &ServerKey {
        &self.key
    }
}

impl Drop for PinnedKey {
    fn drop(&mut self) {
        // Journal BEFORE releasing the pin: the store only evicts at pin
        // count zero, and every count-zero observation happens after the
        // release below — so in journal order, every tenant's pin/unpin
        // balance is exactly zero at each of its evict events. Chaos
        // tests reconstruct that balance to prove pinned keys are never
        // evicted.
        self.journal.record(self.tenant, KeyEventKind::Unpin);
        self.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for PinnedKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedKey")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

/// Adapts a [`KeyStore`] to the [`Bootstrapper`] trait: each batch is
/// served by the key of its [`BatchRequest::tenant`], pinned for the
/// duration of the call. Requests without a tenant fall back to the
/// configured default key, or fail with [`TfheError::NoTenantProvided`].
#[derive(Clone, Debug)]
pub struct KeyStoreBootstrapper {
    store: Arc<KeyStore>,
    default: Option<Arc<ServerKey>>,
}

impl KeyStoreBootstrapper {
    /// Serve every batch through `store` (no default key: tenant-less
    /// requests fail).
    pub fn new(store: Arc<KeyStore>) -> Self {
        Self {
            store,
            default: None,
        }
    }

    /// Serve tenant-less requests with `key` instead of failing.
    pub fn with_default(mut self, key: Arc<ServerKey>) -> Self {
        self.default = Some(key);
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<KeyStore> {
        &self.store
    }
}

impl Bootstrapper for KeyStoreBootstrapper {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        match req.tenant() {
            Some(tenant) => {
                // The pin lives across the whole batch: eviction of this
                // key is impossible while the bootstraps run.
                let pinned = self.store.get(tenant)?;
                pinned.try_bootstrap_batch(req)
            }
            None => match &self.default {
                Some(key) => key.try_bootstrap_batch(req),
                None => Err(TfheError::NoTenantProvided),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seeded_backend(tenants: &[u64], seed: u64) -> (Arc<MemoryBackend>, Vec<ClientKey>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let backend = Arc::new(MemoryBackend::new());
        let mut clients = Vec::new();
        for &t in tenants {
            let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
            let sk = ServerKey::new(&ck, &mut rng);
            backend.insert_server_key(TenantId::new(t), &sk);
            clients.push(ck);
        }
        (backend, clients)
    }

    fn one_key_bytes() -> u64 {
        let p = ParamSet::Test.params();
        p.bsk_total_bytes_fourier() + p.ksk_total_bytes()
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let (backend, _) = seeded_backend(&[1, 2, 3], 0xA0);
        // Budget for exactly two keys.
        let store = KeyStore::new(backend, 2 * one_key_bytes());
        drop(store.get(TenantId::new(1)).unwrap());
        drop(store.get(TenantId::new(2)).unwrap());
        drop(store.get(TenantId::new(1)).unwrap()); // bump 1's recency
        drop(store.get(TenantId::new(3)).unwrap()); // evicts 2 (LRU)
        let stats = store.stats();
        assert_eq!(stats.loads, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident_keys, 2);
        assert_eq!(stats.bytes_resident, 2 * one_key_bytes());
        // Tenant 1 is still a hit; tenant 2 must reload.
        drop(store.get(TenantId::new(1)).unwrap());
        assert_eq!(store.stats().hits, 2);
        drop(store.get(TenantId::new(2)).unwrap());
        assert_eq!(store.stats().loads, 4);
        // The evict event named tenant 2.
        let evicts: Vec<u64> = store
            .events()
            .iter()
            .filter(|e| e.kind.label() == "evict")
            .map(|e| e.tenant)
            .collect();
        assert!(evicts.contains(&2));
    }

    #[test]
    fn pinned_keys_are_never_evicted() {
        let (backend, _) = seeded_backend(&[1, 2], 0xA1);
        let store = KeyStore::new(backend, one_key_bytes());
        let pinned = store.get(TenantId::new(1)).unwrap();
        // Loading tenant 2 cannot evict the pinned key: loud failure.
        let err = store.get(TenantId::new(2)).unwrap_err();
        assert!(matches!(err, TfheError::KeyBudgetExceeded { .. }), "{err}");
        assert_eq!(store.stats().evictions, 0);
        drop(pinned);
        // With the pin gone the same load succeeds by evicting tenant 1.
        drop(store.get(TenantId::new(2)).unwrap());
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn key_larger_than_budget_fails_loudly() {
        let (backend, _) = seeded_backend(&[1], 0xA2);
        let store = KeyStore::new(backend, one_key_bytes() - 1);
        let err = store.get(TenantId::new(1)).unwrap_err();
        assert_eq!(
            err,
            TfheError::KeyBudgetExceeded {
                budget: one_key_bytes() - 1,
                need: one_key_bytes(),
            }
        );
        // The Loading slot was cleaned up: a retry fails the same way
        // rather than deadlocking on a stale entry.
        assert!(store.get(TenantId::new(1)).is_err());
    }

    #[test]
    fn missing_and_corrupt_blobs_surface_typed_errors() {
        let (backend, _) = seeded_backend(&[1], 0xA3);
        backend.insert(TenantId::new(9), b"MPHKgarbage".to_vec());
        let store = KeyStore::new(backend, 4 * one_key_bytes());
        assert_eq!(
            store.get(TenantId::new(5)).unwrap_err(),
            TfheError::KeyNotFound { tenant: 5 }
        );
        assert!(matches!(
            store.get(TenantId::new(9)).unwrap_err(),
            TfheError::KeyCorrupted { .. }
        ));
        let stats = store.stats();
        assert_eq!(stats.load_failures, 2);
        assert_eq!(
            store
                .events()
                .iter()
                .filter(|e| e.kind.label() == "corrupt")
                .count(),
            1
        );
        // A good tenant still serves.
        assert!(store.get(TenantId::new(1)).is_ok());
    }

    #[test]
    fn concurrent_misses_coalesce_into_one_load() {
        let (backend, _) = seeded_backend(&[1], 0xA4);
        let store = Arc::new(KeyStore::new(backend, 4 * one_key_bytes()));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let pinned = store.get(TenantId::new(1)).unwrap();
                    assert_eq!(pinned.tenant(), TenantId::new(1));
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.loads, 1, "all misses coalesced into one load");
        assert_eq!(stats.hits + stats.misses, 8);
    }

    #[test]
    fn keystore_bootstrapper_serves_per_tenant_keys() {
        let mut rng = StdRng::seed_from_u64(0xA5);
        let params = ParamSet::Test.params();
        let backend = Arc::new(MemoryBackend::new());
        let mut clients = Vec::new();
        for t in 0..2u64 {
            let ck = ClientKey::generate(params.clone(), &mut rng);
            let sk = ServerKey::new(&ck, &mut rng);
            backend.insert_server_key(TenantId::new(t), &sk);
            clients.push(ck);
        }
        let store = Arc::new(KeyStore::new(backend, 4 * one_key_bytes()));
        let boot = KeyStoreBootstrapper::new(Arc::clone(&store));
        let lut = crate::Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4);
        for (t, ck) in clients.iter().enumerate() {
            let ct = ck.encrypt(2, &mut rng);
            let req =
                BatchRequest::shared(vec![ct], lut.clone()).with_tenant(TenantId::new(t as u64));
            let out = boot.try_bootstrap_batch(&req).unwrap();
            assert_eq!(ck.decrypt(&out[0]), 3, "tenant {t}");
        }
        // No tenant and no default: typed failure.
        let ct = clients[0].encrypt(1, &mut rng);
        let req = BatchRequest::shared(vec![ct], lut.clone());
        assert_eq!(
            boot.try_bootstrap_batch(&req).unwrap_err(),
            TfheError::NoTenantProvided
        );
        // With a default key, tenant-less requests serve.
        let pinned = store.get(TenantId::new(0)).unwrap();
        let boot = boot.with_default(Arc::clone(pinned.key()));
        let ct = clients[0].encrypt(1, &mut rng);
        let req = BatchRequest::shared(vec![ct], lut);
        let out = boot.try_bootstrap_batch(&req).unwrap();
        assert_eq!(clients[0].decrypt(&out[0]), 2);
    }

    #[test]
    fn dir_backend_round_trips_through_disk() {
        let mut rng = StdRng::seed_from_u64(0xA6);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let dir = std::env::temp_dir().join(format!("morphling-keystore-{}", std::process::id()));
        let backend = DirBackend::new(&dir);
        backend.store_server_key(TenantId::new(3), &sk).unwrap();
        let store = KeyStore::new(Arc::new(backend.clone()), 4 * one_key_bytes());
        let pinned = store.get(TenantId::new(3)).unwrap();
        let lut = crate::Lut::identity(sk.params().poly_size, 4);
        let ct = ck.encrypt(1, &mut rng);
        assert_eq!(
            pinned.programmable_bootstrap(&ct, &lut),
            sk.programmable_bootstrap(&ct, &lut)
        );
        assert_eq!(
            store.get(TenantId::new(4)).unwrap_err(),
            TfheError::KeyNotFound { tenant: 4 }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_reconciles_with_counters() {
        let (backend, _) = seeded_backend(&[1, 2], 0xA7);
        let store = KeyStore::new(backend, one_key_bytes());
        drop(store.get(TenantId::new(1)).unwrap());
        drop(store.get(TenantId::new(2)).unwrap());
        drop(store.get(TenantId::new(1)).unwrap());
        let events = store.events();
        let count = |label: &str| events.iter().filter(|e| e.kind.label() == label).count() as u64;
        let stats = store.stats();
        assert_eq!(count("hit"), stats.hits);
        assert_eq!(count("miss"), stats.misses);
        assert_eq!(count("load"), stats.loads);
        assert_eq!(count("evict"), stats.evictions);
        assert_eq!(count("pin"), count("unpin"), "all pins released");
        // Timestamps are monotone against the epoch.
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }
}
