//! Process-global caches of transform engines keyed by polynomial size.
//!
//! Hot paths (key generation, encryption, bootstrapping) must not rebuild
//! twiddle tables, and the [`BootstrapEngine`](crate::BootstrapEngine)'s
//! worker pool must *share* one engine per size across threads — Morphling
//! itself banks one set of transform twiddles for all 16 bootstrapping
//! cores. The caches are therefore `Arc`-based and global (a
//! `OnceLock<RwLock<HashMap>>` per transform kind), not thread-local:
//! every thread that asks for size `N` gets a handle to the same
//! immutable engine, built exactly once.
//!
//! Reads (the steady state) take only the `RwLock` read lock; the write
//! lock is taken once per distinct polynomial size for the lifetime of
//! the process.
//!
//! The caches recover from lock poisoning: a thread that panics while
//! holding a cache lock (e.g. an injected chaos fault landing inside a
//! builder) must not take the process-global cache down with it. Cached
//! values are insert-only `Arc`s, so the worst a poisoned write can leave
//! behind is a missing entry — safe to rebuild.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use morphling_transform::{NegacyclicFft, NegacyclicNtt};

type Cache<T> = OnceLock<RwLock<HashMap<usize, Arc<T>>>>;

static FFT_CACHE: Cache<NegacyclicFft> = OnceLock::new();
static NTT_CACHE: Cache<NegacyclicNtt> = OnceLock::new();

fn get_or_build<T>(cache: &Cache<T>, n: usize, build: impl FnOnce(usize) -> T) -> Arc<T> {
    let lock = cache.get_or_init(|| RwLock::new(HashMap::new()));
    let read = lock.read().unwrap_or_else(|poisoned| {
        lock.clear_poison();
        poisoned.into_inner()
    });
    if let Some(engine) = read.get(&n) {
        return Arc::clone(engine);
    }
    drop(read);
    let mut map = lock.write().unwrap_or_else(|poisoned| {
        lock.clear_poison();
        poisoned.into_inner()
    });
    // Double-checked: another thread may have built it between our read
    // and write lock acquisitions.
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(build(n))))
}

/// Fetch (or build) the process-wide FFT engine for polynomial size `n`.
pub(crate) fn fft_for(n: usize) -> Arc<NegacyclicFft> {
    get_or_build(&FFT_CACHE, n, NegacyclicFft::new)
}

/// Fetch (or build) the process-wide NTT engine for polynomial size `n`.
pub(crate) fn ntt_for(n: usize) -> Arc<NegacyclicNtt> {
    get_or_build(&NTT_CACHE, n, NegacyclicNtt::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_same_engine() {
        let a = fft_for(64);
        let b = fft_for(64);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(fft_for(128).poly_len(), 128);
    }

    #[test]
    fn cache_is_shared_across_threads() {
        let here = fft_for(64);
        let there = std::thread::spawn(|| fft_for(64)).join().expect("no panic");
        assert!(
            Arc::ptr_eq(&here, &there),
            "global cache must hand every thread the same engine"
        );
    }

    #[test]
    fn ntt_cache_returns_same_engine() {
        let a = ntt_for(64);
        let b = ntt_for(64);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn poisoned_cache_lock_recovers() {
        // Warm an entry, then poison the lock by panicking while holding
        // the write guard — the cache must keep serving (and keep its
        // existing entries) instead of propagating the poison forever.
        let before = fft_for(64);
        let poison = std::thread::spawn(|| {
            let lock = FFT_CACHE.get_or_init(|| RwLock::new(HashMap::new()));
            let _guard = lock.write().unwrap_or_else(|p| p.into_inner());
            panic!("poison the transform cache on purpose");
        })
        .join();
        assert!(poison.is_err(), "the poisoning thread must have panicked");
        let after = fft_for(64);
        assert!(
            Arc::ptr_eq(&before, &after),
            "recovered cache must still hold the pre-poison entry"
        );
        // New sizes still build after recovery.
        assert_eq!(fft_for(256).poly_len(), 256);
    }

    #[test]
    fn concurrent_first_access_builds_once() {
        // Hammer an uncommon size from many threads; every handle must
        // alias a single allocation.
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| fft_for(512)))
            .collect();
        let engines: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        for e in &engines[1..] {
            assert!(Arc::ptr_eq(&engines[0], e));
        }
    }
}
