//! A per-thread cache of [`NegacyclicFft`] engines keyed by polynomial
//! size, so hot paths (key generation, encryption) don't rebuild twiddle
//! tables.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use morphling_transform::NegacyclicFft;

thread_local! {
    static CACHE: RefCell<HashMap<usize, Rc<NegacyclicFft>>> = RefCell::new(HashMap::new());
}

/// Fetch (or build) the shared engine for size `n`.
pub(crate) fn fft_for(n: usize) -> Rc<NegacyclicFft> {
    CACHE.with(|c| {
        Rc::clone(
            c.borrow_mut().entry(n).or_insert_with(|| Rc::new(NegacyclicFft::new(n))),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_same_engine() {
        let a = fft_for(64);
        let b = fft_for(64);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(fft_for(128).poly_len(), 128);
    }
}
