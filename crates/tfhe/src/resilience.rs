//! Service-level resilience: retry policy, circuit breaking, and
//! degraded-mode failover across [`Bootstrapper`] backends.
//!
//! PR 3's [`BootstrapEngine`](crate::BootstrapEngine) made the *engine*
//! survive faults (watchdog, respawn, bounded retry inside the pool); this
//! module makes the *service* survive them. Three pieces compose:
//!
//! - [`RetryPolicy`]: bounded re-dispatch with exponential backoff and
//!   **deterministic seeded jitter** (the same SplitMix64 stream the fault
//!   injector uses, so a chaos run's backoff schedule replays exactly).
//!   What is worth retrying is decided by
//!   [`TfheError::is_retryable`] — transient infrastructure faults
//!   (worker panics, wedged jobs, corrupted outputs, dead engines) retry;
//!   permanent request errors (validation) never do.
//! - [`CircuitBreaker`]: a Closed → Open → HalfOpen state machine driven
//!   by a rolling failure-rate window and (optionally) a polled
//!   [`EngineHealth`] probe. While open, admission fails fast with
//!   [`TfheError::Overloaded`] instead of queueing work that will die;
//!   after a cooldown, half-open probe traffic decides between closing
//!   (recovered) and re-opening (still sick).
//! - [`FailoverBootstrapper`]: an ordered list of backends (e.g.
//!   `BootstrapEngine` → `ParallelServerKey` → `ServerKey`), each behind
//!   its own breaker. Requests are served by the first admitting tier;
//!   when the primary's breaker opens the service *degrades* to the next
//!   tier instead of failing, and half-open probes restore the primary
//!   once it recovers. Because every [`Bootstrapper`] backend is
//!   bit-identical on the same request (the conformance contract), a
//!   failover is invisible to the caller except in latency.
//!
//! Every retry, breaker transition, and failover is journaled as a
//! [`ResilienceEvent`] into a [`ResilienceJournal`] (shareable across
//! components so one timeline covers the whole serving stack) and
//! rendered into the Chrome trace by
//! `morphling_core::trace::ExecutionTrace::add_resilience_events`.
//!
//! # Degraded-mode serving in one picture
//!
//! ```text
//!            ┌────────────── FailoverBootstrapper ──────────────┐
//! request ──▶│ tier 0: BootstrapEngine   [breaker: Open]   skip │
//!            │ tier 1: ParallelServerKey [breaker: Closed] serve│──▶ result
//!            │ tier 2: ServerKey         [breaker: Closed]      │
//!            └──────────────────────────────────────────────────┘
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::bootstrapper::{BatchRequest, Bootstrapper};
use crate::engine::EngineHealth;
use crate::error::TfheError;
use crate::faults::unit_sample;
use crate::lwe::LweCiphertext;

/// Hash-domain separator for retry jitter (disjoint from the fault
/// injector's site domains, so jitter never aliases injection decisions).
const JITTER_DOMAIN: u64 = 0x6a_69_74_74;

/// Ignore lock poisoning: resilience state stays consistent across panics
/// (counters are atomics; the window/journal are repaired by later calls).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded retry with exponential backoff and deterministic seeded jitter.
///
/// `max_retries` counts *re*-dispatches: a policy of 2 allows three total
/// attempts. Backoff for attempt `a` (1-based) is
/// `min(base · 2^(a−1), max)`, scaled by a jitter factor drawn
/// deterministically from `(seed, key, attempt)` — two runs with the same
/// seed and request keys back off identically, which keeps chaos tests
/// reproducible while still de-synchronizing concurrent retriers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    max_retries: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    jitter: f64,
    seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// No retries at all — every failure surfaces immediately.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Up to `max_retries` re-dispatches, starting from a 200 µs backoff
    /// doubling up to 50 ms, with half-width jitter and seed 0.
    pub fn new(max_retries: u32) -> Self {
        Self {
            max_retries,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(50),
            jitter: 0.5,
            seed: 0,
        }
    }

    /// Set the first-retry backoff (doubles each further attempt).
    #[must_use]
    pub fn with_base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Cap the exponential backoff.
    #[must_use]
    pub fn with_max_backoff(mut self, max: Duration) -> Self {
        self.max_backoff = max;
        self
    }

    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor in
    /// `[1 − jitter, 1]`, drawn deterministically from the seed.
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self.seed = seed;
        self
    }

    /// The retry budget (re-dispatches after the first attempt).
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The first-retry backoff (doubles each further attempt).
    pub fn base_backoff(&self) -> Duration {
        self.base_backoff
    }

    /// The exponential-backoff cap.
    pub fn max_backoff(&self) -> Duration {
        self.max_backoff
    }

    /// The jitter fraction in `[0, 1]`.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// The seed the deterministic jitter draws from.
    pub fn jitter_seed(&self) -> u64 {
        self.seed
    }

    /// Should a request that failed with `err` after `attempt` completed
    /// retries be retried once more? `true` only for
    /// [retryable](TfheError::is_retryable) faults within budget.
    pub fn should_retry(&self, err: &TfheError, attempt: u32) -> bool {
        err.is_retryable() && attempt < self.max_retries
    }

    /// Backoff before retry `attempt` (1-based) of the request identified
    /// by `key`. Pure function of `(policy, key, attempt)`.
    pub fn backoff(&self, key: u64, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let shift = attempt.saturating_sub(1).min(16);
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << shift)
            .min(self.max_backoff.max(self.base_backoff));
        if self.jitter <= 0.0 {
            return exp;
        }
        let unit = unit_sample(self.seed, JITTER_DOMAIN, key, attempt);
        exp.mul_f64(1.0 - self.jitter * unit)
    }
}

// ---------------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------------

/// What happened in one resilience incident.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResilienceEventKind {
    /// A request was re-dispatched after a retryable failure.
    Retry {
        /// Retry number (1 = first re-dispatch).
        attempt: u32,
    },
    /// A breaker tripped open: admission now fails fast.
    BreakerOpen,
    /// A breaker's cooldown elapsed; probe traffic is being admitted.
    BreakerHalfOpen,
    /// A half-open probe succeeded and the breaker closed (recovered).
    BreakerClose,
    /// A failover tier was skipped because its breaker refused admission.
    TierSkipped,
    /// A request moved to a lower tier after the one before it failed.
    Failover {
        /// Tier that failed the request.
        from: String,
        /// Tier that received it instead.
        to: String,
    },
    /// An admission was shed at the front door (dispatcher breaker open).
    Shed,
}

impl ResilienceEventKind {
    /// Short lower-case label used as the trace span name.
    pub fn label(&self) -> &'static str {
        match self {
            ResilienceEventKind::Retry { .. } => "retry",
            ResilienceEventKind::BreakerOpen => "breaker_open",
            ResilienceEventKind::BreakerHalfOpen => "breaker_half_open",
            ResilienceEventKind::BreakerClose => "breaker_close",
            ResilienceEventKind::TierSkipped => "tier_skipped",
            ResilienceEventKind::Failover { .. } => "failover",
            ResilienceEventKind::Shed => "shed",
        }
    }
}

/// One timestamped resilience incident: when, which component, what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResilienceEvent {
    /// When the incident happened, measured from the journal's epoch.
    pub at: Duration,
    /// The component it happened in (a tier name, a breaker name, or
    /// `"dispatcher"`).
    pub scope: String,
    /// What happened.
    pub kind: ResilienceEventKind,
}

/// A shared, append-only timeline of [`ResilienceEvent`]s.
///
/// One journal can be threaded through a breaker, a failover stack, and a
/// dispatcher so all their incidents share a single epoch — the property
/// that lets the Chrome trace line retries up under breaker transitions.
#[derive(Debug)]
pub struct ResilienceJournal {
    epoch: Instant,
    events: Mutex<Vec<ResilienceEvent>>,
}

impl Default for ResilienceJournal {
    fn default() -> Self {
        Self::new()
    }
}

impl ResilienceJournal {
    /// An empty journal with its epoch at now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The instant event timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Append one incident, stamped now.
    pub fn record(&self, scope: &str, kind: ResilienceEventKind) {
        let at = Instant::now().saturating_duration_since(self.epoch);
        lock(&self.events).push(ResilienceEvent {
            at,
            scope: scope.to_string(),
            kind,
        });
    }

    /// Snapshot of every event so far, in record order.
    pub fn events(&self) -> Vec<ResilienceEvent> {
        lock(&self.events).clone()
    }

    /// Events of one kind-label (`"retry"`, `"failover"`, …), counted.
    pub fn count(&self, label: &str) -> usize {
        lock(&self.events)
            .iter()
            .filter(|e| e.kind.label() == label)
            .count()
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// The breaker's admission state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Normal service: everything admitted, outcomes feed the window.
    #[default]
    Closed,
    /// Tripped: admission fails fast with [`TfheError::Overloaded`] until
    /// the cooldown elapses.
    Open,
    /// Cooldown elapsed: requests are admitted as probes; enough
    /// successes close the breaker, any failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Short lower-case label for traces and logs.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Configures a [`CircuitBreaker`]. All knobs clamp to sane minimums, so
/// [`build`](Self::build) is infallible.
pub struct CircuitBreakerBuilder {
    name: String,
    window: usize,
    failure_threshold: f64,
    min_samples: usize,
    cooldown: Duration,
    probes_to_close: u32,
    health: Option<Arc<dyn Fn() -> EngineHealth + Send + Sync>>,
    journal: Option<Arc<ResilienceJournal>>,
}

impl Default for CircuitBreakerBuilder {
    fn default() -> Self {
        Self {
            name: "breaker".to_string(),
            window: 32,
            failure_threshold: 0.5,
            min_samples: 8,
            cooldown: Duration::from_millis(100),
            probes_to_close: 1,
            health: None,
            journal: None,
        }
    }
}

impl std::fmt::Debug for CircuitBreakerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreakerBuilder")
            .field("name", &self.name)
            .field("window", &self.window)
            .field("failure_threshold", &self.failure_threshold)
            .field("min_samples", &self.min_samples)
            .field("cooldown", &self.cooldown)
            .field("probes_to_close", &self.probes_to_close)
            .finish_non_exhaustive()
    }
}

impl CircuitBreakerBuilder {
    /// Defaults: window 32, threshold 0.5, min 8 samples, 100 ms
    /// cooldown, 1 probe to close.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name used as the journal scope for this breaker's transitions.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Rolling-window size in outcomes (clamped to ≥ 1).
    #[must_use]
    pub fn window(mut self, outcomes: usize) -> Self {
        self.window = outcomes.max(1);
        self
    }

    /// Failure fraction of the window that trips the breaker (clamped to
    /// `(0, 1]`).
    #[must_use]
    pub fn failure_threshold(mut self, fraction: f64) -> Self {
        self.failure_threshold = fraction.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Outcomes required in the window before the rate is trusted
    /// (clamped to ≥ 1) — keeps one early failure from tripping a cold
    /// breaker.
    #[must_use]
    pub fn min_samples(mut self, samples: usize) -> Self {
        self.min_samples = samples.max(1);
        self
    }

    /// How long an open breaker rejects before admitting probes.
    #[must_use]
    pub fn cooldown(mut self, cooldown: Duration) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Consecutive probe successes required to close from half-open
    /// (clamped to ≥ 1).
    #[must_use]
    pub fn probes_to_close(mut self, probes: u32) -> Self {
        self.probes_to_close = probes.max(1);
        self
    }

    /// Poll a health source on admission: a [`EngineHealth::Failed`]
    /// report force-opens the breaker without waiting for the failure
    /// rate to climb (use
    /// [`BootstrapEngine::health_handle`](crate::BootstrapEngine::health_handle)).
    #[must_use]
    pub fn health_probe(
        mut self,
        probe: impl Fn() -> EngineHealth + Send + Sync + 'static,
    ) -> Self {
        self.health = Some(Arc::new(probe));
        self
    }

    /// Journal state transitions into `journal` (shared with other
    /// components for one merged timeline). Without this, the breaker
    /// creates its own private journal.
    #[must_use]
    pub fn journal(mut self, journal: Arc<ResilienceJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Build the breaker (infallible — every knob clamps).
    pub fn build(self) -> CircuitBreaker {
        CircuitBreaker {
            name: self.name,
            window: self.window,
            failure_threshold: self.failure_threshold,
            min_samples: self.min_samples,
            cooldown: self.cooldown,
            probes_to_close: self.probes_to_close,
            health: self.health,
            journal: self.journal.unwrap_or_default(),
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                outcomes: VecDeque::new(),
                failures: 0,
                opened_at: None,
                probe_successes: 0,
            }),
            opens: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        }
    }
}

struct BreakerInner {
    state: BreakerState,
    /// Rolling outcome window; `true` = failure.
    outcomes: VecDeque<bool>,
    failures: usize,
    opened_at: Option<Instant>,
    probe_successes: u32,
}

/// Failure-rate-driven admission gate: Closed → Open → HalfOpen.
///
/// Feed it one [`record`](Self::record) per backend call outcome and ask
/// [`try_acquire`](Self::try_acquire) before each submission. Only
/// *retryable* faults should be recorded as failures — a validation error
/// says nothing about backend health.
pub struct CircuitBreaker {
    name: String,
    window: usize,
    failure_threshold: f64,
    min_samples: usize,
    cooldown: Duration,
    probes_to_close: u32,
    health: Option<Arc<dyn Fn() -> EngineHealth + Send + Sync>>,
    journal: Arc<ResilienceJournal>,
    inner: Mutex<BreakerInner>,
    opens: AtomicU64,
    closes: AtomicU64,
    rejections: AtomicU64,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("name", &self.name)
            .field("state", &self.state())
            .field("opens", &self.opens.load(Ordering::Relaxed))
            .field("closes", &self.closes.load(Ordering::Relaxed))
            .field("rejections", &self.rejections.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl CircuitBreaker {
    /// Configure window, threshold, cooldown, and probes before building.
    pub fn builder() -> CircuitBreakerBuilder {
        CircuitBreakerBuilder::new()
    }

    /// A breaker with default policy.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// The breaker's name (its journal scope).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state. `Open` is reported until traffic actually probes
    /// it — transitions are driven by [`try_acquire`](Self::try_acquire)
    /// and [`record`](Self::record), not by the clock alone.
    pub fn state(&self) -> BreakerState {
        lock(&self.inner).state
    }

    /// Times the breaker tripped open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Times the breaker closed from half-open (recoveries).
    pub fn closes(&self) -> u64 {
        self.closes.load(Ordering::Relaxed)
    }

    /// Admissions refused while open.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// The journal this breaker's transitions land in.
    pub fn journal(&self) -> &Arc<ResilienceJournal> {
        &self.journal
    }

    /// Ask to admit one request.
    ///
    /// Closed admits (after polling the health probe, if any — a `Failed`
    /// report force-opens). Open admits nothing until the cooldown
    /// elapses, then transitions to half-open and admits probes. Every
    /// half-open admission is a probe whose [`record`](Self::record)ed
    /// outcome decides the breaker's fate.
    ///
    /// # Errors
    ///
    /// [`TfheError::Overloaded`] while open, with the remaining cooldown
    /// as the retry hint.
    pub fn try_acquire(&self) -> Result<(), TfheError> {
        let mut inner = lock(&self.inner);
        if inner.state == BreakerState::Closed {
            if let Some(health) = &self.health {
                if health() == EngineHealth::Failed {
                    self.trip(&mut inner);
                }
            }
        }
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                let elapsed = inner
                    .opened_at
                    .map(|t| t.elapsed())
                    .unwrap_or(Duration::ZERO);
                if elapsed >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_successes = 0;
                    self.journal
                        .record(&self.name, ResilienceEventKind::BreakerHalfOpen);
                    Ok(())
                } else {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    Err(TfheError::Overloaded {
                        retry_after: self.cooldown - elapsed,
                    })
                }
            }
        }
    }

    /// Report the outcome of one admitted backend call. Record only
    /// service outcomes: successes and *retryable* failures. Permanent
    /// request errors and cancellations are not health signals.
    pub fn record(&self, success: bool) {
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::Closed => {
                if inner.outcomes.len() == self.window {
                    if let Some(old) = inner.outcomes.pop_front() {
                        if old {
                            inner.failures -= 1;
                        }
                    }
                }
                inner.outcomes.push_back(!success);
                if !success {
                    inner.failures += 1;
                }
                let n = inner.outcomes.len();
                if n >= self.min_samples
                    && inner.failures as f64 / n as f64 >= self.failure_threshold
                {
                    self.trip(&mut inner);
                }
            }
            BreakerState::HalfOpen => {
                if success {
                    inner.probe_successes += 1;
                    if inner.probe_successes >= self.probes_to_close {
                        inner.state = BreakerState::Closed;
                        inner.outcomes.clear();
                        inner.failures = 0;
                        inner.opened_at = None;
                        inner.probe_successes = 0;
                        self.closes.fetch_add(1, Ordering::Relaxed);
                        self.journal
                            .record(&self.name, ResilienceEventKind::BreakerClose);
                    }
                } else {
                    self.trip(&mut inner);
                }
            }
            // A late result from before the trip: the window is already
            // condemned, nothing to learn.
            BreakerState::Open => {}
        }
    }

    /// Transition to Open: stamp the cooldown clock, condemn the window.
    fn trip(&self, inner: &mut BreakerInner) {
        inner.state = BreakerState::Open;
        inner.opened_at = Some(Instant::now());
        inner.outcomes.clear();
        inner.failures = 0;
        inner.probe_successes = 0;
        self.opens.fetch_add(1, Ordering::Relaxed);
        self.journal
            .record(&self.name, ResilienceEventKind::BreakerOpen);
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Failover bootstrapper
// ---------------------------------------------------------------------------

struct Tier {
    name: String,
    backend: Arc<dyn Bootstrapper + Send + Sync>,
    breaker: Arc<CircuitBreaker>,
    served: AtomicU64,
}

/// A tier as configured: name, backend, optional caller-supplied breaker.
type TierSpec = (
    String,
    Arc<dyn Bootstrapper + Send + Sync>,
    Option<Arc<CircuitBreaker>>,
);

/// Configures a [`FailoverBootstrapper`]: ordered tiers plus a shared
/// retry policy.
#[derive(Default)]
pub struct FailoverBootstrapperBuilder {
    tiers: Vec<TierSpec>,
    retry: RetryPolicy,
    journal: Option<Arc<ResilienceJournal>>,
}

impl std::fmt::Debug for FailoverBootstrapperBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverBootstrapperBuilder")
            .field(
                "tiers",
                &self.tiers.iter().map(|(n, _, _)| n).collect::<Vec<_>>(),
            )
            .field("retry", &self.retry)
            .finish_non_exhaustive()
    }
}

impl FailoverBootstrapperBuilder {
    /// An empty stack; add tiers in priority order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a tier with a default breaker (named after the tier,
    /// journaling into the stack's shared journal).
    #[must_use]
    pub fn tier<B>(mut self, name: impl Into<String>, backend: B) -> Self
    where
        B: Bootstrapper + Send + Sync + 'static,
    {
        self.tiers.push((name.into(), Arc::new(backend), None));
        self
    }

    /// Append a tier guarded by a caller-configured breaker (e.g. one
    /// with a [health probe](CircuitBreakerBuilder::health_probe) wired
    /// to the tier's engine).
    #[must_use]
    pub fn tier_with_breaker<B>(
        mut self,
        name: impl Into<String>,
        backend: B,
        breaker: Arc<CircuitBreaker>,
    ) -> Self
    where
        B: Bootstrapper + Send + Sync + 'static,
    {
        self.tiers
            .push((name.into(), Arc::new(backend), Some(breaker)));
        self
    }

    /// Per-tier retry policy (applied before failing over).
    #[must_use]
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Journal events into `journal` instead of a fresh private one —
    /// share it with a dispatcher for a single merged timeline.
    #[must_use]
    pub fn journal(mut self, journal: Arc<ResilienceJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Build the stack.
    ///
    /// # Errors
    ///
    /// [`TfheError::NoBackendProvided`] if no tier was added.
    pub fn build(self) -> Result<FailoverBootstrapper, TfheError> {
        if self.tiers.is_empty() {
            return Err(TfheError::NoBackendProvided);
        }
        let journal = self.journal.unwrap_or_default();
        let tiers = self
            .tiers
            .into_iter()
            .map(|(name, backend, breaker)| {
                let breaker = breaker.unwrap_or_else(|| {
                    Arc::new(
                        CircuitBreaker::builder()
                            .name(name.clone())
                            .journal(Arc::clone(&journal))
                            .build(),
                    )
                });
                Tier {
                    name,
                    backend,
                    breaker,
                    served: AtomicU64::new(0),
                }
            })
            .collect();
        Ok(FailoverBootstrapper {
            tiers,
            retry: self.retry,
            journal,
            failovers: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        })
    }
}

/// An ordered stack of [`Bootstrapper`] backends behind per-tier circuit
/// breakers — serve from the best healthy tier, degrade down the list,
/// restore upward via half-open probes. See the [module docs](self).
pub struct FailoverBootstrapper {
    tiers: Vec<Tier>,
    retry: RetryPolicy,
    journal: Arc<ResilienceJournal>,
    failovers: AtomicU64,
    retries: AtomicU64,
    /// Request sequence number — the jitter key, so each request's
    /// backoff schedule is distinct but deterministic.
    seq: AtomicU64,
}

impl std::fmt::Debug for FailoverBootstrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverBootstrapper")
            .field("tiers", &self.tier_names())
            .field("retry", &self.retry)
            .field("failovers", &self.failovers.load(Ordering::Relaxed))
            .field("retries", &self.retries.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FailoverBootstrapper {
    /// Start assembling a tier stack.
    pub fn builder() -> FailoverBootstrapperBuilder {
        FailoverBootstrapperBuilder::new()
    }

    /// Tier names in priority order.
    pub fn tier_names(&self) -> Vec<&str> {
        self.tiers.iter().map(|t| t.name.as_str()).collect()
    }

    /// Requests served per tier, in priority order.
    pub fn served(&self) -> Vec<(String, u64)> {
        self.tiers
            .iter()
            .map(|t| (t.name.clone(), t.served.load(Ordering::Relaxed)))
            .collect()
    }

    /// Requests that moved down at least one tier.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Same-tier re-dispatches across all tiers.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// The breaker guarding tier `index` (priority order).
    pub fn breaker(&self, index: usize) -> Option<&Arc<CircuitBreaker>> {
        self.tiers.get(index).map(|t| &t.breaker)
    }

    /// The shared event journal (tiers' breakers journal here too unless
    /// caller-supplied with their own).
    pub fn journal(&self) -> &Arc<ResilienceJournal> {
        &self.journal
    }

    /// Snapshot of the journal.
    pub fn events(&self) -> Vec<ResilienceEvent> {
        self.journal.events()
    }
}

impl Bootstrapper for FailoverBootstrapper {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        if req.is_empty() {
            return Ok(Vec::new());
        }
        let key = self.seq.fetch_add(1, Ordering::Relaxed);
        // Prefer reporting a real backend failure over an admission
        // rejection — the former says what is actually wrong.
        let mut last_fault: Option<TfheError> = None;
        let mut last_reject: Option<TfheError> = None;
        let mut failed_from: Option<String> = None;
        for tier in &self.tiers {
            match tier.breaker.try_acquire() {
                Ok(()) => {}
                Err(e) => {
                    self.journal
                        .record(&tier.name, ResilienceEventKind::TierSkipped);
                    last_reject = Some(e);
                    continue;
                }
            }
            if let Some(from) = failed_from.take() {
                self.failovers.fetch_add(1, Ordering::Relaxed);
                self.journal.record(
                    &tier.name,
                    ResilienceEventKind::Failover {
                        from,
                        to: tier.name.clone(),
                    },
                );
            }
            let mut attempt: u32 = 0;
            loop {
                match tier.backend.try_bootstrap_batch(req) {
                    Ok(out) => {
                        tier.breaker.record(true);
                        tier.served.fetch_add(1, Ordering::Relaxed);
                        return Ok(out);
                    }
                    Err(e) if e.is_retryable() => {
                        tier.breaker.record(false);
                        // Retry in place while budget remains and the
                        // breaker (which just absorbed the failure) still
                        // admits; otherwise fail over.
                        if self.retry.should_retry(&e, attempt)
                            && tier.breaker.try_acquire().is_ok()
                        {
                            attempt += 1;
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            self.journal
                                .record(&tier.name, ResilienceEventKind::Retry { attempt });
                            let backoff = self.retry.backoff(key, attempt);
                            if !backoff.is_zero() {
                                std::thread::sleep(backoff);
                            }
                            continue;
                        }
                        last_fault = Some(e);
                        failed_from = Some(tier.name.clone());
                        break;
                    }
                    // Permanent: the request is at fault; every tier
                    // would answer identically, so don't fail over and
                    // don't penalize this tier's health.
                    Err(e) => return Err(e),
                }
            }
        }
        Err(last_fault
            .or(last_reject)
            .unwrap_or(TfheError::NoBackendProvided))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::Lut;

    fn echo_outputs(req: &BatchRequest) -> Vec<LweCiphertext> {
        let mut out = Vec::with_capacity(req.output_len());
        for (i, ct) in req.ciphertexts().iter().enumerate() {
            out.extend(std::iter::repeat_with(|| ct.clone()).take(req.output_count(i)));
        }
        out
    }

    /// Fails with a retryable fault for the first `fail_first` calls,
    /// then echoes inputs — the deterministic "sick then recovered"
    /// backend.
    struct FlakyBackend {
        fail_first: u64,
        calls: AtomicU64,
    }

    impl FlakyBackend {
        fn new(fail_first: u64) -> Self {
            Self {
                fail_first,
                calls: AtomicU64::new(0),
            }
        }
    }

    impl Bootstrapper for FlakyBackend {
        fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            if call < self.fail_first {
                Err(TfheError::WorkerPanicked { worker: 0 })
            } else {
                Ok(echo_outputs(req))
            }
        }
    }

    /// Always rejects with a permanent validation error.
    struct PermanentlyWrong;

    impl Bootstrapper for PermanentlyWrong {
        fn try_bootstrap_batch(&self, _: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
            Err(TfheError::LweDimensionMismatch {
                expected: 16,
                got: 8,
            })
        }
    }

    fn one_request() -> BatchRequest {
        BatchRequest::shared(
            vec![LweCiphertext::trivial(
                morphling_math::Torus32::from_raw(7),
                4,
            )],
            Lut::identity(64, 4),
        )
    }

    #[test]
    fn retry_policy_honors_taxonomy_and_budget() {
        let p = RetryPolicy::new(2);
        let transient = TfheError::WorkerPanicked { worker: 1 };
        let permanent = TfheError::NoLutProvided;
        assert!(p.should_retry(&transient, 0));
        assert!(p.should_retry(&transient, 1));
        assert!(!p.should_retry(&transient, 2), "budget exhausted");
        assert!(!p.should_retry(&permanent, 0), "permanent never retries");
        assert!(!RetryPolicy::none().should_retry(&transient, 0));
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let p = RetryPolicy::new(8)
            .with_base_backoff(Duration::from_millis(1))
            .with_max_backoff(Duration::from_millis(8))
            .with_jitter(0.0, 0);
        assert_eq!(p.backoff(0, 1), Duration::from_millis(1));
        assert_eq!(p.backoff(0, 2), Duration::from_millis(2));
        assert_eq!(p.backoff(0, 3), Duration::from_millis(4));
        assert_eq!(p.backoff(0, 4), Duration::from_millis(8));
        assert_eq!(p.backoff(0, 7), Duration::from_millis(8), "capped");

        let j = p.with_jitter(0.5, 99);
        let a = j.backoff(5, 2);
        // Deterministic: same (key, attempt) → same backoff; bounded by
        // the un-jittered value and its half.
        assert_eq!(a, j.backoff(5, 2));
        assert!(a <= Duration::from_millis(2));
        assert!(a >= Duration::from_millis(1));
        // Different keys de-synchronize.
        assert_ne!(j.backoff(5, 2), j.backoff(6, 2));
        // Zero-base policies never sleep.
        assert_eq!(RetryPolicy::none().backoff(0, 1), Duration::ZERO);
    }

    #[test]
    fn breaker_trips_at_threshold_and_rejects_while_open() {
        let b = CircuitBreaker::builder()
            .window(8)
            .min_samples(4)
            .failure_threshold(0.5)
            .cooldown(Duration::from_secs(60))
            .build();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(true);
        b.record(false);
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed, "below min_samples");
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open, "2/4 failures at 0.5");
        assert_eq!(b.opens(), 1);
        let err = b.try_acquire().unwrap_err();
        assert!(matches!(err, TfheError::Overloaded { .. }));
        assert!(err.is_retryable());
        assert_eq!(b.rejections(), 1);
    }

    #[test]
    fn breaker_recovers_through_half_open_probes() {
        let b = CircuitBreaker::builder()
            .min_samples(1)
            .failure_threshold(0.5)
            .cooldown(Duration::ZERO)
            .probes_to_close(2)
            .build();
        b.record(false); // trip
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: next acquire transitions to half-open.
        assert!(b.try_acquire().is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(true);
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs 2 probes");
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes(), 1);
        let labels: Vec<&str> = b
            .journal()
            .events()
            .iter()
            .map(|e| e.kind.label())
            .collect();
        assert_eq!(
            labels,
            vec!["breaker_open", "breaker_half_open", "breaker_close"]
        );
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = CircuitBreaker::builder()
            .min_samples(1)
            .failure_threshold(0.5)
            .cooldown(Duration::ZERO)
            .build();
        b.record(false);
        assert!(b.try_acquire().is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn health_probe_failed_forces_open() {
        let b = CircuitBreaker::builder()
            .cooldown(Duration::from_secs(60))
            .health_probe(|| EngineHealth::Failed)
            .build();
        assert!(matches!(b.try_acquire(), Err(TfheError::Overloaded { .. })));
        assert_eq!(b.state(), BreakerState::Open);

        let healthy = CircuitBreaker::builder()
            .health_probe(|| EngineHealth::Degraded)
            .build();
        assert!(healthy.try_acquire().is_ok(), "degraded still serves");
    }

    #[test]
    fn failover_serves_from_fallback_when_primary_fails() {
        let stack = FailoverBootstrapper::builder()
            .tier("primary", FlakyBackend::new(u64::MAX))
            .tier("fallback", FlakyBackend::new(0))
            .retry_policy(RetryPolicy::new(1).with_base_backoff(Duration::ZERO))
            .build()
            .expect("two tiers");
        let req = one_request();
        let out = stack.try_bootstrap_batch(&req).expect("fallback serves");
        assert_eq!(out.len(), 1);
        assert_eq!(stack.failovers(), 1);
        assert_eq!(stack.retries(), 1, "one in-place retry before failover");
        assert_eq!(stack.served()[0].1, 0);
        assert_eq!(stack.served()[1].1, 1);
        let labels: Vec<&str> = stack.events().iter().map(|e| e.kind.label()).collect();
        assert!(labels.contains(&"retry"));
        assert!(labels.contains(&"failover"));
    }

    #[test]
    fn open_primary_is_skipped_and_probed_back() {
        let stack = FailoverBootstrapper::builder()
            .tier_with_breaker(
                "primary",
                FlakyBackend::new(2),
                Arc::new(
                    CircuitBreaker::builder()
                        .name("primary")
                        .min_samples(2)
                        .failure_threshold(0.5)
                        .cooldown(Duration::ZERO)
                        .build(),
                ),
            )
            .tier("fallback", FlakyBackend::new(0))
            .build()
            .expect("two tiers");
        let req = one_request();
        // Two failing requests trip the primary's breaker (no retries).
        assert_eq!(stack.try_bootstrap_batch(&req).expect("served").len(), 1);
        assert_eq!(stack.try_bootstrap_batch(&req).expect("served").len(), 1);
        assert_eq!(
            stack.breaker(0).expect("tier 0").state(),
            BreakerState::Open
        );
        // Cooldown is zero, so the next request probes the (now healed)
        // primary, succeeds, and closes the breaker — primary restored.
        assert_eq!(stack.try_bootstrap_batch(&req).expect("probe").len(), 1);
        assert_eq!(
            stack.breaker(0).expect("tier 0").state(),
            BreakerState::Closed
        );
        assert_eq!(stack.served()[0].1, 1, "probe served by primary");
        assert_eq!(stack.failovers(), 2);
    }

    #[test]
    fn permanent_errors_do_not_fail_over() {
        let stack = FailoverBootstrapper::builder()
            .tier("primary", PermanentlyWrong)
            .tier("fallback", FlakyBackend::new(0))
            .build()
            .expect("two tiers");
        let err = stack.try_bootstrap_batch(&one_request()).unwrap_err();
        assert!(matches!(err, TfheError::LweDimensionMismatch { .. }));
        assert_eq!(stack.failovers(), 0);
        assert_eq!(
            stack.breaker(0).expect("tier 0").state(),
            BreakerState::Closed,
            "validation errors are not health signals"
        );
    }

    #[test]
    fn all_tiers_down_surfaces_the_backend_fault() {
        let stack = FailoverBootstrapper::builder()
            .tier("a", FlakyBackend::new(u64::MAX))
            .tier("b", FlakyBackend::new(u64::MAX))
            .build()
            .expect("two tiers");
        let err = stack.try_bootstrap_batch(&one_request()).unwrap_err();
        assert_eq!(err, TfheError::WorkerPanicked { worker: 0 });
        assert_eq!(stack.failovers(), 1);
    }

    #[test]
    fn empty_stack_is_rejected_and_empty_batch_is_a_noop() {
        assert_eq!(
            FailoverBootstrapper::builder().build().err(),
            Some(TfheError::NoBackendProvided)
        );
        let stack = FailoverBootstrapper::builder()
            .tier("only", FlakyBackend::new(u64::MAX))
            .build()
            .expect("one tier");
        let empty = BatchRequest::shared(Vec::new(), Lut::identity(64, 4));
        assert_eq!(stack.try_bootstrap_batch(&empty), Ok(Vec::new()));
    }

    #[test]
    fn journal_counts_by_label() {
        let j = ResilienceJournal::new();
        j.record("x", ResilienceEventKind::Retry { attempt: 1 });
        j.record("x", ResilienceEventKind::Retry { attempt: 2 });
        j.record(
            "y",
            ResilienceEventKind::Failover {
                from: "x".into(),
                to: "y".into(),
            },
        );
        assert_eq!(j.count("retry"), 2);
        assert_eq!(j.count("failover"), 1);
        assert_eq!(j.count("shed"), 0);
        assert_eq!(j.events().len(), 3);
    }
}
