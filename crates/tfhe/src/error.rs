//! Error types for the fallible (`try_*`) API surface.
//!
//! Every panic in the infallible API corresponds to a variant here; the
//! panicking methods are thin `expect`-style wrappers over the `try_*`
//! methods so the two surfaces can never drift apart.
//!
//! The enum is `#[non_exhaustive]`: downstream `match`es must carry a
//! wildcard arm, which is what lets the resilience layer (and future PRs)
//! add fault taxonomy variants without breaking callers. Every variant is
//! classified by [`TfheError::is_retryable`] into *transient
//! infrastructure faults* (worth retrying / failing over) versus
//! *permanent request errors* (the request itself is wrong; retrying
//! anywhere yields the same answer).

use std::time::Duration;

/// Everything that can go wrong when driving the TFHE evaluation API with
/// mismatched key material, malformed LUTs, or a misconfigured engine.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TfheError {
    /// A ciphertext's LWE dimension does not match what the operation
    /// expects (e.g. feeding a `k·N`-dimension extracted sample to a
    /// bootstrap that wants the small `n`-dimension input).
    LweDimensionMismatch {
        /// The dimension the operation expects.
        expected: usize,
        /// The dimension the ciphertext actually has.
        got: usize,
    },
    /// A key-switch input's dimension does not match the KSK's input
    /// dimension.
    KeySwitchDimensionMismatch {
        /// The KSK's input dimension (`k·N` for a post-extraction switch).
        expected: usize,
        /// The dimension of the ciphertext being switched.
        got: usize,
    },
    /// A LUT was built (or used) with a plaintext modulus that disagrees
    /// with the parameter set's modulus.
    LutModulusMismatch {
        /// The LUT's plaintext modulus.
        lut: u64,
        /// The parameter set's plaintext modulus.
        params: u64,
    },
    /// A LUT plaintext modulus that is not a power of two.
    PlaintextModulusNotPowerOfTwo {
        /// The offending modulus.
        modulus: u64,
    },
    /// A LUT plaintext modulus too large for the polynomial size (needs
    /// `p ≤ N/2` with the padding-bit encoding).
    PlaintextModulusTooLarge {
        /// The offending modulus.
        modulus: u64,
        /// The polynomial size it must fit into.
        poly_size: usize,
    },
    /// A LUT whose test polynomial length disagrees with the parameter
    /// set's polynomial size (it was built for different parameters).
    LutSizeMismatch {
        /// The LUT's polynomial length.
        lut: usize,
        /// The parameter set's polynomial size `N`.
        poly_size: usize,
    },
    /// A parallel batch API was asked to run on zero threads.
    ZeroThreads,
    /// A multi-LUT batch submission referenced a LUT index out of range.
    LutIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of LUTs supplied with the batch.
        luts: usize,
    },
    /// A multi-LUT batch submission's selector slice length disagrees
    /// with the number of ciphertexts (`lut_of` must name one LUT per
    /// ciphertext).
    LutSelectorLengthMismatch {
        /// The batch size (`cts.len()`).
        expected: usize,
        /// The selector slice length (`lut_of.len()`).
        got: usize,
    },
    /// A fanout batch submission listed no LUTs at all for one of its
    /// inputs — every input of a multi-LUT request must produce at least
    /// one output.
    EmptyFanout {
        /// Index of the input whose LUT list is empty.
        input: usize,
    },
    /// A fanout batch submission's outer list length disagrees with the
    /// number of ciphertexts (`fanout` must name one LUT list per
    /// ciphertext).
    FanoutLengthMismatch {
        /// The batch size (`cts.len()`).
        expected: usize,
        /// The fanout list length (`fanout.len()`).
        got: usize,
    },
    /// A batch request supplied both per-item selectors (`lut_of`) and a
    /// fanout map — the two addressing schemes are mutually exclusive.
    FanoutSelectorConflict,
    /// The bootstrap engine's worker pool has shut down (a worker
    /// panicked or the engine is mid-drop); the submitted batch was not
    /// processed.
    EngineShutDown,
    /// A worker panicked while executing a job. The engine retries these
    /// automatically; callers see the variant only once the retry budget
    /// is exhausted (or from the per-call parallel batch path, which has
    /// no retry loop).
    WorkerPanicked {
        /// Index of the worker thread that panicked.
        worker: usize,
    },
    /// A job exceeded the engine's watchdog timeout on every allowed
    /// attempt — the chunk is presumed wedged beyond recovery.
    JobTimedOut {
        /// Batch-relative index of the first ciphertext in the chunk.
        chunk_start: usize,
        /// Attempts made (initial dispatch plus retries).
        attempts: u32,
    },
    /// A bootstrap output failed the engine's output sanity check on
    /// every allowed attempt.
    OutputCheckFailed {
        /// Batch-relative index of the offending ciphertext.
        index: usize,
    },
    /// A [`BatchRequest`](crate::BatchRequest) was built with ciphertexts
    /// but no LUT at all — there is nothing to bootstrap through.
    NoLutProvided,
    /// The dispatcher's bounded admission queue is full; the request was
    /// rejected without being enqueued (backpressure). Retry later or use
    /// the blocking `submit` path.
    QueueFull {
        /// The queue's capacity at the time of rejection.
        capacity: usize,
    },
    /// Admission was refused by an open circuit breaker: the backend's
    /// recent failure rate (or polled health) says queued work would die.
    /// Fail-fast backpressure — retry after the hinted cooldown.
    Overloaded {
        /// How long until the breaker will consider a half-open probe.
        retry_after: Duration,
    },
    /// A bounded [`Ticket::wait_timeout`](crate::Ticket::wait_timeout)
    /// elapsed before the request resolved. The request is still in
    /// flight; the caller keeps the ticket and may wait again.
    WaitTimedOut {
        /// The timeout that elapsed.
        timeout: Duration,
    },
    /// A [`FailoverBootstrapper`](crate::FailoverBootstrapper) was built
    /// with an empty backend list — there is nothing to serve from.
    NoBackendProvided,
    /// The request was cancelled via its ticket before execution started.
    Cancelled,
    /// The request's deadline passed while it was still queued; the
    /// dispatcher dropped it instead of starting late work.
    DeadlineExceeded,
    /// The dispatcher has shut down (or its batcher thread died); the
    /// request was not, and will not be, processed.
    DispatcherShutDown,
    /// A serialized key blob failed framing or checksum validation during
    /// deserialization — the bytes are corrupt (or were produced by an
    /// incompatible writer) and no key can be recovered from them.
    KeyCorrupted {
        /// Human-readable description of the first validation failure.
        detail: String,
    },
    /// A [`KeyStore`](crate::KeyStore) backend has no key material for the
    /// requested tenant.
    KeyNotFound {
        /// The tenant whose key is missing.
        tenant: u64,
    },
    /// A key does not fit the [`KeyStore`](crate::KeyStore)'s byte budget
    /// even after evicting every unpinned resident — serving this tenant
    /// would thrash (or livelock waiting on pins), so the load fails loudly
    /// instead.
    KeyBudgetExceeded {
        /// The store's configured byte budget.
        budget: u64,
        /// Bytes the requested key needs.
        need: u64,
    },
    /// A tenant-keyed backend received a request with no tenant attached
    /// and has no default key to fall back on.
    NoTenantProvided,
    /// A [`ServingConfig`](crate::ServingConfig) knob holds a degenerate
    /// value (`workers == 0`, `max_batch_size == 0`, a zero queue depth,
    /// an out-of-range fraction, …). Rejected loudly at
    /// [`validate`](crate::ServingConfig::validate) /
    /// [`Dispatcher::from_config`](crate::Dispatcher::from_config) time
    /// instead of panicking (or silently clamping) deep in the
    /// dispatcher.
    InvalidServingConfig {
        /// The offending field, dotted-path style (`"retry.jitter"`).
        field: &'static str,
        /// What is wrong with its value.
        detail: String,
    },
    /// A serialized [`ServingConfig`](crate::ServingConfig) failed JSON
    /// framing or schema validation during
    /// [`from_json`](crate::ServingConfig::from_json) — the text is
    /// malformed (or was produced by an incompatible writer) and no
    /// config can be recovered from it.
    ConfigCorrupted {
        /// Human-readable description of the first validation failure.
        detail: String,
    },
}

impl TfheError {
    /// `true` for transient infrastructure faults where a retry (same
    /// backend, after backoff) or a failover (different backend) can
    /// plausibly succeed; `false` for permanent errors where the request
    /// itself is at fault and every backend would answer the same way.
    ///
    /// The retryable set is the fault taxonomy the resilience layer acts
    /// on: worker panics, wedged/timed-out jobs, corrupted outputs, dead
    /// or shut-down engines, and load-shedding rejections
    /// ([`QueueFull`](Self::QueueFull), [`Overloaded`](Self::Overloaded),
    /// [`WaitTimedOut`](Self::WaitTimedOut)). Terminal per-request
    /// outcomes ([`Cancelled`](Self::Cancelled),
    /// [`DeadlineExceeded`](Self::DeadlineExceeded)) are deliberate
    /// decisions, not faults, and are never retried.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Self::WorkerPanicked { .. }
                | Self::JobTimedOut { .. }
                | Self::OutputCheckFailed { .. }
                | Self::EngineShutDown
                | Self::QueueFull { .. }
                | Self::Overloaded { .. }
                | Self::WaitTimedOut { .. }
        )
    }
}

impl std::fmt::Display for TfheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LweDimensionMismatch { expected, got } => {
                write!(
                    f,
                    "ciphertext dimension mismatch: expected {expected}, got {got}"
                )
            }
            Self::KeySwitchDimensionMismatch { expected, got } => {
                write!(
                    f,
                    "key-switch input dimension mismatch: expected {expected}, got {got}"
                )
            }
            Self::LutModulusMismatch { lut, params } => {
                write!(
                    f,
                    "LUT plaintext modulus {lut} disagrees with parameter set modulus {params}"
                )
            }
            Self::PlaintextModulusNotPowerOfTwo { modulus } => {
                write!(
                    f,
                    "plaintext modulus must be a power of two (got {modulus})"
                )
            }
            Self::PlaintextModulusTooLarge { modulus, poly_size } => {
                write!(
                    f,
                    "plaintext modulus {modulus} too large for polynomial size {poly_size}"
                )
            }
            Self::LutSizeMismatch { lut, poly_size } => {
                write!(f, "LUT polynomial length {lut} disagrees with parameter polynomial size {poly_size}")
            }
            Self::ZeroThreads => write!(f, "at least one thread is required"),
            Self::LutIndexOutOfRange { index, luts } => {
                write!(f, "LUT index {index} out of range for {luts} supplied LUTs")
            }
            Self::LutSelectorLengthMismatch { expected, got } => {
                write!(
                    f,
                    "LUT selector length mismatch: {expected} ciphertexts but {got} selectors"
                )
            }
            Self::EmptyFanout { input } => {
                write!(f, "fanout batch lists no LUTs for input {input}")
            }
            Self::FanoutLengthMismatch { expected, got } => {
                write!(
                    f,
                    "fanout length mismatch: {expected} ciphertexts but {got} fanout entries"
                )
            }
            Self::FanoutSelectorConflict => {
                write!(
                    f,
                    "batch request cannot mix per-item LUT selectors with a fanout map"
                )
            }
            Self::EngineShutDown => {
                write!(f, "bootstrap engine worker pool has shut down")
            }
            Self::WorkerPanicked { worker } => {
                write!(
                    f,
                    "bootstrap worker {worker} panicked while executing a job"
                )
            }
            Self::JobTimedOut {
                chunk_start,
                attempts,
            } => {
                write!(
                    f,
                    "job for chunk starting at {chunk_start} timed out after {attempts} attempts"
                )
            }
            Self::OutputCheckFailed { index } => {
                write!(f, "bootstrap output {index} failed the output sanity check")
            }
            Self::NoLutProvided => {
                write!(f, "batch request has ciphertexts but no LUT")
            }
            Self::QueueFull { capacity } => {
                write!(f, "dispatcher queue full (capacity {capacity})")
            }
            Self::Overloaded { retry_after } => {
                write!(
                    f,
                    "service overloaded (circuit breaker open); retry after {retry_after:?}"
                )
            }
            Self::WaitTimedOut { timeout } => {
                write!(
                    f,
                    "wait timed out after {timeout:?}; request still in flight"
                )
            }
            Self::NoBackendProvided => {
                write!(f, "failover bootstrapper needs at least one backend")
            }
            Self::Cancelled => write!(f, "request cancelled before execution"),
            Self::DeadlineExceeded => {
                write!(f, "request deadline passed while still queued")
            }
            Self::DispatcherShutDown => {
                write!(f, "dispatcher has shut down; request not processed")
            }
            Self::KeyCorrupted { detail } => {
                write!(f, "serialized key is corrupted: {detail}")
            }
            Self::KeyNotFound { tenant } => {
                write!(f, "no key material stored for tenant {tenant}")
            }
            Self::KeyBudgetExceeded { budget, need } => {
                write!(
                    f,
                    "key needs {need} bytes but the store budget is {budget} bytes \
                     (after evicting every unpinned key)"
                )
            }
            Self::NoTenantProvided => {
                write!(
                    f,
                    "request names no tenant and no default key is configured"
                )
            }
            Self::InvalidServingConfig { field, detail } => {
                write!(f, "invalid serving config: `{field}` {detail}")
            }
            Self::ConfigCorrupted { detail } => {
                write!(f, "serialized serving config is corrupted: {detail}")
            }
        }
    }
}

impl std::error::Error for TfheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_keep_legacy_panic_substrings() {
        // The infallible wrappers panic with these Display strings; tests
        // elsewhere match on the quoted substrings, so they are load-bearing.
        let cases: [(TfheError, &str); 5] = [
            (
                TfheError::LweDimensionMismatch {
                    expected: 16,
                    got: 8,
                },
                "ciphertext dimension mismatch",
            ),
            (
                TfheError::KeySwitchDimensionMismatch {
                    expected: 256,
                    got: 32,
                },
                "key-switch input dimension mismatch",
            ),
            (
                TfheError::PlaintextModulusNotPowerOfTwo { modulus: 3 },
                "must be a power of two",
            ),
            (
                TfheError::PlaintextModulusTooLarge {
                    modulus: 64,
                    poly_size: 64,
                },
                "too large",
            ),
            (TfheError::ZeroThreads, "at least one thread is required"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TfheError::EngineShutDown);
        takes_err(&TfheError::Overloaded {
            retry_after: Duration::from_millis(10),
        });
    }

    #[test]
    fn retry_taxonomy_separates_faults_from_request_errors() {
        // Transient infrastructure faults: retry/failover can help.
        for e in [
            TfheError::WorkerPanicked { worker: 0 },
            TfheError::JobTimedOut {
                chunk_start: 0,
                attempts: 3,
            },
            TfheError::OutputCheckFailed { index: 2 },
            TfheError::EngineShutDown,
            TfheError::QueueFull { capacity: 8 },
            TfheError::Overloaded {
                retry_after: Duration::from_millis(5),
            },
            TfheError::WaitTimedOut {
                timeout: Duration::from_millis(5),
            },
        ] {
            assert!(e.is_retryable(), "{e} must be retryable");
        }
        // Permanent: the request (or the caller's decision) is at fault.
        for e in [
            TfheError::LweDimensionMismatch {
                expected: 16,
                got: 8,
            },
            TfheError::NoLutProvided,
            TfheError::ZeroThreads,
            TfheError::NoBackendProvided,
            TfheError::Cancelled,
            TfheError::DeadlineExceeded,
            TfheError::DispatcherShutDown,
            // Keystore failures: the same bytes / budget / request would
            // fail identically on a retry.
            TfheError::KeyCorrupted {
                detail: "bad checksum".into(),
            },
            TfheError::KeyNotFound { tenant: 7 },
            TfheError::KeyBudgetExceeded {
                budget: 1024,
                need: 4096,
            },
            TfheError::NoTenantProvided,
            // Config failures: the same config text / knob values would
            // fail identically on a retry.
            TfheError::InvalidServingConfig {
                field: "workers",
                detail: "must be at least 1 (got 0)".into(),
            },
            TfheError::ConfigCorrupted {
                detail: "expected `{`".into(),
            },
        ] {
            assert!(!e.is_retryable(), "{e} must not be retryable");
        }
    }

    #[test]
    fn resilience_variants_have_informative_display() {
        let overloaded = TfheError::Overloaded {
            retry_after: Duration::from_millis(25),
        };
        assert!(overloaded.to_string().contains("circuit breaker open"));
        let timed_out = TfheError::WaitTimedOut {
            timeout: Duration::from_secs(1),
        };
        assert!(timed_out.to_string().contains("still in flight"));
        assert!(TfheError::NoBackendProvided
            .to_string()
            .contains("at least one backend"));
    }

    #[test]
    fn config_variants_name_the_offending_field() {
        let invalid = TfheError::InvalidServingConfig {
            field: "max_batch_size",
            detail: "must be at least 1 (got 0)".into(),
        };
        assert!(invalid.to_string().contains("`max_batch_size`"));
        let corrupt = TfheError::ConfigCorrupted {
            detail: "unexpected end of input".into(),
        };
        assert!(corrupt.to_string().contains("unexpected end of input"));
    }
}
