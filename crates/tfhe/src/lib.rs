//! A from-scratch functional implementation of the TFHE scheme over the
//! 32-bit discretized torus — the cryptographic substrate of the Morphling
//! reproduction.
//!
//! Everything the paper's Algorithm 1 needs is here:
//!
//! - ciphertext types: [`LweCiphertext`], [`GlweCiphertext`],
//!   [`GgswCiphertext`] (plus the transform-domain [`FourierGgsw`] that the
//!   accelerator stores in its Private-A2 buffer);
//! - key material: [`LweSecretKey`], [`GlweSecretKey`],
//!   [`BootstrapKey`] (n GGSW encryptions of the LWE key bits),
//!   [`KeySwitchKey`];
//! - the four bootstrapping stages: modulus switching, blind rotation
//!   (`n` external products / CMUXes), sample extraction, and key
//!   switching;
//! - [programmable bootstrapping](ServerKey::programmable_bootstrap) with
//!   arbitrary lookup tables ([`Lut`]), and a bootstrapped
//!   [boolean gate API](ServerKey::nand);
//! - [multi-value bootstrapping](ServerKey::try_programmable_bootstrap_many)
//!   — k LUTs of one input for a *single* blind rotation via the
//!   common-factor plan ([`MultiLutPlan`]) — and
//!   [tree bootstrapping](ServerKey::try_tree_bootstrap) chaining LUT
//!   stages to evaluate wider-input functions;
//! - a pluggable polynomial-multiplication backend ([`MulBackend`]): the
//!   FFT path the hardware accelerates, or the exact integer path used as
//!   a correctness oracle;
//! - noise utilities ([`noise`]) that measure and predict ciphertext error;
//! - a persistent, self-healing [`BootstrapEngine`] (watchdog, retry with
//!   backoff, panic isolation with bounded respawn, degraded-mode
//!   serving) plus deterministic seeded fault injection ([`faults`]) for
//!   chaos testing it;
//! - one batch-bootstrap entry point for all of the above: the
//!   [`Bootstrapper`] trait over [`BatchRequest`], implemented by
//!   [`ServerKey`] (sequential), [`ParallelServerKey`] (scoped threads),
//!   [`BootstrapEngine`] (pooled), and the deadline-aware dynamic-batching
//!   [`Dispatcher`](dispatch::Dispatcher) — the software analogue of the
//!   paper's SW scheduler that keeps the cores fed with large batches;
//! - a service-level [`resilience`] layer on top of the backends:
//!   [`RetryPolicy`] (bounded backoff with seeded jitter),
//!   [`CircuitBreaker`] (fail-fast admission while a backend is sick),
//!   and the degraded-mode [`FailoverBootstrapper`] that walks an ordered
//!   backend stack and restores the primary via half-open probes;
//! - a unified, JSON-serializable [`ServingConfig`] covering every
//!   serving knob ([`Dispatcher::from_config`](dispatch::Dispatcher::from_config)
//!   consumes it), and a simulator-in-the-loop [`autotune`]r that
//!   searches the config space for a target arrival rate and p99 SLO and
//!   validates its recommendation against the real dispatcher.
//!
//! # Quickstart
//!
//! ```
//! use morphling_tfhe::{ClientKey, ParamSet, ServerKey};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let params = ParamSet::Test.params();
//! let client = ClientKey::generate(params.clone(), &mut rng);
//! let server = ServerKey::new(&client, &mut rng);
//!
//! let a = client.encrypt_bool(true, &mut rng);
//! let b = client.encrypt_bool(false, &mut rng);
//! let c = server.nand(&a, &b);
//! assert!(client.decrypt_bool(&c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod autotune;
mod batch;
mod bootstrap;
mod bootstrap_key;
mod bootstrapper;
pub mod dispatch;
mod engine;
mod error;
mod external_product;
pub mod faults;
mod fft_cache;
mod ggsw;
mod glwe;
mod keys;
pub mod keystore;
mod ksk;
mod lut;
mod lwe;
mod multivalue;
pub mod noise;
pub mod ops;
mod params;
pub mod radix;
pub mod resilience;
pub mod serialize;
mod server;
pub mod serving;
mod workspace;

pub use autotune::{
    AutotuneReport, AutotuneRequest, LoadSpec, MeasuredProfile, PredictedProfile, SearchPoint,
    ServiceModel, SloTarget,
};
pub use bootstrap::{blind_rotate, blind_rotate_assign, modulus_switch, sample_extract};
pub use bootstrap_key::BootstrapKey;
pub use bootstrapper::{BatchRequest, BatchRequestBuilder, Bootstrapper, ParallelServerKey};
pub use dispatch::{
    DispatchSpan, Dispatcher, DispatcherBuilder, DispatcherStats, MultiTicket, Ticket,
};
pub use engine::{
    BootstrapEngine, BootstrapEngineBuilder, EngineHealth, EngineHealthHandle, EngineStats,
    FaultEvent, FaultEventKind, JobSpan, OutputCheck,
};
pub use error::TfheError;
pub use external_product::{cmux, external_product, ExternalProductEngine};
pub use faults::{FaultInjector, FaultPlan, FaultSite};
pub use ggsw::{FourierGgsw, GgswCiphertext};
pub use glwe::GlweCiphertext;
pub use keys::{ClientKey, GlweSecretKey, LweSecretKey};
pub use keystore::{
    DirBackend, KeyBackend, KeyEvent, KeyEventKind, KeyStore, KeyStoreBootstrapper, KeyStoreStats,
    MemoryBackend, PinnedKey, TenantId,
};
pub use ksk::KeySwitchKey;
pub use lut::Lut;
pub use lwe::LweCiphertext;
pub use multivalue::MultiLutPlan;
pub use params::{ParamSet, TfheParams, ALL_PAPER_SETS};
pub use resilience::{
    BreakerState, CircuitBreaker, CircuitBreakerBuilder, FailoverBootstrapper,
    FailoverBootstrapperBuilder, ResilienceEvent, ResilienceEventKind, ResilienceJournal,
    RetryPolicy,
};
pub use serialize::{
    deserialize_bootstrap_key, deserialize_glwe_secret_key, deserialize_key_switch_key,
    deserialize_lwe_secret_key, deserialize_server_key, serialize_bootstrap_key,
    serialize_glwe_secret_key, serialize_key_switch_key, serialize_lwe_secret_key,
    serialize_server_key,
};
pub use server::{BootstrapOptions, MulBackend, ServerKey, ServerKeyBuilder};
pub use serving::{BreakerConfig, RetryConfig, ServingConfig, ServingConfigBuilder};
pub use workspace::BootstrapWorkspace;
