//! LWE ciphertexts: `(a_1, …, a_n, b) ∈ T_q^(n+1)` (§II-A).

use morphling_math::{sampling, Torus32, TorusScalar};
use rand::Rng;

use crate::keys::LweSecretKey;

/// An LWE ciphertext over the 32-bit torus.
///
/// The mask `a` and body `b = ⟨a, s⟩ + m + e` are stored as raw torus
/// words — `(n+1)` scalar elements, the paper's in-memory layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LweCiphertext {
    mask: Vec<Torus32>,
    body: Torus32,
}

impl LweCiphertext {
    /// Encrypt a torus message under `key` with Gaussian noise of standard
    /// deviation `noise_std`.
    pub fn encrypt<R: Rng + ?Sized>(
        mu: Torus32,
        key: &LweSecretKey,
        noise_std: f64,
        rng: &mut R,
    ) -> Self {
        let mask: Vec<Torus32> = (0..key.dim())
            .map(|_| sampling::uniform_torus(rng))
            .collect();
        let mut body = mu;
        if noise_std > 0.0 {
            body += sampling::gaussian_torus(noise_std, rng);
        }
        for (&a, &s) in mask.iter().zip(key.bits()) {
            if s == 1 {
                body += a;
            }
        }
        Self { mask, body }
    }

    /// A *trivial* (noiseless, keyless) encryption of `mu`: zero mask. Any
    /// key decrypts it to `mu`. Used for public constants and test
    /// polynomial bodies.
    pub fn trivial(mu: Torus32, dim: usize) -> Self {
        Self {
            mask: vec![Torus32::ZERO; dim],
            body: mu,
        }
    }

    /// Assemble from raw parts (used by sample extraction and the key
    /// switch).
    pub fn from_parts(mask: Vec<Torus32>, body: Torus32) -> Self {
        Self { mask, body }
    }

    /// LWE dimension `n`.
    pub fn dim(&self) -> usize {
        self.mask.len()
    }

    /// The mask `(a_1, …, a_n)`.
    pub fn mask(&self) -> &[Torus32] {
        &self.mask
    }

    /// The body `b`.
    pub fn body(&self) -> Torus32 {
        self.body
    }

    /// Homomorphic addition: `Enc(m1) + Enc(m2) = Enc(m1 + m2)` (noise
    /// adds).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(self.dim(), rhs.dim(), "LWE dimension mismatch");
        Self {
            mask: self
                .mask
                .iter()
                .zip(&rhs.mask)
                .map(|(&a, &b)| a + b)
                .collect(),
            body: self.body + rhs.body,
        }
    }

    /// Homomorphic subtraction.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn sub(&self, rhs: &Self) -> Self {
        assert_eq!(self.dim(), rhs.dim(), "LWE dimension mismatch");
        Self {
            mask: self
                .mask
                .iter()
                .zip(&rhs.mask)
                .map(|(&a, &b)| a - b)
                .collect(),
            body: self.body - rhs.body,
        }
    }

    /// Homomorphic negation.
    #[must_use]
    pub fn neg(&self) -> Self {
        Self {
            mask: self.mask.iter().map(|&a| -a).collect(),
            body: -self.body,
        }
    }

    /// Multiply by a small signed constant (noise scales by `|k|`).
    #[must_use]
    pub fn scalar_mul(&self, k: i64) -> Self {
        Self {
            mask: self.mask.iter().map(|&a| a.scalar_mul(k)).collect(),
            body: self.body.scalar_mul(k),
        }
    }

    /// Add a plaintext torus constant to the encrypted message (exact, no
    /// noise growth).
    #[must_use]
    pub fn add_plain(&self, mu: Torus32) -> Self {
        Self {
            mask: self.mask.clone(),
            body: self.body + mu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (LweSecretKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(10);
        let key = LweSecretKey::generate(64, &mut rng);
        (key, rng)
    }

    #[test]
    fn encrypt_decrypt_phase_is_message_plus_small_noise() {
        let (key, mut rng) = setup();
        let mu = Torus32::from_f64(0.25);
        let ct = LweCiphertext::encrypt(mu, &key, 2f64.powi(-20), &mut rng);
        let err = (key.phase(&ct) - mu).to_f64_signed().abs();
        assert!(err < 1e-4, "err = {err}");
    }

    #[test]
    fn trivial_decrypts_under_any_key() {
        let (key, _) = setup();
        let mu = Torus32::from_f64(0.375);
        let ct = LweCiphertext::trivial(mu, key.dim());
        assert_eq!(key.phase(&ct), mu);
    }

    #[test]
    fn homomorphic_add_sub() {
        let (key, mut rng) = setup();
        let m1 = Torus32::from_f64(0.125);
        let m2 = Torus32::from_f64(0.25);
        let c1 = LweCiphertext::encrypt(m1, &key, 0.0, &mut rng);
        let c2 = LweCiphertext::encrypt(m2, &key, 0.0, &mut rng);
        assert_eq!(key.phase(&c1.add(&c2)), m1 + m2);
        assert_eq!(key.phase(&c1.sub(&c2)), m1 - m2);
        assert_eq!(key.phase(&c1.neg()), -m1);
    }

    #[test]
    fn scalar_mul_scales_the_message() {
        let (key, mut rng) = setup();
        let mu = Torus32::from_f64(0.0625);
        let ct = LweCiphertext::encrypt(mu, &key, 0.0, &mut rng);
        assert_eq!(key.phase(&ct.scalar_mul(3)), mu.scalar_mul(3));
    }

    #[test]
    fn add_plain_shifts_only_the_body() {
        let (key, mut rng) = setup();
        let mu = Torus32::from_f64(0.1);
        let shift = Torus32::from_f64(0.2);
        let ct = LweCiphertext::encrypt(mu, &key, 0.0, &mut rng);
        let shifted = ct.add_plain(shift);
        assert_eq!(shifted.mask(), ct.mask());
        assert_eq!(key.phase(&shifted), mu + shift);
    }
}
