//! TFHE parameter sets (Table III of the paper, plus fast test sets).
//!
//! The paper specifies `(N, n, k, l_b, λ)` per set and `l_k = 9` for the
//! Fig 1 configuration. It does not publish decomposition bases or noise
//! standard deviations; we take conventional values from the
//! TFHE/Concrete lineage and record them here (see `DESIGN.md` §12).
//! Latency/throughput experiments depend only on `(N, n, k, l_b, l_k)`;
//! correctness tests depend on the rest and pass with these choices.

use morphling_math::DecompParams;

/// Full parameterization of a TFHE instance.
#[derive(Clone, Debug, PartialEq)]
pub struct TfheParams {
    /// Human-readable name (e.g. `"I"`, `"B"`, `"TEST"`).
    pub name: &'static str,
    /// GLWE polynomial size `N`.
    pub poly_size: usize,
    /// LWE dimension `n` (number of blind-rotation iterations).
    pub lwe_dim: usize,
    /// GLWE dimension `k`.
    pub glwe_dim: usize,
    /// Gadget decomposition for the bootstrapping key (base `β`, level `l_b`).
    pub bsk_decomp: DecompParams,
    /// Gadget decomposition for the key-switching key (base, level `l_k`).
    pub ksk_decomp: DecompParams,
    /// LWE noise standard deviation (fraction of the torus).
    pub lwe_noise_std: f64,
    /// GLWE noise standard deviation (fraction of the torus).
    pub glwe_noise_std: f64,
    /// Default plaintext modulus `p` for integer messages (with one bit of
    /// padding; messages live in `[0, p)` encoded into the half-torus).
    pub plaintext_modulus: u64,
    /// Claimed security level in bits (from the paper; informational).
    pub security_bits: u32,
    /// Whether bootstrapping is *functionally* reliable on the 32-bit torus
    /// with these parameters. Sets IV and A use `l_b = 1`, which the paper
    /// evaluates for performance only; on a 32-bit torus their noise budget
    /// is too tight for dependable decryption, so correctness tests skip
    /// them (see DESIGN.md §12).
    pub functional: bool,
}

impl TfheParams {
    /// Number of mask elements after sample extraction (`k·N`), i.e. the
    /// input dimension of the key switch.
    pub fn extracted_lwe_dim(&self) -> usize {
        self.glwe_dim * self.poly_size
    }

    /// `2N`, the modulus the blind rotation switches exponents into.
    pub fn two_n(&self) -> u64 {
        2 * self.poly_size as u64
    }

    /// Polynomial multiplications in one external product:
    /// `(k+1)² · l_b` (§II-B).
    pub fn polymuls_per_external_product(&self) -> u64 {
        let k1 = (self.glwe_dim + 1) as u64;
        k1 * k1 * self.bsk_decomp.level() as u64
    }

    /// Polynomial multiplications in one full bootstrap
    /// (`n` external products).
    pub fn polymuls_per_bootstrap(&self) -> u64 {
        self.lwe_dim as u64 * self.polymuls_per_external_product()
    }

    /// Size of one `BSK_i` (a single GGSW) in bytes, with coefficients
    /// stored in the *transform domain* as 64-bit complex points — the
    /// format Private-A2 holds (§V-A): `(k+1)·l_b × (k+1)` polynomials at
    /// `N/2` points × 8 bytes.
    pub fn bsk_iter_bytes_fourier(&self) -> u64 {
        let k1 = (self.glwe_dim + 1) as u64;
        let rows = k1 * self.bsk_decomp.level() as u64;
        rows * k1 * (self.poly_size as u64 / 2) * 8
    }

    /// Total bootstrapping-key bytes in the transform domain.
    pub fn bsk_total_bytes_fourier(&self) -> u64 {
        self.lwe_dim as u64 * self.bsk_iter_bytes_fourier()
    }

    /// Total key-switching-key bytes: `kN × l_k` LWE ciphertexts of
    /// `(n+1)` 32-bit words.
    pub fn ksk_total_bytes(&self) -> u64 {
        (self.extracted_lwe_dim() as u64)
            * self.ksk_decomp.level() as u64
            * (self.lwe_dim as u64 + 1)
            * 4
    }

    /// Bytes of one ACC ciphertext (a GLWE: `(k+1)` polynomials of `N`
    /// 32-bit coefficients).
    pub fn acc_bytes(&self) -> u64 {
        (self.glwe_dim as u64 + 1) * self.poly_size as u64 * 4
    }

    /// Return a copy with all noise disabled — deterministic pipelines for
    /// tests and debugging.
    #[must_use]
    pub fn noiseless(mut self) -> Self {
        self.lwe_noise_std = 0.0;
        self.glwe_noise_std = 0.0;
        self
    }

    /// Return a copy with a different default plaintext modulus.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a power of two ≥ 2.
    #[must_use]
    pub fn with_plaintext_modulus(mut self, p: u64) -> Self {
        assert!(
            p.is_power_of_two() && p >= 2,
            "plaintext modulus must be a power of two ≥ 2"
        );
        self.plaintext_modulus = p;
        self
    }
}

/// Named parameter sets: the paper's Table III (I–IV, A–C), the Fig 1
/// configuration, and fast test sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParamSet {
    /// Set I: N=1024, n=500, k=1, l_b=2 — 80-bit.
    I,
    /// Set II: N=1024, n=630, k=1, l_b=3 — 110-bit.
    II,
    /// Set III: N=2048, n=592, k=1, l_b=3 — 128-bit.
    III,
    /// Set IV: N=2048, n=742, k=1, l_b=1 — 128-bit (performance-only).
    IV,
    /// Set A: N=4096, n=769, k=1, l_b=1 — 128-bit (performance-only).
    A,
    /// Set B: N=1024, n=497, k=2, l_b=2 — 128-bit.
    B,
    /// Set C: N=512, n=487, k=3, l_b=3 — 128-bit.
    C,
    /// The Fig 1 configuration: N=1024, n=481, k=2, l_b=4, l_k=9 — 128-bit.
    Fig1,
    /// Fast test set: N=256, n=16, k=1 — no security, quick unit tests.
    Test,
    /// Medium test set: N=512, n=64, k=2 — no security, integration tests.
    TestMedium,
}

/// Every Table III set, in paper order (I, II, III, IV, A, B, C).
pub const ALL_PAPER_SETS: [ParamSet; 7] = [
    ParamSet::I,
    ParamSet::II,
    ParamSet::III,
    ParamSet::IV,
    ParamSet::A,
    ParamSet::B,
    ParamSet::C,
];

impl ParamSet {
    /// Materialize the full parameter record.
    pub fn params(self) -> TfheParams {
        match self {
            ParamSet::I => TfheParams {
                name: "I",
                poly_size: 1024,
                lwe_dim: 500,
                glwe_dim: 1,
                bsk_decomp: DecompParams::new(8, 2),
                ksk_decomp: DecompParams::new(5, 3),
                lwe_noise_std: 2f64.powi(-17),
                glwe_noise_std: 2f64.powi(-27),
                plaintext_modulus: 4,
                security_bits: 80,
                functional: true,
            },
            ParamSet::II => TfheParams {
                name: "II",
                poly_size: 1024,
                lwe_dim: 630,
                glwe_dim: 1,
                bsk_decomp: DecompParams::new(7, 3),
                ksk_decomp: DecompParams::new(5, 3),
                lwe_noise_std: 2f64.powi(-16),
                glwe_noise_std: 2f64.powi(-26),
                plaintext_modulus: 4,
                security_bits: 110,
                functional: true,
            },
            ParamSet::III => TfheParams {
                name: "III",
                poly_size: 2048,
                lwe_dim: 592,
                glwe_dim: 1,
                bsk_decomp: DecompParams::new(8, 3),
                ksk_decomp: DecompParams::new(5, 3),
                lwe_noise_std: 2f64.powi(-17),
                glwe_noise_std: 2f64.powi(-28),
                plaintext_modulus: 8,
                security_bits: 128,
                functional: true,
            },
            ParamSet::IV => TfheParams {
                name: "IV",
                poly_size: 2048,
                lwe_dim: 742,
                glwe_dim: 1,
                bsk_decomp: DecompParams::new(16, 1),
                ksk_decomp: DecompParams::new(5, 3),
                lwe_noise_std: 2f64.powi(-17),
                glwe_noise_std: 2f64.powi(-30),
                plaintext_modulus: 4,
                security_bits: 128,
                functional: false,
            },
            ParamSet::A => TfheParams {
                name: "A",
                poly_size: 4096,
                lwe_dim: 769,
                glwe_dim: 1,
                bsk_decomp: DecompParams::new(16, 1),
                ksk_decomp: DecompParams::new(5, 3),
                lwe_noise_std: 2f64.powi(-17),
                glwe_noise_std: 2f64.powi(-30),
                plaintext_modulus: 4,
                security_bits: 128,
                functional: false,
            },
            ParamSet::B => TfheParams {
                name: "B",
                poly_size: 1024,
                lwe_dim: 497,
                glwe_dim: 2,
                bsk_decomp: DecompParams::new(8, 2),
                ksk_decomp: DecompParams::new(5, 3),
                lwe_noise_std: 2f64.powi(-16),
                glwe_noise_std: 2f64.powi(-27),
                plaintext_modulus: 4,
                security_bits: 128,
                functional: true,
            },
            ParamSet::C => TfheParams {
                name: "C",
                poly_size: 512,
                lwe_dim: 487,
                glwe_dim: 3,
                bsk_decomp: DecompParams::new(7, 3),
                ksk_decomp: DecompParams::new(5, 3),
                lwe_noise_std: 2f64.powi(-16),
                glwe_noise_std: 2f64.powi(-26),
                plaintext_modulus: 4,
                security_bits: 128,
                functional: true,
            },
            ParamSet::Fig1 => TfheParams {
                name: "FIG1",
                poly_size: 1024,
                lwe_dim: 481,
                glwe_dim: 2,
                bsk_decomp: DecompParams::new(6, 4),
                ksk_decomp: DecompParams::new(2, 9),
                lwe_noise_std: 2f64.powi(-15),
                glwe_noise_std: 2f64.powi(-26),
                plaintext_modulus: 4,
                security_bits: 128,
                functional: true,
            },
            ParamSet::Test => TfheParams {
                name: "TEST",
                poly_size: 256,
                lwe_dim: 16,
                glwe_dim: 1,
                bsk_decomp: DecompParams::new(6, 3),
                ksk_decomp: DecompParams::new(3, 4),
                lwe_noise_std: 2f64.powi(-20),
                glwe_noise_std: 2f64.powi(-28),
                plaintext_modulus: 4,
                security_bits: 0,
                functional: true,
            },
            ParamSet::TestMedium => TfheParams {
                name: "TEST-M",
                poly_size: 512,
                lwe_dim: 64,
                glwe_dim: 2,
                bsk_decomp: DecompParams::new(6, 3),
                ksk_decomp: DecompParams::new(3, 4),
                lwe_noise_std: 2f64.powi(-20),
                glwe_noise_std: 2f64.powi(-28),
                plaintext_modulus: 8,
                security_bits: 0,
                functional: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_dimensions_match_the_paper() {
        let expect = [
            ("I", 1024, 500, 1, 2, 80),
            ("II", 1024, 630, 1, 3, 110),
            ("III", 2048, 592, 1, 3, 128),
            ("IV", 2048, 742, 1, 1, 128),
            ("A", 4096, 769, 1, 1, 128),
            ("B", 1024, 497, 2, 2, 128),
            ("C", 512, 487, 3, 3, 128),
        ];
        for (set, (name, big_n, n, k, lb, lambda)) in ALL_PAPER_SETS.iter().zip(expect) {
            let p = set.params();
            assert_eq!(p.name, name);
            assert_eq!(p.poly_size, big_n);
            assert_eq!(p.lwe_dim, n);
            assert_eq!(p.glwe_dim, k);
            assert_eq!(p.bsk_decomp.level(), lb);
            assert_eq!(p.security_bits, lambda);
        }
    }

    #[test]
    fn fig1_set_matches_the_caption() {
        // Fig 1 caption: N=1024, n=481, k=2, l_b=4, l_k=9.
        let p = ParamSet::Fig1.params();
        assert_eq!((p.poly_size, p.lwe_dim, p.glwe_dim), (1024, 481, 2));
        assert_eq!(p.bsk_decomp.level(), 4);
        assert_eq!(p.ksk_decomp.level(), 9);
    }

    #[test]
    fn bootstrap_polymul_count_exceeds_ten_thousand_at_128_bit() {
        // The paper's headline: ">10,000 polynomial multiplications" for a
        // single 128-bit bootstrap (its Fig 1 configuration; also true of
        // the higher-k set C).
        for set in [ParamSet::C, ParamSet::Fig1] {
            let p = set.params();
            assert!(
                p.polymuls_per_bootstrap() > 10_000,
                "{}: {}",
                p.name,
                p.polymuls_per_bootstrap()
            );
        }
    }

    #[test]
    fn fig1_memory_footprints_match_the_papers_order() {
        // Fig 1 reports BSK ≈ 101.4 MB and KSK ≈ 33.8 MB for the 128-bit
        // set. Exact bytes depend on the storage format; check the order of
        // magnitude with our fourier format (±2×).
        let p = ParamSet::Fig1.params();
        let bsk_mb = p.bsk_total_bytes_fourier() as f64 / (1024.0 * 1024.0);
        let ksk_mb = p.ksk_total_bytes() as f64 / (1024.0 * 1024.0);
        assert!((50.0..200.0).contains(&bsk_mb), "bsk = {bsk_mb} MB");
        assert!((17.0..70.0).contains(&ksk_mb), "ksk = {ksk_mb} MB");
    }

    #[test]
    fn decomposition_fits_the_32_bit_torus() {
        for set in ALL_PAPER_SETS
            .iter()
            .chain([ParamSet::Fig1, ParamSet::Test].iter())
        {
            let p = set.params();
            assert!(p.bsk_decomp.total_bits() <= 32, "{}", p.name);
            assert!(p.ksk_decomp.total_bits() <= 32, "{}", p.name);
        }
    }

    #[test]
    fn noiseless_builder_zeroes_noise() {
        let p = ParamSet::Test.params().noiseless();
        assert_eq!(p.lwe_noise_std, 0.0);
        assert_eq!(p.glwe_noise_std, 0.0);
    }

    #[test]
    fn external_product_polymul_count() {
        // (k+1)^2 l_b: set C (k=3, l_b=3) → 48.
        assert_eq!(ParamSet::C.params().polymuls_per_external_product(), 48);
    }
}
