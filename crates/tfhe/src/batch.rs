//! Batched and multi-threaded bootstrapping.
//!
//! TFHE bootstraps are embarrassingly parallel across ciphertexts — the
//! very property Morphling's 16 bootstrapping cores exploit, and the
//! reason the paper's CPU baseline runs on a 64-core Xeon. This module
//! provides the per-call software equivalent: the batch is split into
//! contiguous chunks, each scoped thread writes its chunk through a
//! disjoint `split_at_mut` slice of the output (no per-slot locks), and
//! results come back in input order.
//!
//! These methods spawn and join their threads on **every call**. For a
//! stream of batches, prefer [`BootstrapEngine`](crate::BootstrapEngine),
//! which keeps a persistent worker pool warm and amortizes the setup;
//! these remain as the zero-state baseline the engine is benchmarked
//! against.

use crate::error::TfheError;
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::server::ServerKey;

/// Split `n` items into `parts` contiguous ranges whose lengths differ by
/// at most one (the same plan the engine's chunker and the scoped threads
/// below both rely on for ordered, disjoint output).
pub(crate) fn balanced_chunks(
    n: usize,
    parts: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    (0..parts).map(move |t| {
        let len = base + usize::from(t < extra);
        let range = start..start + len;
        start += len;
        range
    })
}

impl ServerKey {
    /// Bootstrap a batch sequentially (the single-core CPU baseline).
    pub fn batch_bootstrap(&self, cts: &[LweCiphertext], lut: &Lut) -> Vec<LweCiphertext> {
        cts.iter()
            .map(|ct| self.programmable_bootstrap(ct, lut))
            .collect()
    }

    /// Fallible [`batch_bootstrap`](Self::batch_bootstrap).
    ///
    /// # Errors
    ///
    /// The first [`TfheError`] any element produces, in input order.
    pub fn try_batch_bootstrap(
        &self,
        cts: &[LweCiphertext],
        lut: &Lut,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        cts.iter()
            .map(|ct| self.try_programmable_bootstrap(ct, lut))
            .collect()
    }

    /// Bootstrap a batch on `threads` OS threads. Results are in input
    /// order and identical to the sequential path.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or on malformed inputs; use
    /// [`try_batch_bootstrap_parallel`](Self::try_batch_bootstrap_parallel)
    /// for a `Result`.
    pub fn batch_bootstrap_parallel(
        &self,
        cts: &[LweCiphertext],
        lut: &Lut,
        threads: usize,
    ) -> Vec<LweCiphertext> {
        match self.try_batch_bootstrap_parallel(cts, lut, threads) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible
    /// [`batch_bootstrap_parallel`](Self::batch_bootstrap_parallel).
    ///
    /// Inputs are validated up front; each scoped thread then writes its
    /// contiguous chunk through a disjoint `split_at_mut` view of the
    /// output buffer — ordered results with no locks on the write path.
    ///
    /// # Errors
    ///
    /// [`TfheError::ZeroThreads`] if `threads == 0`;
    /// [`TfheError::LweDimensionMismatch`] / [`TfheError::LutSizeMismatch`]
    /// on malformed inputs; [`TfheError::WorkerPanicked`] if a scoped
    /// worker thread panicked mid-batch (this per-call path has no retry
    /// loop — use the [`BootstrapEngine`](crate::BootstrapEngine) for
    /// self-healing execution).
    pub fn try_batch_bootstrap_parallel(
        &self,
        cts: &[LweCiphertext],
        lut: &Lut,
        threads: usize,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        if threads == 0 {
            return Err(TfheError::ZeroThreads);
        }
        self.validate_batch(cts, lut)?;
        if threads == 1 || cts.len() <= 1 {
            // Inputs are pre-validated: the infallible path cannot panic.
            return Ok(self.batch_bootstrap(cts, lut));
        }
        let placeholder =
            LweCiphertext::trivial(morphling_math::Torus32::ZERO, self.params().lwe_dim);
        let mut out = vec![placeholder; cts.len()];
        crossbeam::thread::scope(|scope| {
            let mut rest: &mut [LweCiphertext] = &mut out;
            for range in balanced_chunks(cts.len(), threads) {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let inputs = &cts[range];
                scope.spawn(move |_| {
                    for (slot, ct) in chunk.iter_mut().zip(inputs) {
                        *slot = self.programmable_bootstrap(ct, lut);
                    }
                });
            }
        })
        .map_err(|_| TfheError::WorkerPanicked { worker: 0 })?;
        Ok(out)
    }

    /// Check every ciphertext's dimension and the LUT's polynomial size
    /// against this key's parameters (shared by the per-call batch paths
    /// and the [`BootstrapEngine`](crate::BootstrapEngine) submit path).
    pub(crate) fn validate_batch(&self, cts: &[LweCiphertext], lut: &Lut) -> Result<(), TfheError> {
        for ct in cts {
            if ct.dim() != self.params().lwe_dim {
                return Err(TfheError::LweDimensionMismatch {
                    expected: self.params().lwe_dim,
                    got: ct.dim(),
                });
            }
        }
        if lut.polynomial().len() != self.params().poly_size {
            return Err(TfheError::LutSizeMismatch {
                lut: lut.polynomial().len(),
                poly_size: self.params().poly_size,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balanced_chunks_cover_everything_in_order() {
        for n in [0usize, 1, 5, 8, 13] {
            for parts in [1usize, 2, 3, 8] {
                let ranges: Vec<_> = balanced_chunks(n, parts).collect();
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
                if n > 0 {
                    let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(max - min <= 1, "n={n} parts={parts} lens={lens:?}");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(600);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::from_fn(params.poly_size, 4, |m| (m + 2) % 4);
        let cts: Vec<_> = (0..8).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let seq = sk.batch_bootstrap(&cts, &lut);
        let par = sk.batch_bootstrap_parallel(&cts, &lut, 4);
        assert_eq!(seq.len(), par.len());
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(a, b, "i={i}");
            assert_eq!(ck.decrypt(a), ((i as u64 % 4) + 2) % 4);
        }
    }

    #[test]
    fn parallel_handles_uneven_chunks() {
        let mut rng = StdRng::seed_from_u64(602);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        // 7 items on 3 threads: chunks of 3/2/2.
        let cts: Vec<_> = (0..7).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let par = sk.batch_bootstrap_parallel(&cts, &lut, 3);
        assert_eq!(par, sk.batch_bootstrap(&cts, &lut));
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let mut rng = StdRng::seed_from_u64(601);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];
        assert_eq!(sk.batch_bootstrap_parallel(&cts, &lut, 1).len(), 1);
    }

    #[test]
    fn zero_threads_is_an_error() {
        let mut rng = StdRng::seed_from_u64(603);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        assert_eq!(
            sk.try_batch_bootstrap_parallel(&[], &lut, 0),
            Err(TfheError::ZeroThreads)
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread is required")]
    fn zero_threads_panics_in_infallible_wrapper() {
        let mut rng = StdRng::seed_from_u64(604);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        let _ = sk.batch_bootstrap_parallel(&[], &lut, 0);
    }
}
