//! Batched and multi-threaded bootstrapping.
//!
//! TFHE bootstraps are embarrassingly parallel across ciphertexts — the
//! very property Morphling's 16 bootstrapping cores exploit, and the
//! reason the paper's CPU baseline runs on a 64-core Xeon. This module
//! provides the per-call software equivalent: the batch is split into
//! contiguous chunks, each scoped thread writes its chunk through a
//! disjoint `split_at_mut` slice of the output (no per-slot locks), and
//! results come back in input order.
//!
//! These threads spawn and join on **every call**. For a stream of
//! batches, prefer [`BootstrapEngine`](crate::BootstrapEngine), which
//! keeps a persistent worker pool warm; for a stream of *individual
//! requests*, the [`Dispatcher`](crate::dispatch::Dispatcher) forms the
//! batches for you. This path remains as the zero-state baseline both are
//! benchmarked against, reachable through
//! [`ParallelServerKey`](crate::ParallelServerKey)'s
//! [`Bootstrapper`](crate::Bootstrapper) impl.
//!
//! The positional `ServerKey::batch_bootstrap*` methods below are
//! deprecated thin wrappers over that trait surface.

use crate::bootstrapper::{BatchRequest, Bootstrapper};
use crate::error::TfheError;
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::server::ServerKey;

/// Split `n` items into `parts` contiguous ranges whose lengths differ by
/// at most one (the same plan the engine's chunker and the scoped threads
/// below both rely on for ordered, disjoint output).
pub(crate) fn balanced_chunks(
    n: usize,
    parts: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    (0..parts).map(move |t| {
        let len = base + usize::from(t < extra);
        let range = start..start + len;
        start += len;
        range
    })
}

/// Run `n` items across `threads` scoped threads in balanced contiguous
/// chunks, each thread writing its chunk through a disjoint
/// `split_at_mut` view of the output.
///
/// `mk_state` runs once per thread (e.g. to build a per-thread
/// [`BootstrapWorkspace`](crate::BootstrapWorkspace)); `run_item` maps an
/// input index to its output through that state.
///
/// Every chunk's join handle is inspected individually, so a panic is
/// attributed to the chunk (= worker) that actually raised it — this is
/// where `WorkerPanicked { worker }` gets its real index. The first
/// panicking chunk wins; absent panics, the earliest chunk's item error
/// wins.
pub(crate) fn run_chunked_scoped<S, MkS, F>(
    n: usize,
    threads: usize,
    placeholder: LweCiphertext,
    mk_state: MkS,
    run_item: F,
) -> Result<Vec<LweCiphertext>, TfheError>
where
    MkS: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> Result<LweCiphertext, TfheError> + Sync,
{
    let mut out = vec![placeholder; n];
    let mk_state = &mk_state;
    let run_item = &run_item;
    let joined = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads.min(n));
        let mut rest: &mut [LweCiphertext] = &mut out;
        for range in balanced_chunks(n, threads) {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            handles.push(scope.spawn(move |_| -> Result<(), TfheError> {
                let mut state = mk_state();
                for (slot, i) in chunk.iter_mut().zip(range) {
                    *slot = run_item(i, &mut state)?;
                }
                Ok(())
            }));
        }
        // Join each chunk's handle individually: a panic surfaces as that
        // handle's `Err`, carrying the chunk index with it instead of
        // collapsing every failure onto chunk 0.
        let mut first_panic: Option<usize> = None;
        let mut first_error: Option<TfheError> = None;
        for (chunk_idx, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Err(_) => {
                    if first_panic.is_none() {
                        first_panic = Some(chunk_idx);
                    }
                }
            }
        }
        match (first_panic, first_error) {
            (Some(worker), _) => Err(TfheError::WorkerPanicked { worker }),
            (None, Some(e)) => Err(e),
            (None, None) => Ok(()),
        }
    });
    match joined {
        Ok(result) => result?,
        // Unreachable in practice — every handle above is joined, so the
        // scope itself cannot re-raise — but keep a safe fallback.
        Err(_) => return Err(TfheError::WorkerPanicked { worker: 0 }),
    }
    Ok(out)
}

/// The scoped-thread batch bootstrap behind
/// [`ParallelServerKey`](crate::ParallelServerKey) and the deprecated
/// `batch_bootstrap_parallel` wrappers: validate once, then fan the
/// request out over `threads` chunks with a per-thread workspace.
pub(crate) fn bootstrap_scoped_parallel(
    server: &ServerKey,
    req: &BatchRequest,
    threads: usize,
) -> Result<Vec<LweCiphertext>, TfheError> {
    if threads == 0 {
        return Err(TfheError::ZeroThreads);
    }
    server.validate_request(req)?;
    if req.is_empty() {
        return Ok(Vec::new());
    }
    if threads == 1 || req.len() <= 1 {
        // Inputs are pre-validated; run the sequential trait path.
        return server.try_bootstrap_batch(req);
    }
    let placeholder =
        LweCiphertext::trivial(morphling_math::Torus32::ZERO, server.params().lwe_dim);
    run_chunked_scoped(
        req.len(),
        threads,
        placeholder,
        || server.workspace(),
        |i, ws| server.try_programmable_bootstrap_with(&req.ciphertexts()[i], req.lut_for(i), ws),
    )
}

impl ServerKey {
    /// Bootstrap a batch sequentially (the single-core CPU baseline).
    #[deprecated(
        since = "0.5.0",
        note = "build a `BatchRequest` and call `Bootstrapper::try_bootstrap_batch` on the \
                `ServerKey` instead"
    )]
    pub fn batch_bootstrap(&self, cts: &[LweCiphertext], lut: &Lut) -> Vec<LweCiphertext> {
        match self.try_bootstrap_batch(&BatchRequest::shared(cts.to_vec(), lut.clone())) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible sequential batch bootstrap.
    ///
    /// # Errors
    ///
    /// The first [`TfheError`] any element produces, in input order.
    #[deprecated(
        since = "0.5.0",
        note = "build a `BatchRequest` and call `Bootstrapper::try_bootstrap_batch` on the \
                `ServerKey` instead"
    )]
    pub fn try_batch_bootstrap(
        &self,
        cts: &[LweCiphertext],
        lut: &Lut,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        self.try_bootstrap_batch(&BatchRequest::shared(cts.to_vec(), lut.clone()))
    }

    /// Bootstrap a batch on `threads` OS threads. Results are in input
    /// order and identical to the sequential path.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or on malformed inputs.
    #[deprecated(
        since = "0.5.0",
        note = "wrap the key in `ParallelServerKey` (or set `BatchRequest::threads`) and call \
                `Bootstrapper::try_bootstrap_batch` instead"
    )]
    pub fn batch_bootstrap_parallel(
        &self,
        cts: &[LweCiphertext],
        lut: &Lut,
        threads: usize,
    ) -> Vec<LweCiphertext> {
        let req = BatchRequest::shared(cts.to_vec(), lut.clone());
        match bootstrap_scoped_parallel(self, &req, threads) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible parallel batch bootstrap.
    ///
    /// # Errors
    ///
    /// [`TfheError::ZeroThreads`] if `threads == 0`;
    /// [`TfheError::LweDimensionMismatch`] / [`TfheError::LutSizeMismatch`]
    /// on malformed inputs; [`TfheError::WorkerPanicked`] naming the chunk
    /// whose scoped thread panicked mid-batch (this per-call path has no
    /// retry loop — use the [`BootstrapEngine`](crate::BootstrapEngine)
    /// for self-healing execution).
    #[deprecated(
        since = "0.5.0",
        note = "wrap the key in `ParallelServerKey` (or set `BatchRequest::threads`) and call \
                `Bootstrapper::try_bootstrap_batch` instead"
    )]
    pub fn try_batch_bootstrap_parallel(
        &self,
        cts: &[LweCiphertext],
        lut: &Lut,
        threads: usize,
    ) -> Result<Vec<LweCiphertext>, TfheError> {
        let req = BatchRequest::shared(cts.to_vec(), lut.clone());
        bootstrap_scoped_parallel(self, &req, threads)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balanced_chunks_cover_everything_in_order() {
        for n in [0usize, 1, 5, 8, 13] {
            for parts in [1usize, 2, 3, 8] {
                let ranges: Vec<_> = balanced_chunks(n, parts).collect();
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
                if n > 0 {
                    let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(max - min <= 1, "n={n} parts={parts} lens={lens:?}");
                }
            }
        }
    }

    #[test]
    fn panics_are_attributed_to_the_real_chunk() {
        // 8 items on 4 threads: chunks 0..2, 2..4, 4..6, 6..8. Panic in
        // item 5 → chunk 2 — the regression the old code collapsed to
        // `worker: 0`.
        let placeholder = LweCiphertext::trivial(morphling_math::Torus32::ZERO, 4);
        for (panic_at, want_chunk) in [(0usize, 0usize), (3, 1), (5, 2), (7, 3)] {
            let got = run_chunked_scoped(
                8,
                4,
                placeholder.clone(),
                || (),
                |i, ()| {
                    assert!(i != panic_at, "injected panic at item {i}");
                    Ok(placeholder.clone())
                },
            );
            assert_eq!(
                got.unwrap_err(),
                TfheError::WorkerPanicked { worker: want_chunk },
                "panic_at={panic_at}"
            );
        }
    }

    #[test]
    fn earliest_panicking_chunk_wins() {
        let placeholder = LweCiphertext::trivial(morphling_math::Torus32::ZERO, 4);
        let got = run_chunked_scoped(
            8,
            4,
            placeholder.clone(),
            || (),
            |i, ()| {
                assert!(i < 2, "everything past chunk 0 panics");
                Ok(placeholder.clone())
            },
        );
        assert_eq!(got.unwrap_err(), TfheError::WorkerPanicked { worker: 1 });
    }

    #[test]
    fn item_errors_propagate_without_panic_attribution() {
        let placeholder = LweCiphertext::trivial(morphling_math::Torus32::ZERO, 4);
        let got = run_chunked_scoped(
            6,
            3,
            placeholder.clone(),
            || (),
            |i, ()| {
                if i == 4 {
                    Err(TfheError::EngineShutDown)
                } else {
                    Ok(placeholder.clone())
                }
            },
        );
        assert_eq!(got.unwrap_err(), TfheError::EngineShutDown);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(600);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::from_fn(params.poly_size, 4, |m| (m + 2) % 4);
        let cts: Vec<_> = (0..8).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let seq = sk.batch_bootstrap(&cts, &lut);
        let par = sk.batch_bootstrap_parallel(&cts, &lut, 4);
        assert_eq!(seq.len(), par.len());
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(a, b, "i={i}");
            assert_eq!(ck.decrypt(a), ((i as u64 % 4) + 2) % 4);
        }
    }

    #[test]
    fn parallel_handles_uneven_chunks() {
        let mut rng = StdRng::seed_from_u64(602);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        // 7 items on 3 threads: chunks of 3/2/2.
        let cts: Vec<_> = (0..7).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let par = sk.batch_bootstrap_parallel(&cts, &lut, 3);
        assert_eq!(par, sk.batch_bootstrap(&cts, &lut));
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let mut rng = StdRng::seed_from_u64(601);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];
        assert_eq!(sk.batch_bootstrap_parallel(&cts, &lut, 1).len(), 1);
    }

    #[test]
    fn zero_threads_is_an_error() {
        let mut rng = StdRng::seed_from_u64(603);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        assert_eq!(
            sk.try_batch_bootstrap_parallel(&[], &lut, 0),
            Err(TfheError::ZeroThreads)
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread is required")]
    fn zero_threads_panics_in_infallible_wrapper() {
        let mut rng = StdRng::seed_from_u64(604);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        let _ = sk.batch_bootstrap_parallel(&[], &lut, 0);
    }

    #[test]
    fn deprecated_wrappers_delegate_to_the_trait_path() {
        let mut rng = StdRng::seed_from_u64(605);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::from_fn(params.poly_size, 4, |m| (3 * m) % 4);
        let cts: Vec<_> = (0..4).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let req = BatchRequest::shared(cts.clone(), lut.clone());
        let want = sk.try_bootstrap_batch(&req).unwrap();
        assert_eq!(sk.batch_bootstrap(&cts, &lut), want);
        assert_eq!(sk.try_batch_bootstrap(&cts, &lut).unwrap(), want);
        assert_eq!(sk.batch_bootstrap_parallel(&cts, &lut, 2), want);
        assert_eq!(
            sk.try_batch_bootstrap_parallel(&cts, &lut, 2).unwrap(),
            want
        );
    }
}
