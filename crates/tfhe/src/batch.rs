//! Batched and multi-threaded bootstrapping.
//!
//! TFHE bootstraps are embarrassingly parallel across ciphertexts — the
//! very property Morphling's 16 bootstrapping cores exploit, and the
//! reason the paper's CPU baseline runs on a 64-core Xeon. This module
//! provides the per-call software equivalent: the batch is split into
//! contiguous chunks, each scoped thread writes its chunk through a
//! disjoint `split_at_mut` slice of the output (no per-slot locks), and
//! results come back in input order. Fanout (multi-value) requests slot
//! in naturally: an input producing `k` outputs owns `k` consecutive
//! output positions.
//!
//! These threads spawn and join on **every call**. For a stream of
//! batches, prefer [`BootstrapEngine`](crate::BootstrapEngine), which
//! keeps a persistent worker pool warm; for a stream of *individual
//! requests*, the [`Dispatcher`](crate::dispatch::Dispatcher) forms the
//! batches for you. This path remains as the zero-state baseline both are
//! benchmarked against, reachable through
//! [`ParallelServerKey`](crate::ParallelServerKey)'s
//! [`Bootstrapper`](crate::Bootstrapper) impl.

use crate::bootstrapper::{BatchRequest, Bootstrapper};
use crate::error::TfheError;
use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::server::ServerKey;

/// Split `n` items into `parts` contiguous ranges whose lengths differ by
/// at most one (the same plan the engine's chunker and the scoped threads
/// below both rely on for ordered, disjoint output).
pub(crate) fn balanced_chunks(
    n: usize,
    parts: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    (0..parts).map(move |t| {
        let len = base + usize::from(t < extra);
        let range = start..start + len;
        start += len;
        range
    })
}

/// Run `counts.len()` items across `threads` scoped threads in balanced
/// contiguous chunks, each thread writing its chunk through a disjoint
/// `split_at_mut` view of the flattened output. Item `i` owns
/// `counts[i]` consecutive output slots — 1 for a plain bootstrap, `k`
/// for a fanout input evaluated through `k` LUTs.
///
/// `mk_state` runs once per thread (e.g. to build a per-thread
/// [`BootstrapWorkspace`](crate::BootstrapWorkspace)); `run_item` maps an
/// input index to its `counts[i]` outputs through that state.
///
/// Every chunk's join handle is inspected individually, so a panic is
/// attributed to the chunk (= worker) that actually raised it — this is
/// where `WorkerPanicked { worker }` gets its real index. The first
/// panicking chunk wins; absent panics, the earliest chunk's item error
/// wins. An item returning the wrong number of outputs surfaces as
/// [`TfheError::OutputCheckFailed`] naming the item — a silent mismatch
/// would shear every later slot out of alignment.
pub(crate) fn run_chunked_scoped<S, MkS, F>(
    counts: &[usize],
    threads: usize,
    placeholder: LweCiphertext,
    mk_state: MkS,
    run_item: F,
) -> Result<Vec<LweCiphertext>, TfheError>
where
    MkS: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> Result<Vec<LweCiphertext>, TfheError> + Sync,
{
    let n = counts.len();
    let total: usize = counts.iter().sum();
    let mut out = vec![placeholder; total];
    let mk_state = &mk_state;
    let run_item = &run_item;
    let joined = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads.min(n));
        let mut rest: &mut [LweCiphertext] = &mut out;
        for range in balanced_chunks(n, threads) {
            let chunk_outputs: usize = counts[range.clone()].iter().sum();
            let (chunk, tail) = rest.split_at_mut(chunk_outputs);
            rest = tail;
            handles.push(scope.spawn(move |_| -> Result<(), TfheError> {
                let mut state = mk_state();
                let mut offset = 0;
                for i in range {
                    let outputs = run_item(i, &mut state)?;
                    if outputs.len() != counts[i] {
                        return Err(TfheError::OutputCheckFailed { index: i });
                    }
                    for (slot, o) in chunk[offset..offset + counts[i]].iter_mut().zip(outputs) {
                        *slot = o;
                    }
                    offset += counts[i];
                }
                Ok(())
            }));
        }
        // Join each chunk's handle individually: a panic surfaces as that
        // handle's `Err`, carrying the chunk index with it instead of
        // collapsing every failure onto chunk 0.
        let mut first_panic: Option<usize> = None;
        let mut first_error: Option<TfheError> = None;
        for (chunk_idx, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Err(_) => {
                    if first_panic.is_none() {
                        first_panic = Some(chunk_idx);
                    }
                }
            }
        }
        match (first_panic, first_error) {
            (Some(worker), _) => Err(TfheError::WorkerPanicked { worker }),
            (None, Some(e)) => Err(e),
            (None, None) => Ok(()),
        }
    });
    match joined {
        Ok(result) => result?,
        // Unreachable in practice — every handle above is joined, so the
        // scope itself cannot re-raise — but keep a safe fallback.
        Err(_) => return Err(TfheError::WorkerPanicked { worker: 0 }),
    }
    Ok(out)
}

/// The scoped-thread batch bootstrap behind
/// [`ParallelServerKey`](crate::ParallelServerKey): validate once, then
/// fan the request out over `threads` chunks with a per-thread workspace.
/// Fanout inputs run the multi-value path (one rotation, `k` extracted
/// outputs) inside their owning thread.
pub(crate) fn bootstrap_scoped_parallel(
    server: &ServerKey,
    req: &BatchRequest,
    threads: usize,
) -> Result<Vec<LweCiphertext>, TfheError> {
    if threads == 0 {
        return Err(TfheError::ZeroThreads);
    }
    server.validate_request(req)?;
    if req.is_empty() {
        return Ok(Vec::new());
    }
    if threads == 1 || req.len() <= 1 {
        // Inputs are pre-validated; run the sequential trait path.
        return server.try_bootstrap_batch(req);
    }
    let placeholder =
        LweCiphertext::trivial(morphling_math::Torus32::ZERO, server.params().lwe_dim);
    let counts: Vec<usize> = (0..req.len()).map(|i| req.output_count(i)).collect();
    run_chunked_scoped(
        &counts,
        threads,
        placeholder,
        || server.workspace(),
        |i, ws| {
            let ct = &req.ciphertexts()[i];
            match req.fanout() {
                Some(_) => {
                    let luts: Vec<&Lut> = req.luts_for(i);
                    server.try_bootstrap_many_refs(ct, &luts, ws)
                }
                None => Ok(vec![server.try_programmable_bootstrap_with(
                    ct,
                    req.lut_for(i),
                    ws,
                )?]),
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use morphling_math::Torus32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balanced_chunks_cover_everything_in_order() {
        for n in [0usize, 1, 5, 8, 13] {
            for parts in [1usize, 2, 3, 8] {
                let ranges: Vec<_> = balanced_chunks(n, parts).collect();
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
                if n > 0 {
                    let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(max - min <= 1, "n={n} parts={parts} lens={lens:?}");
                }
            }
        }
    }

    fn tagged(tag: u32) -> LweCiphertext {
        LweCiphertext::trivial(Torus32::from_raw(tag), 4)
    }

    #[test]
    fn panics_are_attributed_to_the_real_chunk() {
        // 8 items on 4 threads: chunks 0..2, 2..4, 4..6, 6..8. Panic in
        // item 5 → chunk 2 — the regression the old code collapsed to
        // `worker: 0`.
        for (panic_at, want_chunk) in [(0usize, 0usize), (3, 1), (5, 2), (7, 3)] {
            let got = run_chunked_scoped(
                &[1; 8],
                4,
                tagged(0),
                || (),
                |i, ()| {
                    assert!(i != panic_at, "injected panic at item {i}");
                    Ok(vec![tagged(0)])
                },
            );
            assert_eq!(
                got.unwrap_err(),
                TfheError::WorkerPanicked { worker: want_chunk },
                "panic_at={panic_at}"
            );
        }
    }

    #[test]
    fn earliest_panicking_chunk_wins() {
        let got = run_chunked_scoped(
            &[1; 8],
            4,
            tagged(0),
            || (),
            |i, ()| {
                assert!(i < 2, "everything past chunk 0 panics");
                Ok(vec![tagged(0)])
            },
        );
        assert_eq!(got.unwrap_err(), TfheError::WorkerPanicked { worker: 1 });
    }

    #[test]
    fn item_errors_propagate_without_panic_attribution() {
        let got = run_chunked_scoped(
            &[1; 6],
            3,
            tagged(0),
            || (),
            |i, ()| {
                if i == 4 {
                    Err(TfheError::EngineShutDown)
                } else {
                    Ok(vec![tagged(0)])
                }
            },
        );
        assert_eq!(got.unwrap_err(), TfheError::EngineShutDown);
    }

    #[test]
    fn multi_output_items_land_in_flattened_order() {
        // Counts [2, 1, 3, 1] on 2 threads: item i's k-th output carries
        // the tag 10·i + k and must land at the flattened offset even
        // though the chunk boundary falls mid-layout.
        let counts = [2usize, 1, 3, 1];
        let out = run_chunked_scoped(
            &counts,
            2,
            tagged(99),
            || (),
            |i, ()| {
                Ok((0..counts[i])
                    .map(|k| tagged((10 * i + k) as u32))
                    .collect())
            },
        )
        .unwrap();
        let tags: Vec<u32> = out.iter().map(|ct| ct.body().into_raw()).collect();
        assert_eq!(tags, vec![0, 1, 10, 20, 21, 22, 30]);
    }

    #[test]
    fn wrong_output_count_is_caught() {
        let got = run_chunked_scoped(
            &[1, 2, 1],
            2,
            tagged(0),
            || (),
            // Item 1 should produce two outputs but yields one.
            |_i, ()| Ok(vec![tagged(0)]),
        );
        assert_eq!(got.unwrap_err(), TfheError::OutputCheckFailed { index: 1 });
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(600);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::from_fn(params.poly_size, 4, |m| (m + 2) % 4);
        let cts: Vec<_> = (0..8).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let req = BatchRequest::shared(cts, lut);
        let seq = sk.try_bootstrap_batch(&req).unwrap();
        let par = bootstrap_scoped_parallel(&sk, &req, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(a, b, "i={i}");
            assert_eq!(ck.decrypt(a), ((i as u64 % 4) + 2) % 4);
        }
    }

    #[test]
    fn parallel_handles_uneven_chunks() {
        let mut rng = StdRng::seed_from_u64(602);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        // 7 items on 3 threads: chunks of 3/2/2.
        let cts: Vec<_> = (0..7).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let req = BatchRequest::shared(cts, lut);
        assert_eq!(
            bootstrap_scoped_parallel(&sk, &req, 3).unwrap(),
            sk.try_bootstrap_batch(&req).unwrap()
        );
    }

    #[test]
    fn parallel_fanout_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(606);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let luts = vec![
            Lut::identity(params.poly_size, 4),
            Lut::from_fn(params.poly_size, 4, |m| (3 * m + 1) % 4),
        ];
        let cts: Vec<_> = (0..5).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        // Mixed fanout widths exercise the flattened-slot bookkeeping.
        let map = vec![vec![0, 1], vec![1], vec![0, 1], vec![0], vec![1, 0]];
        let req = BatchRequest::fanned_out(cts, luts, map).unwrap();
        assert_eq!(req.output_len(), 8);
        let seq = sk.try_bootstrap_batch(&req).unwrap();
        let par = bootstrap_scoped_parallel(&sk, &req, 3).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let mut rng = StdRng::seed_from_u64(601);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        let req = BatchRequest::shared(vec![ck.encrypt(1, &mut rng)], lut);
        assert_eq!(bootstrap_scoped_parallel(&sk, &req, 1).unwrap().len(), 1);
    }

    #[test]
    fn zero_threads_is_an_error() {
        let mut rng = StdRng::seed_from_u64(603);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        let req = BatchRequest::shared(Vec::new(), lut);
        assert_eq!(
            bootstrap_scoped_parallel(&sk, &req, 0),
            Err(TfheError::ZeroThreads)
        );
    }
}
