//! Batched and multi-threaded bootstrapping.
//!
//! TFHE bootstraps are embarrassingly parallel across ciphertexts — the
//! very property Morphling's 16 bootstrapping cores exploit, and the
//! reason the paper's CPU baseline runs on a 64-core Xeon. This module
//! provides the software equivalent: a work-stealing batch bootstrap over
//! OS threads, used by the Table V bench as the multi-core CPU anchor.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::lut::Lut;
use crate::lwe::LweCiphertext;
use crate::server::ServerKey;

impl ServerKey {
    /// Bootstrap a batch sequentially (the single-core CPU baseline).
    pub fn batch_bootstrap(&self, cts: &[LweCiphertext], lut: &Lut) -> Vec<LweCiphertext> {
        cts.iter().map(|ct| self.programmable_bootstrap(ct, lut)).collect()
    }

    /// Bootstrap a batch on `threads` OS threads (atomic work queue).
    /// Results are in input order and identical to the sequential path.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn batch_bootstrap_parallel(
        &self,
        cts: &[LweCiphertext],
        lut: &Lut,
        threads: usize,
    ) -> Vec<LweCiphertext> {
        assert!(threads > 0, "at least one thread is required");
        if threads == 1 || cts.len() <= 1 {
            return self.batch_bootstrap(cts, lut);
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<LweCiphertext>>> =
            (0..cts.len()).map(|_| std::sync::Mutex::new(None)).collect();
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(cts.len()) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cts.len() {
                        break;
                    }
                    let out = self.programmable_bootstrap(&cts[i], lut);
                    *slots[i].lock().expect("slot lock") = Some(out);
                });
            }
        })
        .expect("bootstrap worker panicked");
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot lock").expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ClientKey;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(600);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::from_fn(params.poly_size, 4, |m| (m + 2) % 4);
        let cts: Vec<_> = (0..8).map(|m| ck.encrypt(m % 4, &mut rng)).collect();
        let seq = sk.batch_bootstrap(&cts, &lut);
        let par = sk.batch_bootstrap_parallel(&cts, &lut, 4);
        assert_eq!(seq.len(), par.len());
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(a, b, "i={i}");
            assert_eq!(ck.decrypt(a), ((i as u64 % 4) + 2) % 4);
        }
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let mut rng = StdRng::seed_from_u64(601);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let lut = Lut::identity(params.poly_size, 4);
        let cts = vec![ck.encrypt(1, &mut rng)];
        assert_eq!(sk.batch_bootstrap_parallel(&cts, &lut, 1).len(), 1);
    }
}
