//! The external product `GGSW ⊡ GLWE` and the CMUX — the inner loop of the
//! blind rotation (Algorithm 1, line 4) and the paper's most
//! compute-intensive operation (97% of all bootstrapping work, §I).
//!
//! Two implementations are provided:
//!
//! - [`ExternalProductEngine`]: the transform-domain path the hardware
//!   accelerates — decompose, forward-FFT the digit polynomials (optionally
//!   two at a time via the merge-split FFT), multiply-accumulate against
//!   the precomputed BSK spectra, and inverse-FFT once per output
//!   component. The accumulation order mirrors the VPE array with the
//!   ACC-output-stationary dataflow.
//! - [`external_product`] (free function): an exact integer-domain oracle
//!   with no floating point, used to validate the FFT path.

use morphling_math::negacyclic::mul_int_torus32;
use morphling_math::{Polynomial, SignedDecomposer, Torus32};
use morphling_transform::{NegacyclicFft, Spectrum};

use crate::ggsw::{FourierGgsw, GgswCiphertext};
use crate::glwe::GlweCiphertext;
use crate::params::TfheParams;
use crate::workspace::BootstrapWorkspace;

/// Transform-domain external-product engine (the software model of one
/// XPU's datapath).
#[derive(Debug)]
pub struct ExternalProductEngine {
    fft: NegacyclicFft,
    decomposer: SignedDecomposer<Torus32>,
    merge_split: bool,
    batched: bool,
}

impl ExternalProductEngine {
    /// Build an engine for `params`, with the merge-split FFT and the
    /// batched (SoA) forward transform enabled.
    pub fn new(params: &TfheParams) -> Self {
        Self {
            fft: NegacyclicFft::new(params.poly_size),
            decomposer: SignedDecomposer::new(params.bsk_decomp),
            merge_split: true,
            batched: true,
        }
    }

    /// Enable or disable the merge-split FFT (functional results are
    /// identical; this exists for the ablation benches).
    #[must_use]
    pub fn with_merge_split(mut self, enabled: bool) -> Self {
        self.merge_split = enabled;
        self
    }

    /// Enable or disable the batched SoA forward transform on the
    /// workspace hot path (bit-identical either way; this exists for the
    /// ablation benches and as an escape hatch).
    #[must_use]
    pub fn with_batched_transforms(mut self, enabled: bool) -> Self {
        self.batched = enabled;
        self
    }

    /// Whether the merge-split FFT is enabled.
    #[inline]
    pub fn merge_split(&self) -> bool {
        self.merge_split
    }

    /// Whether the batched SoA forward transform is enabled.
    #[inline]
    pub fn batched_transforms(&self) -> bool {
        self.batched
    }

    /// The FFT engine (shared with other components working at the same
    /// polynomial size).
    pub fn fft(&self) -> &NegacyclicFft {
        &self.fft
    }

    /// Decompose every component of `ct` and return the `(k+1)·l_b` digit
    /// spectra in row order — the stream eq. (1) feeds across the VPE rows.
    pub fn decompose_to_spectra(&self, ct: &GlweCiphertext) -> Vec<Spectrum> {
        let mut digit_polys: Vec<Polynomial<i64>> = Vec::new();
        for comp in ct.components() {
            digit_polys.extend(self.decomposer.decompose_poly(comp));
        }
        if self.merge_split {
            // Transform two real polynomials per FFT pass (MS-FFT, §V-A.3).
            let mut spectra = Vec::with_capacity(digit_polys.len());
            let mut chunks = digit_polys.chunks_exact(2);
            for pair in &mut chunks {
                let (s0, s1) = self.fft.forward_pair_int(&pair[0], &pair[1]);
                spectra.push(s0);
                spectra.push(s1);
            }
            if let [last] = chunks.remainder() {
                spectra.push(self.fft.forward_int(last));
            }
            spectra
        } else {
            digit_polys
                .iter()
                .map(|p| self.fft.forward_int(p))
                .collect()
        }
    }

    /// `ggsw ⊡ ct`: the full external product through the transform domain.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn external_product(&self, ggsw: &FourierGgsw, ct: &GlweCiphertext) -> GlweCiphertext {
        assert_eq!(ggsw.glwe_dim(), ct.dim(), "GLWE dimension mismatch");
        assert_eq!(ggsw.poly_size(), ct.poly_size(), "polynomial size mismatch");
        let k1 = ct.dim() + 1;
        let digit_spectra = self.decompose_to_spectra(ct);
        assert_eq!(
            digit_spectra.len(),
            ggsw.row_count(),
            "gadget level mismatch"
        );

        // ACC-output-stationary accumulation: each output component u keeps
        // a running spectrum (POLY-ACC-REG) over all (k+1)·l_b rows; the
        // IFFT runs once per component at the end.
        let mut acc: Vec<Spectrum> = (0..k1).map(|_| Spectrum::zero(ct.poly_size())).collect();
        for (r, digit_spec) in digit_spectra.iter().enumerate() {
            let row = ggsw.row(r);
            for (u, acc_u) in acc.iter_mut().enumerate() {
                acc_u.mul_acc(digit_spec, &row[u]);
            }
        }
        let comps = if self.merge_split {
            // Inverse-transform two components per IFFT pass.
            let mut comps = Vec::with_capacity(k1);
            let mut it = acc.chunks_exact(2);
            for pair in &mut it {
                let (p0, p1) = self.fft.inverse_pair_torus(&pair[0], &pair[1]);
                comps.push(p0);
                comps.push(p1);
            }
            if let [last] = it.remainder() {
                comps.push(self.fft.inverse_torus(last));
            }
            comps
        } else {
            acc.iter().map(|s| self.fft.inverse_torus(s)).collect()
        };
        GlweCiphertext::from_components(comps)
    }

    /// CMUX: `ct0 + ggsw ⊡ (ct1 − ct0)` — selects `ct1` when the GGSW
    /// encrypts 1 and `ct0` when it encrypts 0.
    pub fn cmux(
        &self,
        ggsw: &FourierGgsw,
        ct0: &GlweCiphertext,
        ct1: &GlweCiphertext,
    ) -> GlweCiphertext {
        ct0.add(&self.external_product(ggsw, &ct1.sub(ct0)))
    }

    /// The blind-rotation step: `ACC ← BSK_i ⊡ (X^ã · ACC − ACC) + ACC`
    /// (Algorithm 1 line 4), with the rotate-and-subtract fused as the
    /// double-pointer read does in hardware.
    pub fn rotate_cmux(
        &self,
        bsk_i: &FourierGgsw,
        acc: &GlweCiphertext,
        a_tilde: i64,
    ) -> GlweCiphertext {
        acc.add(&self.external_product(bsk_i, &acc.monomial_mul_minus_one(a_tilde)))
    }

    /// A [`BootstrapWorkspace`] sized for this engine's transform and
    /// gadget, serving accumulators of GLWE dimension `glwe_dim`.
    pub fn workspace(&self, glwe_dim: usize) -> BootstrapWorkspace {
        BootstrapWorkspace::with_shape(
            glwe_dim,
            self.fft.poly_len(),
            self.decomposer.params().level(),
        )
    }

    /// [`rotate_cmux`](Self::rotate_cmux) in place: updates `acc` through
    /// caller-owned workspace buffers and, once `ws` is warm, performs no
    /// heap allocation. Bit-identical to the allocating path.
    ///
    /// # Panics
    ///
    /// Panics if `bsk_i`, `acc`, and `ws` disagree on shape.
    pub fn rotate_cmux_into(
        &self,
        bsk_i: &FourierGgsw,
        acc: &mut GlweCiphertext,
        a_tilde: i64,
        ws: &mut BootstrapWorkspace,
    ) {
        assert_eq!(bsk_i.glwe_dim(), acc.dim(), "GLWE dimension mismatch");
        assert_eq!(
            bsk_i.poly_size(),
            acc.poly_size(),
            "polynomial size mismatch"
        );
        assert!(
            ws.fits(acc.dim(), acc.poly_size()),
            "workspace shape does not match the accumulator"
        );
        acc.monomial_mul_minus_one_into(a_tilde, &mut ws.lambda);
        self.external_product_buffers(bsk_i, ws);
        acc.add_assign_components(&ws.product);
    }

    /// `ggsw ⊡ ws.lambda` into `ws.product`, staging everything in the
    /// workspace. The dataflow matches [`external_product`]
    /// (Self::external_product) exactly — same decomposition, same
    /// merge-split pairing, same accumulation order — so the results are
    /// bit-identical; only the storage is caller-owned.
    fn external_product_buffers(&self, ggsw: &FourierGgsw, ws: &mut BootstrapWorkspace) {
        assert_eq!(
            ws.digit_polys.len(),
            ggsw.row_count(),
            "gadget level mismatch"
        );
        self.decompose_lambda(ws);
        if self.batched {
            self.forward_digits_batched(ws);
        } else {
            self.forward_digits_scalar(ws);
        }
        self.mac_and_inverse(ggsw, ws);
    }

    /// Stage 1: decompose every component of `ws.lambda` into the
    /// `(k+1)·l_b` digit rows (eq. (1)).
    pub(crate) fn decompose_lambda(&self, ws: &mut BootstrapWorkspace) {
        let l = self.decomposer.params().level();
        let lambda = &ws.lambda;
        for (comp, rows) in lambda.components().zip(ws.digit_polys.chunks_mut(l)) {
            self.decomposer.decompose_poly_into(comp, rows);
        }
    }

    /// Stage 2 (scalar): forward-transform the digit rows one (or, with
    /// merge-split, two) at a time — the pre-batching reference schedule.
    pub(crate) fn forward_digits_scalar(&self, ws: &mut BootstrapWorkspace) {
        let digit_polys = &ws.digit_polys[..];
        let digit_spectra = &mut ws.digit_spectra[..];
        let scratch = &mut ws.scratch;
        if self.merge_split {
            let mut polys = digit_polys.chunks_exact(2);
            let mut specs = digit_spectra.chunks_exact_mut(2);
            for (pair, out) in (&mut polys).zip(&mut specs) {
                let (s0, s1) = out.split_at_mut(1);
                self.fft
                    .forward_pair_int_into(&pair[0], &pair[1], &mut s0[0], &mut s1[0], scratch);
            }
            if let ([last], [out]) = (polys.remainder(), specs.into_remainder()) {
                self.fft.forward_int_into(last, out);
            }
        } else {
            for (p, s) in digit_polys.iter().zip(digit_spectra.iter_mut()) {
                self.fft.forward_int_into(p, s);
            }
        }
    }

    /// Stage 2 (batched): pack the digit rows into the workspace's planar
    /// [`PolyBatch`](morphling_transform::PolyBatch) and run one lockstep
    /// SoA forward pass over all lanes — the software image of streaming
    /// the whole digit set through the 2D VPE array at once. Bit-identical
    /// to [`forward_digits_scalar`](Self::forward_digits_scalar): per lane
    /// the batch kernels replay the scalar f64 operation sequence, and the
    /// pair kernel reproduces the merge-split pairing schedule exactly.
    pub(crate) fn forward_digits_batched(&self, ws: &mut BootstrapWorkspace) {
        let rows = ws.digit_polys.len();
        let n = self.fft.poly_len();
        ws.digit_batch.reshape(n, rows);
        ws.spectra_batch.reshape(n, rows);
        for (lane, p) in ws.digit_polys.iter().enumerate() {
            ws.digit_batch.load_lane(lane, p);
        }
        if self.merge_split {
            self.fft.forward_pair_int_batch_into(
                &ws.digit_batch,
                &mut ws.spectra_batch,
                &mut ws.batch_scratch,
            );
        } else {
            self.fft
                .forward_int_batch_into(&ws.digit_batch, &mut ws.spectra_batch);
        }
        for (lane, s) in ws.digit_spectra.iter_mut().enumerate() {
            ws.spectra_batch.store_lane(lane, s);
        }
    }

    /// Stage 3: ACC-output-stationary accumulation of `ws.digit_spectra`
    /// against the GGSW rows, then one inverse transform per output
    /// component (paired under merge-split), into `ws.product`.
    pub(crate) fn mac_and_inverse(&self, ggsw: &FourierGgsw, ws: &mut BootstrapWorkspace) {
        let digit_spectra = &ws.digit_spectra[..];
        let acc_spectra = &mut ws.acc_spectra[..];
        let product = &mut ws.product[..];
        let scratch = &mut ws.scratch;

        // Clear POLY-ACC-REG, then stream every row across all k+1 output
        // lanes.
        for s in acc_spectra.iter_mut() {
            s.set_zero();
        }
        for (r, digit_spec) in digit_spectra.iter().enumerate() {
            let row = ggsw.row(r);
            for (u, acc_u) in acc_spectra.iter_mut().enumerate() {
                acc_u.mul_acc(digit_spec, &row[u]);
            }
        }

        // One inverse transform per output component, again paired.
        if self.merge_split {
            let mut specs = acc_spectra.chunks_exact(2);
            let mut outs = product.chunks_exact_mut(2);
            for (pair, out) in (&mut specs).zip(&mut outs) {
                let (p0, p1) = out.split_at_mut(1);
                self.fft
                    .inverse_pair_torus_into(&pair[0], &pair[1], &mut p0[0], &mut p1[0], scratch);
            }
            if let ([last], [out]) = (specs.remainder(), outs.into_remainder()) {
                self.fft.inverse_torus_into(last, out, scratch);
            }
        } else {
            for (s, p) in acc_spectra.iter().zip(product.iter_mut()) {
                self.fft.inverse_torus_into(s, p, scratch);
            }
        }
    }
}

/// Exact integer-domain external product (correctness oracle).
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn external_product(
    ggsw: &GgswCiphertext,
    ct: &GlweCiphertext,
    params: &TfheParams,
) -> GlweCiphertext {
    assert_eq!(ggsw.glwe_dim(), ct.dim(), "GLWE dimension mismatch");
    let decomposer = SignedDecomposer::<Torus32>::new(params.bsk_decomp);
    let mut digit_polys: Vec<Polynomial<i64>> = Vec::new();
    for comp in ct.components() {
        digit_polys.extend(decomposer.decompose_poly(comp));
    }
    let k1 = ct.dim() + 1;
    let n = ct.poly_size();
    let mut out: Vec<Polynomial<Torus32>> = vec![Polynomial::zero(n); k1];
    for (r, digits) in digit_polys.iter().enumerate() {
        for (u, row_comp) in ggsw.rows()[r].components().enumerate() {
            out[u] += &mul_int_torus32(digits, row_comp);
        }
    }
    GlweCiphertext::from_components(out)
}

/// Exact CMUX built on [`external_product`].
pub fn cmux(
    ggsw: &GgswCiphertext,
    ct0: &GlweCiphertext,
    ct1: &GlweCiphertext,
    params: &TfheParams,
) -> GlweCiphertext {
    ct0.add(&external_product(ggsw, &ct1.sub(ct0), params))
}

/// Exact external product through the NTT backend (O(N log N) and
/// bit-identical to [`external_product`]; the "or NTT" path of §III).
pub fn external_product_ntt(
    ggsw: &GgswCiphertext,
    ct: &GlweCiphertext,
    params: &TfheParams,
    ntt: &morphling_transform::NegacyclicNtt,
) -> GlweCiphertext {
    assert_eq!(ggsw.glwe_dim(), ct.dim(), "GLWE dimension mismatch");
    assert_eq!(ntt.poly_len(), ct.poly_size(), "NTT engine size mismatch");
    let decomposer = SignedDecomposer::<Torus32>::new(params.bsk_decomp);
    let mut digit_polys: Vec<Polynomial<i64>> = Vec::new();
    for comp in ct.components() {
        digit_polys.extend(decomposer.decompose_poly(comp));
    }
    let k1 = ct.dim() + 1;
    let n = ct.poly_size();
    let mut out: Vec<Polynomial<Torus32>> = vec![Polynomial::zero(n); k1];
    for (r, digits) in digit_polys.iter().enumerate() {
        for (u, row_comp) in ggsw.rows()[r].components().enumerate() {
            out[u] += &ntt.mul_int_torus(digits, row_comp);
        }
    }
    GlweCiphertext::from_components(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::GlweSecretKey;
    use crate::params::ParamSet;
    use morphling_math::TorusScalar;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn coarse_msg(n: usize, seed: u32) -> Polynomial<Torus32> {
        Polynomial::from_fn(n, |j| {
            Torus32::from_raw((((j as u32 * seed) % 4) << 30).wrapping_add(0))
        })
    }

    struct Setup {
        params: TfheParams,
        key: GlweSecretKey,
        rng: StdRng,
    }

    fn setup(noiseless: bool) -> Setup {
        let params = if noiseless {
            ParamSet::Test.params().noiseless()
        } else {
            ParamSet::Test.params()
        };
        let mut rng = StdRng::seed_from_u64(40);
        let key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        Setup { params, key, rng }
    }

    #[test]
    fn external_product_with_one_preserves_message() {
        let Setup {
            params,
            key,
            mut rng,
        } = setup(false);
        let m = coarse_msg(params.poly_size, 3);
        let ct = GlweCiphertext::encrypt(&m, &key, params.glwe_noise_std, &mut rng);
        let ggsw = GgswCiphertext::encrypt(1, &key, &params, &mut rng);
        let engine = ExternalProductEngine::new(&params);
        let out = engine.external_product(&ggsw.to_fourier(engine.fft()), &ct);
        let phase = key.phase(&out);
        for j in 0..params.poly_size {
            assert_eq!(phase[j].decode(4), m[j].decode(4), "j={j}");
        }
    }

    #[test]
    fn external_product_with_zero_kills_message() {
        let Setup {
            params,
            key,
            mut rng,
        } = setup(false);
        let m = coarse_msg(params.poly_size, 5);
        let ct = GlweCiphertext::encrypt(&m, &key, params.glwe_noise_std, &mut rng);
        let ggsw = GgswCiphertext::encrypt(0, &key, &params, &mut rng);
        let engine = ExternalProductEngine::new(&params);
        let out = engine.external_product(&ggsw.to_fourier(engine.fft()), &ct);
        let phase = key.phase(&out);
        for j in 0..params.poly_size {
            assert_eq!(phase[j].decode(4), 0, "j={j}");
        }
    }

    #[test]
    fn fft_path_matches_exact_oracle() {
        let Setup {
            params,
            key,
            mut rng,
        } = setup(false);
        let m = coarse_msg(params.poly_size, 7);
        let ct = GlweCiphertext::encrypt(&m, &key, params.glwe_noise_std, &mut rng);
        let ggsw = GgswCiphertext::encrypt(1, &key, &params, &mut rng);
        let engine = ExternalProductEngine::new(&params);
        let fft_out = engine.external_product(&ggsw.to_fourier(engine.fft()), &ct);
        let exact_out = external_product(&ggsw, &ct, &params);
        // The f64 path may differ by ±1 raw unit from exact integer math;
        // with the TEST base (2^6) it is bit-exact.
        for (a, b) in fft_out.components().zip(exact_out.components()) {
            for j in 0..params.poly_size {
                let d = (a[j] - b[j]).to_signed().abs();
                assert!(d <= 1, "j={j} diff={d}");
            }
        }
    }

    #[test]
    fn merge_split_path_is_equivalent() {
        let Setup {
            params,
            key,
            mut rng,
        } = setup(false);
        let m = coarse_msg(params.poly_size, 9);
        let ct = GlweCiphertext::encrypt(&m, &key, params.glwe_noise_std, &mut rng);
        let ggsw = GgswCiphertext::encrypt(1, &key, &params, &mut rng);
        let with = ExternalProductEngine::new(&params);
        let without = ExternalProductEngine::new(&params).with_merge_split(false);
        let f = ggsw.to_fourier(with.fft());
        let a = with.external_product(&f, &ct);
        let b = without.external_product(&f, &ct);
        for (x, y) in a.components().zip(b.components()) {
            for j in 0..params.poly_size {
                assert!((x[j] - y[j]).to_signed().abs() <= 1, "j={j}");
            }
        }
    }

    #[test]
    fn cmux_selects_by_the_encrypted_bit() {
        let Setup {
            params,
            key,
            mut rng,
        } = setup(false);
        let m0 = coarse_msg(params.poly_size, 2);
        let m1 = coarse_msg(params.poly_size, 3);
        let c0 = GlweCiphertext::encrypt(&m0, &key, params.glwe_noise_std, &mut rng);
        let c1 = GlweCiphertext::encrypt(&m1, &key, params.glwe_noise_std, &mut rng);
        let engine = ExternalProductEngine::new(&params);
        for bit in [0i64, 1] {
            let ggsw =
                GgswCiphertext::encrypt(bit, &key, &params, &mut rng).to_fourier(engine.fft());
            let selected = engine.cmux(&ggsw, &c0, &c1);
            let want = if bit == 1 { &m1 } else { &m0 };
            let phase = key.phase(&selected);
            for j in 0..params.poly_size {
                assert_eq!(phase[j].decode(4), want[j].decode(4), "bit={bit} j={j}");
            }
        }
    }

    #[test]
    fn rotate_cmux_rotates_when_bit_is_one() {
        let Setup {
            params,
            key,
            mut rng,
        } = setup(false);
        let m = coarse_msg(params.poly_size, 11);
        let ct = GlweCiphertext::encrypt(&m, &key, params.glwe_noise_std, &mut rng);
        let engine = ExternalProductEngine::new(&params);
        let rot = 37i64;
        for bit in [0i64, 1] {
            let ggsw =
                GgswCiphertext::encrypt(bit, &key, &params, &mut rng).to_fourier(engine.fft());
            let out = engine.rotate_cmux(&ggsw, &ct, rot);
            let want = if bit == 1 {
                m.monomial_mul(rot)
            } else {
                m.clone()
            };
            let phase = key.phase(&out);
            for j in 0..params.poly_size {
                assert_eq!(phase[j].decode(4), want[j].decode(4), "bit={bit} j={j}");
            }
        }
    }

    #[test]
    fn rotate_cmux_into_is_bit_identical_to_allocating_path() {
        // Chained rotations, every merge-split × batched-transform
        // combination, k = 1 and k = 2: the workspace path must reproduce
        // the allocating path bit for bit, not merely up to noise. The
        // allocating `rotate_cmux` never touches the batch kernels, so
        // batched = true here is also the SoA-vs-scalar identity check.
        for set in [ParamSet::Test, ParamSet::TestMedium] {
            let params = set.params();
            let mut rng = StdRng::seed_from_u64(42);
            let key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
            let m = coarse_msg(params.poly_size, 11);
            let ct = GlweCiphertext::encrypt(&m, &key, params.glwe_noise_std, &mut rng);
            for ms in [true, false] {
                for batched in [true, false] {
                    let engine = ExternalProductEngine::new(&params)
                        .with_merge_split(ms)
                        .with_batched_transforms(batched);
                    let ggsw = GgswCiphertext::encrypt(1, &key, &params, &mut rng)
                        .to_fourier(engine.fft());
                    let mut ws = engine.workspace(params.glwe_dim);
                    let mut acc = ct.clone();
                    for a_tilde in [0i64, 5, 37, 211] {
                        let want = engine.rotate_cmux(&ggsw, &acc, a_tilde);
                        engine.rotate_cmux_into(&ggsw, &mut acc, a_tilde, &mut ws);
                        assert_eq!(
                            acc, want,
                            "set={set:?} ms={ms} batched={batched} a_tilde={a_tilde}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "workspace shape")]
    fn rotate_cmux_into_rejects_mismatched_workspace() {
        let params = ParamSet::Test.params();
        let mut rng = StdRng::seed_from_u64(43);
        let key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        let engine = ExternalProductEngine::new(&params);
        let ggsw = GgswCiphertext::encrypt(1, &key, &params, &mut rng).to_fourier(engine.fft());
        let mut acc = GlweCiphertext::zero(params.glwe_dim, params.poly_size);
        let mut ws = engine.workspace(params.glwe_dim + 1);
        engine.rotate_cmux_into(&ggsw, &mut acc, 3, &mut ws);
    }

    #[test]
    fn works_with_k_greater_than_one() {
        // k = 2 (set-B shape, shrunk): the reuse the paper targets needs
        // k > 1 to shine; make sure the functional layer handles it.
        let params = ParamSet::TestMedium.params();
        let mut rng = StdRng::seed_from_u64(41);
        let key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        let m = coarse_msg(params.poly_size, 13);
        let ct = GlweCiphertext::encrypt(&m, &key, params.glwe_noise_std, &mut rng);
        let engine = ExternalProductEngine::new(&params);
        let ggsw = GgswCiphertext::encrypt(1, &key, &params, &mut rng).to_fourier(engine.fft());
        let out = engine.external_product(&ggsw, &ct);
        let phase = key.phase(&out);
        for j in 0..params.poly_size {
            assert_eq!(phase[j].decode(4), m[j].decode(4), "j={j}");
        }
    }
}
