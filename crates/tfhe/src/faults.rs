//! Deterministic, seeded fault injection for the bootstrap engine.
//!
//! Real TFHE accelerators treat failure as a first-class design input:
//! MATCHA and BTS both budget a per-bootstrap failure probability, and a
//! production serving pool must survive wedged workers, panics, and the
//! occasional corrupted result. This module provides the *injection* half
//! of that story; the recovery half (watchdog, retry/backoff, respawn,
//! degraded mode) lives in [`BootstrapEngine`](crate::BootstrapEngine).
//!
//! Injection is **deterministic**: every decision is a pure function of
//! `(plan seed, fault site, stable key, attempt)`, hashed through
//! SplitMix64. Two runs with the same plan and the same submission
//! sequence inject exactly the same faults, regardless of thread
//! interleaving or chunking — the property the chaos harness relies on to
//! compare a faulted run against its fault-free reference. The `attempt`
//! component makes injected faults *transient*: a retried bootstrap rolls
//! a fresh decision, so bounded retry converges.
//!
//! A zero-rate [`FaultPlan`] (the default) is a guaranteed no-op: every
//! [`FaultInjector::fires`] call short-circuits before hashing, so the
//! hot path costs three float compares per bootstrap.

use std::time::Duration;

use morphling_math::{Torus32, TorusScalar};

use crate::lwe::LweCiphertext;

/// Where a fault can be injected. Each site owns a distinct hash domain
/// so the per-site decision streams are independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The worker thread panics mid-job (caught by the engine's
    /// `catch_unwind` isolation; costs the worker one respawn).
    WorkerPanic,
    /// The worker wedges: it sleeps for [`FaultPlan::wedge`] before
    /// executing, simulating a stalled core the watchdog must rescue.
    WedgedJob,
    /// The bootstrap output ciphertext is silently corrupted (the message
    /// is flipped by half the torus) — detectable only by an output
    /// sanity check.
    CorruptOutput,
}

impl FaultSite {
    /// Stable per-site hash-domain separator.
    fn domain(self) -> u64 {
        match self {
            FaultSite::WorkerPanic => 0x70_61_6e_69,
            FaultSite::WedgedJob => 0x77_65_64_67,
            FaultSite::CorruptOutput => 0x63_6f_72_72,
        }
    }

    /// Short lower-case label used in trace args and error messages.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::WedgedJob => "wedged_job",
            FaultSite::CorruptOutput => "corrupt_output",
        }
    }
}

/// A seeded fault schedule: per-site rates plus the parameters of each
/// fault's shape. `FaultPlan::default()` injects nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Per-bootstrap probability the worker panics.
    pub worker_panic: f64,
    /// Per-bootstrap probability the worker wedges for [`Self::wedge`].
    pub wedged_job: f64,
    /// How long a wedged worker stalls.
    pub wedge: Duration,
    /// Per-bootstrap probability the output ciphertext is corrupted.
    pub corrupt_output: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            worker_panic: 0.0,
            wedged_job: 0.0,
            wedge: Duration::from_millis(50),
            corrupt_output: 0.0,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (identical to `default()`).
    pub fn none() -> Self {
        Self::default()
    }

    /// Start an all-zero plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Set the worker-panic rate.
    #[must_use]
    pub fn with_worker_panic(mut self, rate: f64) -> Self {
        self.worker_panic = rate;
        self
    }

    /// Set the wedged-job rate and stall duration.
    #[must_use]
    pub fn with_wedged_job(mut self, rate: f64, wedge: Duration) -> Self {
        self.wedged_job = rate;
        self.wedge = wedge;
        self
    }

    /// Set the corrupt-output rate.
    #[must_use]
    pub fn with_corrupt_output(mut self, rate: f64) -> Self {
        self.corrupt_output = rate;
        self
    }

    /// `true` if every rate is zero — the engine skips all bookkeeping.
    pub fn is_noop(&self) -> bool {
        self.worker_panic <= 0.0 && self.wedged_job <= 0.0 && self.corrupt_output <= 0.0
    }

    /// The rate configured for one site.
    pub fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::WorkerPanic => self.worker_panic,
            FaultSite::WedgedJob => self.wedged_job,
            FaultSite::CorruptOutput => self.corrupt_output,
        }
    }
}

/// Stateless decision oracle over a [`FaultPlan`]. Cheap to share
/// (`Copy`) and safe to query from any thread in any order.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wrap a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Deterministic Bernoulli trial: does `site` fire for (`key`,
    /// `attempt`)? `key` must be stable across runs (e.g. `batch << 32 |
    /// ciphertext index`); `attempt` distinguishes retries so injected
    /// faults are transient.
    pub fn fires(&self, site: FaultSite, key: u64, attempt: u32) -> bool {
        decide(
            self.plan.seed,
            site.domain(),
            key,
            attempt,
            self.plan.rate(site),
        )
    }
}

/// One deterministic Bernoulli decision: `true` with probability `rate`,
/// as a pure function of `(seed, domain, key, attempt)`. Shared by the
/// engine-side injector here and the simulator-side fault model in
/// `morphling_core::faults`.
pub fn decide(seed: u64, domain: u64, key: u64, attempt: u32, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    unit_sample(seed, domain, key, attempt) < rate
}

/// Deterministic sample in `[0, 1)` as a pure function of
/// `(seed, domain, key, attempt)` — the uniform variate behind
/// [`decide`], also used by the resilience layer's seeded retry jitter
/// (same determinism contract: identical runs back off identically).
pub fn unit_sample(seed: u64, domain: u64, key: u64, attempt: u32) -> f64 {
    let h = mix3(
        seed ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        key,
        attempt as u64,
    );
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64-style avalanche of three words into one.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The stable injection key for ciphertext `index` of engine batch
/// `batch` — what keeps decisions independent of chunking and thread
/// interleaving.
pub fn fault_key(batch: u64, index: usize) -> u64 {
    (batch << 32) ^ index as u64
}

/// Silently corrupt a bootstrap output: add half the torus to the body,
/// flipping the encoded message while leaving the ciphertext perfectly
/// well-formed — the worst-case fault an output sanity check must catch.
pub fn corrupt_ciphertext(ct: &LweCiphertext) -> LweCiphertext {
    ct.add_plain(Torus32::from_f64(0.5))
}

/// Smallest retry budget `r` such that `p_fail^(r+1) ≤ target`: how many
/// bounded retries make a transient failure of probability `p_fail` as
/// rare as `target`. Drives the engine's
/// [`noise_adaptive_retries`](crate::BootstrapEngineBuilder::noise_adaptive_retries)
/// policy via [`noise::failure_probability`](crate::noise::failure_probability).
pub fn retry_budget_for(p_fail: f64, target: f64) -> u32 {
    if p_fail <= 0.0 || target >= 1.0 {
        return 0;
    }
    if p_fail >= 1.0 {
        return u32::MAX;
    }
    // p^(r+1) <= target  ⟺  r+1 >= ln(target)/ln(p)  (both logs negative).
    let needed = (target.ln() / p_fail.ln()).ceil();
    if needed <= 1.0 {
        0
    } else if needed > u32::MAX as f64 {
        u32::MAX
    } else {
        needed as u32 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_is_noop() {
        let inj = FaultInjector::new(FaultPlan::seeded(42));
        assert!(inj.plan().is_noop());
        for key in 0..1000 {
            for site in [
                FaultSite::WorkerPanic,
                FaultSite::WedgedJob,
                FaultSite::CorruptOutput,
            ] {
                assert!(!inj.fires(site, key, 0));
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::seeded(1).with_worker_panic(0.5));
        let b = FaultInjector::new(FaultPlan::seeded(1).with_worker_panic(0.5));
        let c = FaultInjector::new(FaultPlan::seeded(2).with_worker_panic(0.5));
        let fire = |inj: &FaultInjector| -> Vec<bool> {
            (0..256)
                .map(|k| inj.fires(FaultSite::WorkerPanic, k, 0))
                .collect()
        };
        assert_eq!(fire(&a), fire(&b), "same seed must replay identically");
        assert_ne!(fire(&a), fire(&c), "different seeds must diverge");
    }

    #[test]
    fn rates_are_respected_statistically() {
        let inj = FaultInjector::new(FaultPlan::seeded(7).with_worker_panic(0.25));
        let n = 20_000;
        let hits = (0..n)
            .filter(|&k| inj.fires(FaultSite::WorkerPanic, k, 0))
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "empirical rate {frac}");
    }

    #[test]
    fn sites_roll_independent_streams() {
        let inj = FaultInjector::new(
            FaultPlan::seeded(9)
                .with_worker_panic(0.5)
                .with_corrupt_output(0.5),
        );
        let panic: Vec<bool> = (0..256)
            .map(|k| inj.fires(FaultSite::WorkerPanic, k, 0))
            .collect();
        let corrupt: Vec<bool> = (0..256)
            .map(|k| inj.fires(FaultSite::CorruptOutput, k, 0))
            .collect();
        assert_ne!(panic, corrupt, "site streams must not alias");
    }

    #[test]
    fn attempts_reroll_the_decision() {
        let inj = FaultInjector::new(FaultPlan::seeded(11).with_worker_panic(0.5));
        // Some key that fires at attempt 0 must eventually clear on retry.
        let key = (0..1000)
            .find(|&k| inj.fires(FaultSite::WorkerPanic, k, 0))
            .expect("a firing key exists at rate 0.5");
        let clears = (1..32).any(|a| !inj.fires(FaultSite::WorkerPanic, key, a));
        assert!(clears, "retries must be able to clear an injected fault");
    }

    #[test]
    fn corrupt_ciphertext_flips_the_message_but_keeps_shape() {
        let ct = LweCiphertext::trivial(Torus32::from_f64(0.25), 8);
        let bad = corrupt_ciphertext(&ct);
        assert_eq!(bad.dim(), ct.dim());
        assert_ne!(bad.body(), ct.body());
        // Corrupting twice round-trips (±1/2 on the torus is involutive).
        assert_eq!(corrupt_ciphertext(&bad).body(), ct.body());
    }

    #[test]
    fn retry_budget_matches_the_power_law() {
        // 0.1^2 = 1e-2 > 1e-3, 0.1^3 = 1e-3 ≤ 1e-3 → 2 retries.
        assert_eq!(retry_budget_for(0.1, 1e-3), 2);
        assert_eq!(retry_budget_for(0.0, 1e-9), 0);
        assert_eq!(retry_budget_for(0.5, 0.5), 0);
        assert_eq!(retry_budget_for(1.0, 1e-9), u32::MAX);
        // A realistic post-bootstrap failure probability needs few retries.
        assert!(retry_budget_for(1e-5, 1e-12) <= 2);
    }

    #[test]
    fn unit_samples_stay_in_range_and_replay() {
        for k in 0..256 {
            let u = unit_sample(5, 77, k, 1);
            assert!((0.0..1.0).contains(&u), "sample {u} out of range");
            assert_eq!(u, unit_sample(5, 77, k, 1), "samples must replay");
        }
        assert_ne!(
            unit_sample(5, 77, 1, 0),
            unit_sample(6, 77, 1, 0),
            "seed must matter"
        );
    }

    #[test]
    fn fault_keys_separate_batches() {
        assert_ne!(fault_key(0, 5), fault_key(1, 5));
        assert_ne!(fault_key(3, 0), fault_key(3, 1));
    }
}
