//! Secret keys and the client-side API (encrypt/decrypt).

use morphling_math::{sampling, Polynomial, Torus32, TorusScalar};
use rand::Rng;

use crate::glwe::GlweCiphertext;
use crate::lwe::LweCiphertext;
use crate::params::TfheParams;

/// A binary LWE secret key `s ∈ {0,1}^n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LweSecretKey {
    bits: Vec<i64>,
}

impl LweSecretKey {
    /// Sample a fresh key of dimension `n`.
    pub fn generate<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Self {
            bits: sampling::binary_vector(n, rng),
        }
    }

    /// Build from explicit bits (each must be 0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if any entry is not 0 or 1.
    pub fn from_bits(bits: Vec<i64>) -> Self {
        assert!(
            bits.iter().all(|&b| b == 0 || b == 1),
            "key bits must be 0 or 1"
        );
        Self { bits }
    }

    /// Key dimension `n`.
    pub fn dim(&self) -> usize {
        self.bits.len()
    }

    /// The key bits.
    pub fn bits(&self) -> &[i64] {
        &self.bits
    }

    /// Compute the phase `b − Σ a_i s_i` of a ciphertext: message plus
    /// noise.
    pub fn phase(&self, ct: &LweCiphertext) -> Torus32 {
        assert_eq!(ct.dim(), self.dim(), "ciphertext/key dimension mismatch");
        let mut acc = ct.body();
        for (&a, &s) in ct.mask().iter().zip(&self.bits) {
            if s == 1 {
                acc -= a;
            }
        }
        acc
    }
}

/// A GLWE secret key: `k` binary polynomials `S_i ∈ B_N[X]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlweSecretKey {
    polys: Vec<Polynomial<i64>>,
}

impl GlweSecretKey {
    /// Sample a fresh key of dimension `k` over size-`N` polynomials.
    pub fn generate<R: Rng + ?Sized>(k: usize, n: usize, rng: &mut R) -> Self {
        Self {
            polys: (0..k).map(|_| sampling::binary_poly(n, rng)).collect(),
        }
    }

    /// Build from explicit key polynomials (deserialization path).
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty, the polynomials disagree on length, or
    /// any coefficient is not 0 or 1.
    pub fn from_polys(polys: Vec<Polynomial<i64>>) -> Self {
        assert!(!polys.is_empty(), "GLWE key needs at least one polynomial");
        let n = polys[0].len();
        assert!(
            polys.iter().all(|p| p.len() == n),
            "key polynomials must share one length"
        );
        assert!(
            polys
                .iter()
                .all(|p| p.coeffs().iter().all(|&b| b == 0 || b == 1)),
            "key bits must be 0 or 1"
        );
        Self { polys }
    }

    /// GLWE dimension `k`.
    pub fn dim(&self) -> usize {
        self.polys.len()
    }

    /// Polynomial size `N`.
    pub fn poly_size(&self) -> usize {
        self.polys[0].len()
    }

    /// The key polynomials.
    pub fn polys(&self) -> &[Polynomial<i64>] {
        &self.polys
    }

    /// Compute the phase `B − Σ A_i · S_i` of a GLWE ciphertext.
    pub fn phase(&self, ct: &GlweCiphertext) -> Polynomial<Torus32> {
        assert_eq!(ct.dim(), self.dim(), "ciphertext/key dimension mismatch");
        let mut acc = ct.body().clone();
        for (a, s) in ct.masks().iter().zip(&self.polys) {
            acc -= &morphling_math::negacyclic::mul_int_torus32(s, a);
        }
        acc
    }

    /// Flatten into the LWE key of dimension `k·N` that sample extraction
    /// implicitly switches to (§II-B): the coefficients of each `S_i` in
    /// order.
    pub fn to_extracted_lwe_key(&self) -> LweSecretKey {
        let mut bits = Vec::with_capacity(self.dim() * self.poly_size());
        for p in &self.polys {
            bits.extend_from_slice(p.coeffs());
        }
        LweSecretKey { bits }
    }
}

/// All client-side secret material for one TFHE instance, together with
/// encryption and decryption.
///
/// The [`crate::ServerKey`] derived from a `ClientKey` holds only *public*
/// key-switching/bootstrapping material and performs all homomorphic
/// computation.
#[derive(Clone, Debug)]
pub struct ClientKey {
    params: TfheParams,
    lwe_key: LweSecretKey,
    glwe_key: GlweSecretKey,
}

impl ClientKey {
    /// Generate fresh LWE and GLWE secret keys for `params`.
    pub fn generate<R: Rng + ?Sized>(params: TfheParams, rng: &mut R) -> Self {
        let lwe_key = LweSecretKey::generate(params.lwe_dim, rng);
        let glwe_key = GlweSecretKey::generate(params.glwe_dim, params.poly_size, rng);
        Self {
            params,
            lwe_key,
            glwe_key,
        }
    }

    /// The parameter set.
    pub fn params(&self) -> &TfheParams {
        &self.params
    }

    /// The LWE secret key (messages are encrypted under this key).
    pub fn lwe_key(&self) -> &LweSecretKey {
        &self.lwe_key
    }

    /// The GLWE secret key (the bootstrapping key encrypts the LWE key
    /// under this key).
    pub fn glwe_key(&self) -> &GlweSecretKey {
        &self.glwe_key
    }

    /// Encrypt a message `m ∈ Z_p` (p = `params.plaintext_modulus`) with
    /// one bit of padding: the torus value is `m / 2p`.
    pub fn encrypt<R: Rng + ?Sized>(&self, message: u64, rng: &mut R) -> LweCiphertext {
        let p = self.params.plaintext_modulus;
        assert!(
            message < p,
            "message {message} out of range for modulus {p}"
        );
        let mu = Torus32::encode(message, 2 * p);
        self.encrypt_torus(mu, rng)
    }

    /// Encrypt an arbitrary torus value under the LWE key.
    pub fn encrypt_torus<R: Rng + ?Sized>(&self, mu: Torus32, rng: &mut R) -> LweCiphertext {
        LweCiphertext::encrypt(mu, &self.lwe_key, self.params.lwe_noise_std, rng)
    }

    /// Decrypt to a message in `Z_p` (rounding away noise).
    pub fn decrypt(&self, ct: &LweCiphertext) -> u64 {
        let p = self.params.plaintext_modulus;
        self.lwe_key.phase(ct).decode(2 * p) % p
    }

    /// Decrypt the raw torus phase (message + noise), for noise analysis.
    pub fn decrypt_torus(&self, ct: &LweCiphertext) -> Torus32 {
        self.lwe_key.phase(ct)
    }

    /// Decrypt a ciphertext produced under the *extracted* `k·N` LWE key
    /// (i.e. after sample extraction, before key switching).
    pub fn decrypt_extracted(&self, ct: &LweCiphertext) -> u64 {
        let p = self.params.plaintext_modulus;
        self.glwe_key.to_extracted_lwe_key().phase(ct).decode(2 * p) % p
    }

    /// Encrypt a boolean with the ±1/8 gate-bootstrapping convention:
    /// `true → +1/8`, `false → −1/8`.
    pub fn encrypt_bool<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> LweCiphertext {
        let mu = if bit {
            Torus32::from_f64(0.125)
        } else {
            Torus32::from_f64(-0.125)
        };
        self.encrypt_torus(mu, rng)
    }

    /// Decrypt a boolean: the phase's sign decides.
    pub fn decrypt_bool(&self, ct: &LweCiphertext) -> bool {
        self.lwe_key.phase(ct).to_f64_signed() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lwe_encrypt_decrypt_all_messages() {
        let mut rng = StdRng::seed_from_u64(1);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            assert_eq!(ck.decrypt(&ct), m);
        }
    }

    #[test]
    fn bool_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        for bit in [true, false] {
            let ct = ck.encrypt_bool(bit, &mut rng);
            assert_eq!(ck.decrypt_bool(&ct), bit);
        }
    }

    #[test]
    fn extracted_key_flattens_glwe_key() {
        let mut rng = StdRng::seed_from_u64(3);
        let key = GlweSecretKey::generate(2, 8, &mut rng);
        let flat = key.to_extracted_lwe_key();
        assert_eq!(flat.dim(), 16);
        assert_eq!(&flat.bits()[..8], key.polys()[0].coeffs());
        assert_eq!(&flat.bits()[8..], key.polys()[1].coeffs());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encrypt_rejects_oversized_message() {
        let mut rng = StdRng::seed_from_u64(4);
        let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let _ = ck.encrypt(4, &mut rng);
    }

    #[test]
    #[should_panic(expected = "must be 0 or 1")]
    fn key_from_bits_validates() {
        let _ = LweSecretKey::from_bits(vec![0, 1, 2]);
    }
}
