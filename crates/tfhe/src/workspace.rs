//! Reusable scratch buffers for the blind-rotation hot path.
//!
//! The external product is 97% of all bootstrapping work (§I), and the
//! paper's answer is to keep every intermediate resident in dedicated
//! hardware buffers: the decomposed digit stream flows through the Coef
//! buffer, the per-component accumulators live in POLY-ACC-REG, and the
//! rotating accumulator ciphertext sits in Private-A1. A
//! [`BootstrapWorkspace`] is the software analogue — one allocation at
//! construction, then every CMUX iteration of every bootstrap reuses the
//! same memory. See `DESIGN.md` §8 for the buffer-by-buffer mapping.

use morphling_math::{Complex64, Polynomial, Torus32};
use morphling_transform::{BatchScratch, PolyBatch, Spectrum, SpectrumBatch};

use crate::glwe::GlweCiphertext;
use crate::params::TfheParams;

/// Caller-owned staging buffers threaded through
/// [`rotate_cmux_into`](crate::ExternalProductEngine::rotate_cmux_into)
/// and [`blind_rotate_assign`](crate::bootstrap::blind_rotate_assign).
///
/// One workspace serves one thread; the [`BootstrapEngine`]
/// (`crate::BootstrapEngine`) gives each worker a long-lived workspace
/// reused across jobs and batches. After the first use no method that
/// takes a workspace heap-allocates (asserted by the
/// `alloc_regression` integration test).
#[derive(Clone, Debug)]
pub struct BootstrapWorkspace {
    /// The `(k+1)·l_b` digit polynomials of one decomposed ciphertext.
    pub(crate) digit_polys: Vec<Polynomial<i64>>,
    /// Their forward transforms (the stream fed across the VPE rows).
    pub(crate) digit_spectra: Vec<Spectrum>,
    /// Per-output-component running spectra — the POLY-ACC-REG file.
    pub(crate) acc_spectra: Vec<Spectrum>,
    /// Staging for `X^ã·ACC − ACC` (the Λ operand of Algorithm 1 line 4).
    pub(crate) lambda: GlweCiphertext,
    /// The external product's `k+1` output components before they fold
    /// into the accumulator.
    pub(crate) product: Vec<Polynomial<Torus32>>,
    /// Complex FFT staging shared by every transform call (the software
    /// Coef buffer); grows to `N` points on first use and stays there.
    pub(crate) scratch: Vec<Complex64>,
    /// Planar (SoA) staging for the batched forward transform: all
    /// `(k+1)·l_b` digit polynomials of one external product as lockstep
    /// lanes — the software image of the digit stream entering the 2D
    /// VPE array.
    pub(crate) digit_batch: PolyBatch<i64>,
    /// Planar spectra produced by the batched forward pass.
    pub(crate) spectra_batch: SpectrumBatch,
    /// Split-complex scratch planes for the batched kernels.
    pub(crate) batch_scratch: BatchScratch,
    glwe_dim: usize,
    poly_size: usize,
    level: usize,
}

impl BootstrapWorkspace {
    /// Size a workspace for `params` (GLWE dimension, polynomial size,
    /// and BSK gadget level).
    pub fn new(params: &TfheParams) -> Self {
        Self::with_shape(params.glwe_dim, params.poly_size, params.bsk_decomp.level())
    }

    /// Size a workspace explicitly: `glwe_dim` = `k`, `poly_size` = `N`,
    /// `level` = `l_b` of the bootstrapping-key gadget.
    ///
    /// # Panics
    ///
    /// Panics if `poly_size` is not a power of two ≥ 4 or `level == 0`.
    pub fn with_shape(glwe_dim: usize, poly_size: usize, level: usize) -> Self {
        assert!(level > 0, "gadget level must be at least 1");
        let rows = (glwe_dim + 1) * level;
        Self {
            digit_polys: vec![Polynomial::zero(poly_size); rows],
            digit_spectra: vec![Spectrum::zero(poly_size); rows],
            acc_spectra: vec![Spectrum::zero(poly_size); glwe_dim + 1],
            lambda: GlweCiphertext::zero(glwe_dim, poly_size),
            product: vec![Polynomial::zero(poly_size); glwe_dim + 1],
            scratch: Vec::with_capacity(poly_size),
            digit_batch: PolyBatch::zero(poly_size, rows),
            spectra_batch: SpectrumBatch::zero(poly_size, rows),
            batch_scratch: BatchScratch::new(),
            glwe_dim,
            poly_size,
            level,
        }
    }

    /// The GLWE dimension `k` this workspace is shaped for.
    #[inline]
    pub fn glwe_dim(&self) -> usize {
        self.glwe_dim
    }

    /// The polynomial size `N` this workspace is shaped for.
    #[inline]
    pub fn poly_size(&self) -> usize {
        self.poly_size
    }

    /// The gadget level `l_b` this workspace is shaped for.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Whether this workspace fits a ciphertext of the given shape.
    #[inline]
    pub(crate) fn fits(&self, glwe_dim: usize, poly_size: usize) -> bool {
        self.glwe_dim == glwe_dim && self.poly_size == poly_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;

    #[test]
    fn shapes_follow_params() {
        let params = ParamSet::TestMedium.params();
        let ws = BootstrapWorkspace::new(&params);
        assert_eq!(ws.glwe_dim(), params.glwe_dim);
        assert_eq!(ws.poly_size(), params.poly_size);
        assert_eq!(ws.level(), params.bsk_decomp.level());
        assert_eq!(
            ws.digit_polys.len(),
            (params.glwe_dim + 1) * params.bsk_decomp.level()
        );
        assert_eq!(ws.acc_spectra.len(), params.glwe_dim + 1);
        assert_eq!(ws.product.len(), params.glwe_dim + 1);
        assert_eq!(ws.digit_batch.lanes(), ws.digit_polys.len());
        assert_eq!(ws.digit_batch.poly_len(), params.poly_size);
        assert_eq!(ws.spectra_batch.lanes(), ws.digit_polys.len());
        assert_eq!(ws.spectra_batch.poly_len(), params.poly_size);
        assert!(ws.fits(params.glwe_dim, params.poly_size));
        assert!(!ws.fits(params.glwe_dim + 1, params.poly_size));
    }

    #[test]
    #[should_panic(expected = "level must be")]
    fn rejects_zero_level() {
        let _ = BootstrapWorkspace::with_shape(1, 64, 0);
    }
}
