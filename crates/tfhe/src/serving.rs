//! Unified, serializable serving configuration.
//!
//! Serving knobs used to be scattered across [`DispatcherBuilder`]
//! (batch/linger/queue), [`RetryPolicy`] (backoff), `CircuitBreakerBuilder`
//! (shedding), and [`KeyStore`](crate::KeyStore) (byte budget) with no
//! single value an autotuner could emit or a deployment could pin.
//! [`ServingConfig`] is that value: a plain-data struct covering every
//! knob, JSON-serializable without serde ([`to_json`](ServingConfig::to_json)
//! / [`from_json`](ServingConfig::from_json), following the same
//! no-panic / typed-error conventions as [`crate::serialize`]), validated
//! loudly ([`validate`](ServingConfig::validate)), and consumed directly
//! by [`Dispatcher::from_config`](crate::Dispatcher::from_config).
//!
//! The autotuner ([`crate::autotune`]) searches over these configs and
//! emits the winner; `report autotune` writes it to
//! `autotune_config.json`; a deployment reads it back and builds the
//! serving stack:
//!
//! ```
//! use std::sync::Arc;
//! use morphling_tfhe::{ClientKey, Dispatcher, ParamSet, ServerKey, ServingConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let cfg = ServingConfig::builder()
//!     .workers(2)
//!     .max_batch_size(8)
//!     .max_linger(std::time::Duration::from_millis(1))
//!     .build()
//!     .unwrap();
//! let json = cfg.to_json();
//! let restored = ServingConfig::from_json(&json).unwrap();
//! assert_eq!(cfg, restored);
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
//! let sk = Arc::new(ServerKey::new(&ck, &mut rng));
//! let dispatcher = Dispatcher::from_config(&restored, sk).unwrap();
//! assert_eq!(dispatcher.max_batch_size(), 8);
//! ```
//!
//! Durations serialize at **microsecond** granularity (`*_us` fields);
//! sub-microsecond components are truncated by a round trip.

use std::sync::Arc;
use std::time::Duration;

use crate::engine::{BootstrapEngine, BootstrapEngineBuilder};
use crate::error::TfheError;
use crate::resilience::{CircuitBreaker, CircuitBreakerBuilder, RetryPolicy};
use crate::server::ServerKey;

/// Wire-format version stamped into (and required from) the JSON form.
pub const SERVING_CONFIG_VERSION: u64 = 1;

/// Retry knobs in plain-data form — the serializable twin of
/// [`RetryPolicy`] (which it converts [to](RetryConfig::policy) and
/// [from](RetryConfig::from) losslessly).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryConfig {
    /// Re-dispatches allowed after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry (doubles per further attempt).
    pub base_backoff: Duration,
    /// Cap on the exponential backoff.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor in
    /// `[1 − jitter, 1]`, drawn deterministically from `seed`.
    pub jitter: f64,
    /// Seed for the deterministic jitter draws.
    pub seed: u64,
}

impl RetryConfig {
    /// No retries at all — every failure surfaces immediately.
    pub fn none() -> Self {
        Self::from(RetryPolicy::none())
    }

    /// The equivalent [`RetryPolicy`].
    pub fn policy(&self) -> RetryPolicy {
        RetryPolicy::new(self.max_retries)
            .with_base_backoff(self.base_backoff)
            .with_max_backoff(self.max_backoff)
            .with_jitter(self.jitter, self.seed)
    }
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl From<RetryPolicy> for RetryConfig {
    fn from(p: RetryPolicy) -> Self {
        Self {
            max_retries: p.max_retries(),
            base_backoff: p.base_backoff(),
            max_backoff: p.max_backoff(),
            jitter: p.jitter(),
            seed: p.jitter_seed(),
        }
    }
}

/// Circuit-breaker knobs in plain-data form. `Some(BreakerConfig)` in a
/// [`ServingConfig`] means "gate admission behind a fresh breaker built
/// from these knobs"; runtime-only wiring (a *shared* breaker instance, a
/// health probe, a shared journal) stays on
/// [`DispatcherBuilder::circuit_breaker`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Rolling-window size in outcomes.
    pub window: usize,
    /// Failure fraction of the window that trips the breaker, in `(0, 1]`.
    pub failure_threshold: f64,
    /// Outcomes required in the window before the rate is trusted.
    pub min_samples: usize,
    /// How long an open breaker rejects before admitting probes.
    pub cooldown: Duration,
    /// Consecutive probe successes required to close from half-open.
    pub probes_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        // Mirrors `CircuitBreakerBuilder`'s defaults.
        Self {
            window: 32,
            failure_threshold: 0.5,
            min_samples: 8,
            cooldown: Duration::from_millis(100),
            probes_to_close: 1,
        }
    }
}

impl BreakerConfig {
    /// A [`CircuitBreakerBuilder`] pre-loaded with these knobs — add
    /// runtime wiring (name, health probe, shared journal) and `build()`.
    pub fn to_builder(&self) -> CircuitBreakerBuilder {
        CircuitBreaker::builder()
            .window(self.window)
            .failure_threshold(self.failure_threshold)
            .min_samples(self.min_samples)
            .cooldown(self.cooldown)
            .probes_to_close(self.probes_to_close)
    }
}

/// Every serving knob in one plain-data, JSON-serializable value: the
/// type the autotuner emits and [`Dispatcher::from_config`] consumes.
/// See the [module docs](self).
#[derive(Clone, Debug, PartialEq)]
pub struct ServingConfig {
    /// Backend worker threads (engine pool size). The dispatcher itself
    /// does not spawn workers — this knob sizes the engine built by
    /// [`build_engine`](Self::build_engine) and parameterizes the
    /// autotuner's service model.
    pub workers: usize,
    /// Flush a batch as soon as it reaches this many requests.
    pub max_batch_size: usize,
    /// Flush a non-full batch once its oldest member has waited this long.
    pub max_linger: Duration,
    /// Admission-queue depth; beyond it `try_submit` rejects with
    /// [`TfheError::QueueFull`] and `submit` blocks.
    pub queue_capacity: usize,
    /// A deadline-triggered flush starts this much before the deadline
    /// itself, so the request it is rescuing still starts in time despite
    /// condvar wake-up jitter.
    pub deadline_slack: Duration,
    /// Retry policy for retryable backend faults.
    pub retry: RetryConfig,
    /// Admission circuit breaker; `None` admits unconditionally.
    pub breaker: Option<BreakerConfig>,
    /// Byte budget for a tenant [`KeyStore`](crate::KeyStore), when the
    /// deployment serves multi-tenant traffic. Advisory for
    /// [`Dispatcher::from_config`] (a store needs a key *backend*, which
    /// is runtime wiring); consumed by capacity-planning tooling.
    pub key_budget_bytes: Option<u64>,
}

impl Default for ServingConfig {
    fn default() -> Self {
        // Mirrors the historical `DispatcherBuilder` defaults (batch ≤ 32,
        // linger ≤ 2 ms, queue 1024, slack 500 µs, no retry, no breaker).
        Self {
            workers: 1,
            max_batch_size: 32,
            max_linger: Duration::from_millis(2),
            queue_capacity: 1024,
            deadline_slack: Duration::from_micros(500),
            retry: RetryConfig::none(),
            breaker: None,
            key_budget_bytes: None,
        }
    }
}

impl ServingConfig {
    /// Start from the defaults and override knobs fluently.
    pub fn builder() -> ServingConfigBuilder {
        ServingConfigBuilder::new()
    }

    /// Reject degenerate knobs loudly, naming the offending field —
    /// instead of panicking (or silently clamping) deep in the
    /// dispatcher.
    ///
    /// # Errors
    ///
    /// [`TfheError::InvalidServingConfig`] on the first violated
    /// constraint: zero `workers` / `max_batch_size` / `queue_capacity`,
    /// a zero breaker window / `min_samples` / `probes_to_close`, a
    /// non-finite or out-of-range `retry.jitter` or
    /// `breaker.failure_threshold`, or a zero key budget.
    pub fn validate(&self) -> Result<(), TfheError> {
        fn at_least_one(field: &'static str, n: usize) -> Result<(), TfheError> {
            if n == 0 {
                return Err(TfheError::InvalidServingConfig {
                    field,
                    detail: "must be at least 1 (got 0)".into(),
                });
            }
            Ok(())
        }
        at_least_one("workers", self.workers)?;
        at_least_one("max_batch_size", self.max_batch_size)?;
        at_least_one("queue_capacity", self.queue_capacity)?;
        if !self.retry.jitter.is_finite() || !(0.0..=1.0).contains(&self.retry.jitter) {
            return Err(TfheError::InvalidServingConfig {
                field: "retry.jitter",
                detail: format!(
                    "must be a finite fraction in [0, 1] (got {})",
                    self.retry.jitter
                ),
            });
        }
        if let Some(b) = &self.breaker {
            at_least_one("breaker.window", b.window)?;
            at_least_one("breaker.min_samples", b.min_samples)?;
            at_least_one("breaker.probes_to_close", b.probes_to_close as usize)?;
            if !b.failure_threshold.is_finite()
                || b.failure_threshold <= 0.0
                || b.failure_threshold > 1.0
            {
                return Err(TfheError::InvalidServingConfig {
                    field: "breaker.failure_threshold",
                    detail: format!(
                        "must be a finite fraction in (0, 1] (got {})",
                        b.failure_threshold
                    ),
                });
            }
        }
        if self.key_budget_bytes == Some(0) {
            return Err(TfheError::InvalidServingConfig {
                field: "key_budget_bytes",
                detail: "a zero-byte key budget can never hold a key".into(),
            });
        }
        Ok(())
    }

    /// The [`RetryPolicy`] these knobs describe.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry.policy()
    }

    /// Build a [`BootstrapEngine`] sized by [`workers`](Self::workers)
    /// over `key` — the backend half of the serving stack this config
    /// describes (front it with [`Dispatcher::from_config`]).
    ///
    /// # Errors
    ///
    /// [`TfheError::InvalidServingConfig`] if the config fails
    /// [`validate`](Self::validate); engine spawn errors otherwise.
    ///
    /// [`Dispatcher::from_config`]: crate::Dispatcher::from_config
    pub fn build_engine(&self, key: Arc<ServerKey>) -> Result<BootstrapEngine, TfheError> {
        self.validate()?;
        BootstrapEngineBuilder::new()
            .workers(self.workers)
            .build(key)
    }

    /// Serialize to a human-editable JSON object. Durations are written
    /// as integer microseconds (`*_us`); the result round-trips through
    /// [`from_json`](Self::from_json) exactly for µs-granular durations.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        s.push_str(&format!("  \"version\": {},\n", SERVING_CONFIG_VERSION));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"max_batch_size\": {},\n", self.max_batch_size));
        s.push_str(&format!(
            "  \"max_linger_us\": {},\n",
            self.max_linger.as_micros()
        ));
        s.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        s.push_str(&format!(
            "  \"deadline_slack_us\": {},\n",
            self.deadline_slack.as_micros()
        ));
        s.push_str(&format!(
            "  \"retry\": {{ \"max_retries\": {}, \"base_backoff_us\": {}, \
             \"max_backoff_us\": {}, \"jitter\": {}, \"seed\": {} }},\n",
            self.retry.max_retries,
            self.retry.base_backoff.as_micros(),
            self.retry.max_backoff.as_micros(),
            self.retry.jitter,
            self.retry.seed,
        ));
        match &self.breaker {
            Some(b) => s.push_str(&format!(
                "  \"breaker\": {{ \"window\": {}, \"failure_threshold\": {}, \
                 \"min_samples\": {}, \"cooldown_us\": {}, \"probes_to_close\": {} }},\n",
                b.window,
                b.failure_threshold,
                b.min_samples,
                b.cooldown.as_micros(),
                b.probes_to_close,
            )),
            None => s.push_str("  \"breaker\": null,\n"),
        }
        match self.key_budget_bytes {
            Some(b) => s.push_str(&format!("  \"key_budget_bytes\": {b}\n")),
            None => s.push_str("  \"key_budget_bytes\": null\n"),
        }
        s.push('}');
        s
    }

    /// Parse a config previously written by [`to_json`](Self::to_json).
    ///
    /// Follows the crate's deserialization contract (`tfhe::serialize`):
    /// **never panics** on malformed input — every framing, type, or
    /// schema failure is a typed [`TfheError::ConfigCorrupted`] — and the
    /// parsed value is [`validate`](Self::validate)d before it is
    /// returned, so a degenerate-but-well-formed config fails with
    /// [`TfheError::InvalidServingConfig`] here rather than misbehaving
    /// later.
    ///
    /// `retry`, `breaker`, and `key_budget_bytes` may be `null` or
    /// omitted (defaulting to no retries / no breaker / no budget);
    /// everything else is required, and unknown fields are rejected.
    ///
    /// # Errors
    ///
    /// [`TfheError::ConfigCorrupted`] on malformed JSON or schema
    /// violations, [`TfheError::InvalidServingConfig`] on degenerate
    /// values.
    pub fn from_json(text: &str) -> Result<Self, TfheError> {
        let value = json::parse(text)?;
        let obj = value.as_obj("config")?;
        let mut cfg = Self::default();
        let mut saw_version = false;
        let mut required = RequiredFields::default();
        for (key, v) in obj {
            match key.as_str() {
                "version" => {
                    let version = v.as_u64("version")?;
                    if version != SERVING_CONFIG_VERSION {
                        return Err(corrupt(format!(
                            "unsupported version {version} (expected {SERVING_CONFIG_VERSION})"
                        )));
                    }
                    saw_version = true;
                }
                "workers" => {
                    cfg.workers = v.as_usize("workers")?;
                    required.workers = true;
                }
                "max_batch_size" => {
                    cfg.max_batch_size = v.as_usize("max_batch_size")?;
                    required.max_batch_size = true;
                }
                "max_linger_us" => {
                    cfg.max_linger = Duration::from_micros(v.as_u64("max_linger_us")?);
                    required.max_linger = true;
                }
                "queue_capacity" => {
                    cfg.queue_capacity = v.as_usize("queue_capacity")?;
                    required.queue_capacity = true;
                }
                "deadline_slack_us" => {
                    cfg.deadline_slack = Duration::from_micros(v.as_u64("deadline_slack_us")?);
                    required.deadline_slack = true;
                }
                "retry" => {
                    cfg.retry = match v {
                        json::Json::Null => RetryConfig::none(),
                        other => parse_retry(other)?,
                    };
                }
                "breaker" => {
                    cfg.breaker = match v {
                        json::Json::Null => None,
                        other => Some(parse_breaker(other)?),
                    };
                }
                "key_budget_bytes" => {
                    cfg.key_budget_bytes = match v {
                        json::Json::Null => None,
                        other => Some(other.as_u64("key_budget_bytes")?),
                    };
                }
                unknown => {
                    return Err(corrupt(format!("unknown field `{unknown}`")));
                }
            }
        }
        if !saw_version {
            return Err(corrupt("missing field `version`".into()));
        }
        required.check()?;
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Presence tracking for the required top-level fields of the JSON form.
#[derive(Default)]
struct RequiredFields {
    workers: bool,
    max_batch_size: bool,
    max_linger: bool,
    queue_capacity: bool,
    deadline_slack: bool,
}

impl RequiredFields {
    fn check(&self) -> Result<(), TfheError> {
        let missing = [
            (self.workers, "workers"),
            (self.max_batch_size, "max_batch_size"),
            (self.max_linger, "max_linger_us"),
            (self.queue_capacity, "queue_capacity"),
            (self.deadline_slack, "deadline_slack_us"),
        ]
        .into_iter()
        .find(|(present, _)| !present);
        match missing {
            Some((_, name)) => Err(corrupt(format!("missing field `{name}`"))),
            None => Ok(()),
        }
    }
}

fn parse_retry(v: &json::Json) -> Result<RetryConfig, TfheError> {
    let mut r = RetryConfig::none();
    for (key, v) in v.as_obj("retry")? {
        match key.as_str() {
            "max_retries" => r.max_retries = v.as_u32("retry.max_retries")?,
            "base_backoff_us" => {
                r.base_backoff = Duration::from_micros(v.as_u64("retry.base_backoff_us")?);
            }
            "max_backoff_us" => {
                r.max_backoff = Duration::from_micros(v.as_u64("retry.max_backoff_us")?);
            }
            "jitter" => r.jitter = v.as_f64("retry.jitter")?,
            "seed" => r.seed = v.as_u64("retry.seed")?,
            unknown => return Err(corrupt(format!("unknown field `retry.{unknown}`"))),
        }
    }
    Ok(r)
}

fn parse_breaker(v: &json::Json) -> Result<BreakerConfig, TfheError> {
    let mut b = BreakerConfig::default();
    for (key, v) in v.as_obj("breaker")? {
        match key.as_str() {
            "window" => b.window = v.as_usize("breaker.window")?,
            "failure_threshold" => {
                b.failure_threshold = v.as_f64("breaker.failure_threshold")?;
            }
            "min_samples" => b.min_samples = v.as_usize("breaker.min_samples")?,
            "cooldown_us" => b.cooldown = Duration::from_micros(v.as_u64("breaker.cooldown_us")?),
            "probes_to_close" => b.probes_to_close = v.as_u32("breaker.probes_to_close")?,
            unknown => return Err(corrupt(format!("unknown field `breaker.{unknown}`"))),
        }
    }
    Ok(b)
}

/// Fluent construction of a validated [`ServingConfig`].
#[derive(Clone, Debug, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct ServingConfigBuilder {
    cfg: ServingConfig,
}

impl ServingConfigBuilder {
    /// Start from [`ServingConfig::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`ServingConfig::workers`].
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// See [`ServingConfig::max_batch_size`].
    pub fn max_batch_size(mut self, n: usize) -> Self {
        self.cfg.max_batch_size = n;
        self
    }

    /// See [`ServingConfig::max_linger`].
    pub fn max_linger(mut self, linger: Duration) -> Self {
        self.cfg.max_linger = linger;
        self
    }

    /// See [`ServingConfig::queue_capacity`].
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.cfg.queue_capacity = cap;
        self
    }

    /// See [`ServingConfig::deadline_slack`].
    pub fn deadline_slack(mut self, slack: Duration) -> Self {
        self.cfg.deadline_slack = slack;
        self
    }

    /// See [`ServingConfig::retry`].
    pub fn retry(mut self, retry: RetryConfig) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// See [`ServingConfig::breaker`].
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.cfg.breaker = Some(breaker);
        self
    }

    /// See [`ServingConfig::key_budget_bytes`].
    pub fn key_budget_bytes(mut self, bytes: u64) -> Self {
        self.cfg.key_budget_bytes = Some(bytes);
        self
    }

    /// Validate and return the config. Unlike the clamping
    /// [`DispatcherBuilder`], degenerate knobs are rejected loudly here.
    ///
    /// # Errors
    ///
    /// As [`ServingConfig::validate`].
    pub fn build(self) -> Result<ServingConfig, TfheError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

fn corrupt(detail: String) -> TfheError {
    TfheError::ConfigCorrupted { detail }
}

/// Minimal recursive-descent JSON reader, mirroring `tfhe::serialize`'s
/// bounds-checked, never-panicking deserialization style for a text
/// format: every malformed input becomes a typed
/// [`TfheError::ConfigCorrupted`].
mod json {
    use super::corrupt;
    use crate::error::TfheError;

    /// Nesting allowed before the parser refuses (a config is two deep;
    /// this bounds adversarial recursion).
    const MAX_DEPTH: u32 = 16;

    /// A parsed JSON value. Numbers keep their raw literal so `u64`s
    /// round-trip exactly (an `f64` detour would corrupt seeds above
    /// 2⁵³).
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number literal, kept raw.
        Num(String),
        /// A string literal, unescaped.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, in source order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn as_obj(&self, field: &str) -> Result<&[(String, Json)], TfheError> {
            match self {
                Json::Obj(fields) => Ok(fields),
                other => Err(corrupt(format!(
                    "`{field}` must be an object (got {})",
                    other.kind()
                ))),
            }
        }

        pub fn as_u64(&self, field: &str) -> Result<u64, TfheError> {
            match self {
                Json::Num(raw) => raw.parse::<u64>().map_err(|_| {
                    corrupt(format!(
                        "`{field}` must be a non-negative integer (got {raw})"
                    ))
                }),
                other => Err(corrupt(format!(
                    "`{field}` must be a number (got {})",
                    other.kind()
                ))),
            }
        }

        pub fn as_u32(&self, field: &str) -> Result<u32, TfheError> {
            let n = self.as_u64(field)?;
            u32::try_from(n)
                .map_err(|_| corrupt(format!("`{field}` does not fit in 32 bits (got {n})")))
        }

        pub fn as_usize(&self, field: &str) -> Result<usize, TfheError> {
            let n = self.as_u64(field)?;
            usize::try_from(n)
                .map_err(|_| corrupt(format!("`{field}` does not fit in usize (got {n})")))
        }

        pub fn as_f64(&self, field: &str) -> Result<f64, TfheError> {
            match self {
                Json::Num(raw) => raw
                    .parse::<f64>()
                    .map_err(|_| corrupt(format!("`{field}` must be a number (got {raw})"))),
                other => Err(corrupt(format!(
                    "`{field}` must be a number (got {})",
                    other.kind()
                ))),
            }
        }

        fn kind(&self) -> &'static str {
            match self {
                Json::Null => "null",
                Json::Bool(_) => "a bool",
                Json::Num(_) => "a number",
                Json::Str(_) => "a string",
                Json::Arr(_) => "an array",
                Json::Obj(_) => "an object",
            }
        }
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, TfheError> {
        let mut cur = Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = cur.value(0)?;
        cur.skip_ws();
        if cur.pos != cur.bytes.len() {
            return Err(corrupt(format!("trailing characters at byte {}", cur.pos)));
        }
        Ok(value)
    }

    struct Cursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Cursor<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, byte: u8) -> Result<(), TfheError> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(corrupt(format!(
                    "expected `{}` at byte {}",
                    byte as char, self.pos
                )))
            }
        }

        fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, TfheError> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(value)
            } else {
                Err(corrupt(format!("invalid literal at byte {}", self.pos)))
            }
        }

        fn value(&mut self, depth: u32) -> Result<Json, TfheError> {
            if depth > MAX_DEPTH {
                return Err(corrupt("nesting too deep".into()));
            }
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(depth),
                Some(b'[') => self.array(depth),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b'n') => self.eat_literal("null", Json::Null),
                Some(b't') => self.eat_literal("true", Json::Bool(true)),
                Some(b'f') => self.eat_literal("false", Json::Bool(false)),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                Some(c) => Err(corrupt(format!(
                    "unexpected byte `{}` at {}",
                    c as char, self.pos
                ))),
                None => Err(corrupt("unexpected end of input".into())),
            }
        }

        fn object(&mut self, depth: u32) -> Result<Json, TfheError> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                if fields.iter().any(|(k, _)| *k == key) {
                    return Err(corrupt(format!("duplicate field `{key}`")));
                }
                self.skip_ws();
                self.eat(b':')?;
                let value = self.value(depth + 1)?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(corrupt(format!(
                            "expected `,` or `}}` at byte {}",
                            self.pos
                        )))
                    }
                }
            }
        }

        fn array(&mut self, depth: u32) -> Result<Json, TfheError> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value(depth + 1)?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(corrupt(format!("expected `,` or `]` at byte {}", self.pos))),
                }
            }
        }

        fn string(&mut self) -> Result<String, TfheError> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            _ => {
                                return Err(corrupt(format!(
                                    "unsupported escape at byte {}",
                                    self.pos
                                )))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(c) if c < 0x20 => {
                        return Err(corrupt(format!("unescaped control byte at {}", self.pos)))
                    }
                    Some(_) => {
                        // Copy the full UTF-8 scalar starting here.
                        let start = self.pos;
                        self.pos += 1;
                        while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                            self.pos += 1;
                        }
                        match std::str::from_utf8(&self.bytes[start..self.pos]) {
                            Ok(s) => out.push_str(s),
                            Err(_) => {
                                return Err(corrupt(format!("invalid UTF-8 at byte {start}")))
                            }
                        }
                    }
                    None => return Err(corrupt("unterminated string".into())),
                }
            }
        }

        fn number(&mut self) -> Result<Json, TfheError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut saw_digit = false;
            while let Some(c) = self.peek() {
                match c {
                    b'0'..=b'9' => {
                        saw_digit = true;
                        self.pos += 1;
                    }
                    b'.' | b'e' | b'E' | b'+' | b'-' => self.pos += 1,
                    _ => break,
                }
            }
            if !saw_digit {
                return Err(corrupt(format!("invalid number at byte {start}")));
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| corrupt(format!("invalid number at byte {start}")))?;
            // Insist the literal is a parseable number now, so `Num` holds
            // a syntactically valid literal and the typed accessors only
            // ever fail on *range*, not shape.
            if raw.parse::<f64>().is_err() {
                return Err(corrupt(format!("invalid number literal `{raw}`")));
            }
            Ok(Json::Num(raw.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_through_json() {
        let cfg = ServingConfig::default();
        let json = cfg.to_json();
        assert_eq!(ServingConfig::from_json(&json).unwrap(), cfg);
    }

    #[test]
    fn fully_populated_config_round_trips() {
        let cfg = ServingConfig::builder()
            .workers(8)
            .max_batch_size(16)
            .max_linger(Duration::from_micros(1500))
            .queue_capacity(256)
            .deadline_slack(Duration::from_micros(250))
            .retry(RetryConfig {
                max_retries: 3,
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(10),
                jitter: 0.25,
                seed: u64::MAX,
            })
            .breaker(BreakerConfig {
                window: 64,
                failure_threshold: 0.75,
                min_samples: 4,
                cooldown: Duration::from_millis(50),
                probes_to_close: 2,
            })
            .key_budget_bytes(1 << 20)
            .build()
            .unwrap();
        let restored = ServingConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(restored, cfg);
        // u64::MAX survives: the parser keeps raw literals instead of
        // routing integers through f64.
        assert_eq!(restored.retry.seed, u64::MAX);
    }

    #[test]
    fn degenerate_knobs_are_rejected_loudly_by_field() {
        let cases: [(ServingConfig, &str); 4] = [
            (
                ServingConfig {
                    workers: 0,
                    ..ServingConfig::default()
                },
                "workers",
            ),
            (
                ServingConfig {
                    max_batch_size: 0,
                    ..ServingConfig::default()
                },
                "max_batch_size",
            ),
            (
                ServingConfig {
                    queue_capacity: 0,
                    ..ServingConfig::default()
                },
                "queue_capacity",
            ),
            (
                ServingConfig {
                    key_budget_bytes: Some(0),
                    ..ServingConfig::default()
                },
                "key_budget_bytes",
            ),
        ];
        for (cfg, want) in cases {
            match cfg.validate() {
                Err(TfheError::InvalidServingConfig { field, .. }) => {
                    assert_eq!(field, want);
                }
                other => panic!("expected InvalidServingConfig for {want}, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_fractions_are_rejected() {
        let mut cfg = ServingConfig::default();
        cfg.retry.jitter = f64::NAN;
        assert!(matches!(
            cfg.validate(),
            Err(TfheError::InvalidServingConfig {
                field: "retry.jitter",
                ..
            })
        ));
        let cfg = ServingConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 0.0,
                ..BreakerConfig::default()
            }),
            ..ServingConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(TfheError::InvalidServingConfig {
                field: "breaker.failure_threshold",
                ..
            })
        ));
    }

    #[test]
    fn builder_build_is_fallible_unlike_the_clamping_dispatcher_builder() {
        assert!(matches!(
            ServingConfig::builder().workers(0).build(),
            Err(TfheError::InvalidServingConfig {
                field: "workers",
                ..
            })
        ));
    }

    #[test]
    fn retry_config_converts_losslessly() {
        let policy = RetryPolicy::new(4)
            .with_base_backoff(Duration::from_micros(150))
            .with_max_backoff(Duration::from_millis(20))
            .with_jitter(0.3, 99);
        let cfg = RetryConfig::from(policy);
        assert_eq!(cfg.policy(), policy);
    }

    #[test]
    fn missing_and_unknown_fields_are_schema_errors() {
        let missing = "{ \"version\": 1, \"workers\": 2 }";
        assert!(matches!(
            ServingConfig::from_json(missing),
            Err(TfheError::ConfigCorrupted { .. })
        ));
        let unknown = ServingConfig::default()
            .to_json()
            .replace("\"workers\"", "\"wrokers\"");
        assert!(matches!(
            ServingConfig::from_json(&unknown),
            Err(TfheError::ConfigCorrupted { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let json = ServingConfig::default()
            .to_json()
            .replace("\"version\": 1", "\"version\": 2");
        match ServingConfig::from_json(&json) {
            Err(TfheError::ConfigCorrupted { detail }) => {
                assert!(detail.contains("version"), "{detail}");
            }
            other => panic!("expected ConfigCorrupted, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_json_is_invalid_not_corrupted() {
        // Well-formed JSON carrying a degenerate knob is a validation
        // error (the schema is fine; the value is not).
        let json = ServingConfig::default()
            .to_json()
            .replace("\"max_batch_size\": 32", "\"max_batch_size\": 0");
        assert!(matches!(
            ServingConfig::from_json(&json),
            Err(TfheError::InvalidServingConfig {
                field: "max_batch_size",
                ..
            })
        ));
    }

    #[test]
    fn malformed_json_never_panics() {
        for text in [
            "",
            "{",
            "}",
            "nul",
            "{\"version\": }",
            "{\"version\": 1,}",
            "{\"version\": 1} trailing",
            "{\"version\": 1e999}",
            "{\"version\": -1}",
            "{\"version\": 1, \"version\": 1}",
            "[1, 2",
            "\"unterminated",
            "{\"a\\q\": 1}",
            "{\"version\": 1, \"workers\": [[[[[[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]]]]]]}",
        ] {
            assert!(
                matches!(
                    ServingConfig::from_json(text),
                    Err(TfheError::ConfigCorrupted { .. })
                ),
                "input {text:?} must fail with ConfigCorrupted"
            );
        }
    }
}
