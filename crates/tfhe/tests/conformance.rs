//! One conformance suite, five backends.
//!
//! Every [`Bootstrapper`] implementation — the sequential [`ServerKey`],
//! the scoped-thread [`ParallelServerKey`], the persistent
//! [`BootstrapEngine`] pool, the dynamic-batching [`Dispatcher`], and
//! the breaker-guarded [`FailoverBootstrapper`] — must satisfy the same
//! contract:
//!
//! - shared-LUT batches are **bit-identical** to the sequential
//!   reference, element for element, in submission order;
//! - per-item-LUT batches route ciphertext `i` through `luts[lut_of[i]]`
//!   and stay bit-identical;
//! - fanout batches (several LUTs per ciphertext, one blind rotation
//!   each via multi-value bootstrapping) flatten outputs in input order
//!   and stay bit-identical to the sequential reference;
//! - the empty batch is `Ok(vec![])`;
//! - malformed inputs (foreign-key ciphertexts) surface as errors, never
//!   panics or silent corruption.
//!
//! A backend that passes here is a drop-in replacement for any other.

use std::sync::{Arc, OnceLock};

use morphling_tfhe::{
    BatchRequest, BootstrapEngine, Bootstrapper, ClientKey, Dispatcher, FailoverBootstrapper,
    FaultPlan, Lut, LweCiphertext, ParallelServerKey, ParamSet, RetryPolicy, ServerKey, TfheError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    client: ClientKey,
    server: Arc<ServerKey>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC04F);
        let client = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let server = Arc::new(ServerKey::builder().build(&client, &mut rng));
        Fixture { client, server }
    })
}

fn encrypt_batch(n: usize, seed: u64) -> Vec<LweCiphertext> {
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|m| f.client.encrypt(m as u64 % 4, &mut rng))
        .collect()
}

/// The full conformance contract, run against one backend.
fn assert_conforms<B: Bootstrapper>(backend: &B, name: &str) {
    let f = fixture();
    let poly = f.server.params().poly_size;

    // Shared-LUT parity with the sequential reference.
    let lut = Lut::from_fn(poly, 4, |m| (3 * m + 1) % 4);
    let cts = encrypt_batch(7, 0xA11CE);
    let req = BatchRequest::shared(cts.clone(), lut.clone());
    let want = f
        .server
        .try_bootstrap_batch(&req)
        .expect("reference shared batch");
    let got = backend
        .try_bootstrap_batch(&req)
        .unwrap_or_else(|e| panic!("{name}: shared batch failed: {e}"));
    assert_eq!(
        got, want,
        "{name}: shared-LUT outputs must be bit-identical"
    );

    // Per-item-LUT parity: alternating identity / affine tables.
    let luts = vec![Lut::identity(poly, 4), lut];
    let lut_of: Vec<usize> = (0..cts.len()).map(|i| i % 2).collect();
    let req = BatchRequest::per_item(cts, luts, lut_of).expect("valid per-item request");
    let want = f
        .server
        .try_bootstrap_batch(&req)
        .expect("reference per-item batch");
    let got = backend
        .try_bootstrap_batch(&req)
        .unwrap_or_else(|e| panic!("{name}: per-item batch failed: {e}"));
    assert_eq!(got, want, "{name}: per-item outputs must be bit-identical");

    // Fanout parity: multi-value requests (several LUTs per ciphertext)
    // flatten in input order and match the sequential reference exactly
    // — the per-input derivation is deterministic, so every backend is
    // bit-identical regardless of how it chunks the batch.
    let cts = encrypt_batch(5, 0xFA11);
    let luts = vec![
        Lut::identity(poly, 4),
        Lut::from_fn(poly, 4, |m| (3 * m + 1) % 4),
        Lut::from_fn(poly, 4, |m| m / 2),
    ];
    let map = vec![vec![0, 1, 2], vec![1], vec![2, 0], vec![0], vec![1, 2]];
    let req = BatchRequest::fanned_out(cts, luts, map).expect("valid fanout request");
    assert_eq!(req.output_len(), 9);
    let want = f
        .server
        .try_bootstrap_batch(&req)
        .expect("reference fanout batch");
    assert_eq!(want.len(), 9);
    let got = backend
        .try_bootstrap_batch(&req)
        .unwrap_or_else(|e| panic!("{name}: fanout batch failed: {e}"));
    assert_eq!(got, want, "{name}: fanout outputs must be bit-identical");

    // The empty batch is a no-op, not an error.
    let empty = BatchRequest::shared(Vec::new(), Lut::identity(poly, 4));
    assert_eq!(
        backend.try_bootstrap_batch(&empty),
        Ok(Vec::new()),
        "{name}: empty batch must be Ok(vec![])"
    );

    // Ciphertexts from a foreign key (wrong LWE dimension) must surface
    // as an error — no panic, no silent garbage.
    let mut rng = StdRng::seed_from_u64(0xBAD);
    let foreign_ck = ClientKey::generate(ParamSet::TestMedium.params(), &mut rng);
    let foreign = vec![foreign_ck.encrypt(1, &mut rng)];
    let req = BatchRequest::shared(foreign, Lut::identity(poly, 4));
    assert!(
        backend.try_bootstrap_batch(&req).is_err(),
        "{name}: foreign-key ciphertexts must be rejected"
    );
}

#[test]
fn server_key_conforms() {
    assert_conforms(&*fixture().server, "ServerKey");
}

#[test]
fn parallel_server_key_conforms() {
    let psk = ParallelServerKey::new(Arc::clone(&fixture().server), 3).expect("nonzero threads");
    assert_conforms(&psk, "ParallelServerKey");
}

#[test]
fn bootstrap_engine_conforms() {
    let engine = BootstrapEngine::builder()
        .workers(2)
        .chunk_size(2)
        .build(Arc::clone(&fixture().server))
        .expect("spawn pool");
    assert_conforms(&engine, "BootstrapEngine");
}

#[test]
fn dispatcher_conforms() {
    let dispatcher = Dispatcher::builder()
        .max_batch_size(4)
        .max_linger(std::time::Duration::from_millis(1))
        .build(Arc::clone(&fixture().server));
    assert_conforms(&dispatcher, "Dispatcher");
}

#[test]
fn failover_bootstrapper_conforms() {
    let f = fixture();
    let stack = FailoverBootstrapper::builder()
        .tier(
            "parallel",
            ParallelServerKey::new(Arc::clone(&f.server), 2).expect("nonzero threads"),
        )
        .tier("sequential", Arc::clone(&f.server))
        .build()
        .expect("two tiers");
    assert_conforms(&stack, "FailoverBootstrapper");
    // A healthy stack never leaves its primary.
    assert_eq!(stack.failovers(), 0);
}

/// The degraded-mode contract: with the primary seeded to die on first
/// contact, the stack's output must be **bit-identical** to what the
/// healthy primary would have produced — failover is invisible except in
/// latency, because every backend computes the same function.
#[test]
fn failover_with_dead_primary_matches_healthy_reference() {
    let f = fixture();
    let poly = f.server.params().poly_size;
    // Primary: every job panics, one worker, no respawn budget — killed
    // on first contact, EngineShutDown from then on (both retryable).
    let engine = BootstrapEngine::builder()
        .workers(1)
        .respawn_budget(0)
        .max_retries(0)
        .fault_plan(FaultPlan::seeded(0xDEAD).with_worker_panic(1.0))
        .build(Arc::clone(&f.server))
        .expect("spawn pool");
    let stack = FailoverBootstrapper::builder()
        .tier("engine", engine)
        .tier("server", Arc::clone(&f.server))
        .retry_policy(RetryPolicy::new(1).with_base_backoff(std::time::Duration::ZERO))
        .build()
        .expect("two tiers");

    let lut = Lut::from_fn(poly, 4, |m| (3 * m + 1) % 4);
    let cts = encrypt_batch(6, 0xF01D);
    let req = BatchRequest::shared(cts, lut);
    let want = f
        .server
        .try_bootstrap_batch(&req)
        .expect("healthy reference");
    let got = stack
        .try_bootstrap_batch(&req)
        .expect("fallback must serve");
    assert_eq!(
        got, want,
        "degraded-mode output must be bit-identical to the healthy primary"
    );
    assert!(stack.failovers() >= 1, "the dead primary was failed over");
    let served = stack.served();
    assert_eq!(served[0].1, 0, "dead primary served nothing");
    assert_eq!(served[1].1, 1, "fallback served the batch");
    assert!(stack.events().iter().any(|e| e.kind.label() == "failover"));
}

/// Tenant-keyed dispatch conformance: a mixed-tenant workload pushed
/// through a [`Dispatcher`] over a [`KeyStore`]-backed bootstrapper must
/// be **bit-identical, per tenant**, to calling that tenant's
/// [`ServerKey`] directly — the cache, the affinity batching, and the
/// eviction machinery are invisible in the outputs. The store's budget
/// covers only two of the three tenants, so the run actually exercises
/// eviction and reload mid-workload.
#[test]
fn tenant_keyed_dispatch_matches_direct_server_keys() {
    use morphling_tfhe::{KeyStore, KeyStoreBootstrapper, MemoryBackend, TenantId};

    let params = ParamSet::Test.params();
    let poly = params.poly_size;
    let mut rng = StdRng::seed_from_u64(0x7E4A);
    let backend = Arc::new(MemoryBackend::new());
    let mut tenants = Vec::new();
    for t in 0..3u64 {
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
        backend.insert_server_key(TenantId::new(t), &sk);
        tenants.push((ck, sk));
    }
    // Room for two resident keys: the third tenant forces eviction.
    let one_key = params.bsk_total_bytes_fourier() + params.ksk_total_bytes();
    let store = Arc::new(KeyStore::new(backend, 2 * one_key));
    let dispatcher = Dispatcher::builder()
        .max_batch_size(4)
        .max_linger(std::time::Duration::from_millis(1))
        .key_store(Arc::clone(&store))
        .build(KeyStoreBootstrapper::new(Arc::clone(&store)));

    let lut = Arc::new(Lut::from_fn(poly, 4, |m| (3 * m + 1) % 4));
    // Interleave tenants across two passes so evicted keys get reloaded.
    let mut pending = Vec::new();
    for round in 0..2u64 {
        for (t, (ck, sk)) in tenants.iter().enumerate() {
            for m in 0..4u64 {
                let ct = ck.encrypt((m + round) % 4, &mut rng);
                let want = sk.programmable_bootstrap(&ct, &lut);
                let ticket = dispatcher
                    .submit_for(TenantId::new(t as u64), ct, Arc::clone(&lut), None)
                    .expect("queue has room");
                pending.push((t, want, ticket));
            }
        }
    }
    for (t, want, ticket) in pending {
        let got = ticket.wait().expect("tenant-keyed request must serve");
        assert_eq!(
            got, want,
            "tenant {t}: dispatched output must be bit-identical to its own key"
        );
    }

    // Per-tenant stats cover the whole workload, and the dispatcher's
    // key counters reconcile with the store's journal.
    let stats = dispatcher.stats();
    assert_eq!(stats.per_tenant.len(), 3);
    for (t, s) in stats.per_tenant.iter().enumerate() {
        assert_eq!(s.tenant, t as u64);
        assert_eq!(s.completed, 8, "tenant {t}");
        assert!(s.p50_latency <= s.p99_latency);
    }
    let events = store.events();
    let count = |label: &str| events.iter().filter(|e| e.kind.label() == label).count() as u64;
    assert_eq!(stats.key_hits, count("hit"));
    assert_eq!(stats.key_misses, count("miss"));
    assert_eq!(stats.key_evictions, count("evict"));
    assert!(
        stats.key_evictions >= 1,
        "three tenants over a two-key budget must evict"
    );
    assert_eq!(count("pin"), count("unpin"), "all pins released");
}

/// Malformed requests are caught at construction, uniformly for every
/// backend (the builder is the single validation point).
#[test]
fn builder_rejects_malformed_requests() {
    let f = fixture();
    let poly = f.server.params().poly_size;
    let cts = encrypt_batch(3, 0x5EED);

    // Ciphertexts but no LUT.
    assert_eq!(
        BatchRequest::builder()
            .ciphertexts(cts.clone())
            .build()
            .err(),
        Some(TfheError::NoLutProvided)
    );
    // Selector list of the wrong length.
    assert!(matches!(
        BatchRequest::per_item(
            cts.clone(),
            vec![Lut::identity(poly, 4), Lut::identity(poly, 4)],
            vec![0, 1],
        ),
        Err(TfheError::LutSelectorLengthMismatch { .. })
    ));
    // Selector out of range.
    assert!(matches!(
        BatchRequest::per_item(cts.clone(), vec![Lut::identity(poly, 4)], vec![0, 0, 1]),
        Err(TfheError::LutIndexOutOfRange { .. })
    ));
    // Fanout map of the wrong length.
    assert!(matches!(
        BatchRequest::fanned_out(
            cts.clone(),
            vec![Lut::identity(poly, 4)],
            vec![vec![0], vec![0]],
        ),
        Err(TfheError::FanoutLengthMismatch { .. })
    ));
    // Empty fanout list: a ciphertext must map to at least one LUT.
    assert!(matches!(
        BatchRequest::fanned_out(
            cts.clone(),
            vec![Lut::identity(poly, 4)],
            vec![vec![0], vec![], vec![0]],
        ),
        Err(TfheError::EmptyFanout { input: 1 })
    ));
    // Fanout index out of range.
    assert!(matches!(
        BatchRequest::fanned_out(
            cts,
            vec![Lut::identity(poly, 4)],
            vec![vec![0], vec![1], vec![0]],
        ),
        Err(TfheError::LutIndexOutOfRange { .. })
    ));
}
