//! Property tests for the serializable `ServingConfig` API: every valid
//! config survives a JSON round-trip bit-exactly (at the documented
//! microsecond granularity for durations), and no malformed or mutated
//! input can panic the parser — it must fail with a typed error.

use std::time::Duration;

use morphling_tfhe::{BreakerConfig, RetryConfig, ServingConfig, TfheError};
use proptest::prelude::*;

fn retry_strategy() -> impl Strategy<Value = RetryConfig> {
    (
        0u32..16,
        0u64..1_000_000,
        0u64..10_000_000,
        0.0f64..1.0,
        any::<u64>(),
    )
        .prop_map(|(max_retries, base_us, max_us, jitter, seed)| RetryConfig {
            max_retries,
            base_backoff: Duration::from_micros(base_us),
            max_backoff: Duration::from_micros(max_us),
            jitter,
            seed,
        })
}

fn breaker_strategy() -> impl Strategy<Value = BreakerConfig> {
    (
        1usize..512,
        // The validator requires a threshold in (0, 1].
        0.001f64..1.0,
        1usize..128,
        0u64..60_000_000,
        1u32..8,
    )
        .prop_map(
            |(window, failure_threshold, min_samples, cooldown_us, probes_to_close)| {
                BreakerConfig {
                    window,
                    failure_threshold,
                    min_samples,
                    cooldown: Duration::from_micros(cooldown_us),
                    probes_to_close,
                }
            },
        )
}

fn config_strategy() -> impl Strategy<Value = ServingConfig> {
    (
        (
            1usize..64,
            1usize..256,
            0u64..100_000,
            1usize..8192,
            0u64..100_000,
        ),
        retry_strategy(),
        (any::<bool>(), breaker_strategy()),
        (any::<bool>(), 1u64..u64::MAX),
    )
        .prop_map(
            |(
                (workers, max_batch_size, linger_us, queue_capacity, slack_us),
                retry,
                (with_breaker, breaker),
                (with_budget, budget),
            )| {
                ServingConfig {
                    workers,
                    max_batch_size,
                    max_linger: Duration::from_micros(linger_us),
                    queue_capacity,
                    deadline_slack: Duration::from_micros(slack_us),
                    retry,
                    breaker: with_breaker.then_some(breaker),
                    key_budget_bytes: with_budget.then_some(budget),
                }
            },
        )
}

/// A parse outcome may be success or a typed config error — anything
/// else (or a panic, which the harness catches as a test failure) is a
/// bug in the parser.
fn assert_typed_outcome(input: &str) -> Option<ServingConfig> {
    match ServingConfig::from_json(input) {
        Ok(cfg) => Some(cfg),
        Err(TfheError::ConfigCorrupted { .. }) | Err(TfheError::InvalidServingConfig { .. }) => {
            None
        }
        Err(other) => panic!("wrong error type for {input:?}: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any valid config round-trips through JSON bit-exactly.
    #[test]
    fn json_round_trip_is_lossless(cfg in config_strategy()) {
        prop_assert!(cfg.validate().is_ok(), "strategy must generate valid configs");
        let json = cfg.to_json();
        let back = ServingConfig::from_json(&json).expect("own output must parse");
        prop_assert_eq!(back, cfg);
    }

    /// Serialization is deterministic: same config, same bytes.
    #[test]
    fn serialization_is_deterministic(cfg in config_strategy()) {
        prop_assert_eq!(cfg.to_json(), cfg.to_json());
    }

    /// Truncating valid JSON anywhere never panics: a strict prefix must
    /// fail with the typed corruption error, never a crash.
    #[test]
    fn truncation_never_panics(cfg in config_strategy(), cut in 0usize..2048) {
        let json = cfg.to_json();
        let cut = cut.min(json.len());
        match assert_typed_outcome(&json[..cut]) {
            Some(parsed) => prop_assert_eq!(parsed, cfg),
            None => prop_assert!(cut < json.len(), "full document must parse"),
        }
    }

    /// Splicing a random byte into valid JSON never panics and never
    /// silently yields an *invalid* config.
    #[test]
    fn byte_mutation_never_panics(
        cfg in config_strategy(),
        pos in 0usize..2048,
        byte: u8,
    ) {
        let mut bytes = cfg.to_json().into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        // Invalid UTF-8 can't even reach the parser; skip those splices.
        let Ok(mutated) = String::from_utf8(bytes) else { return };
        // A mutation may keep the document well-formed (e.g. flipping a
        // digit); whatever parses must still validate.
        if let Some(parsed) = assert_typed_outcome(&mutated) {
            prop_assert!(parsed.validate().is_ok());
        }
    }

    /// Arbitrary garbage never panics the parser.
    #[test]
    fn arbitrary_input_never_panics(bytes in prop::collection::vec(any::<u8>(), 64)) {
        let garbage = String::from_utf8_lossy(&bytes);
        let _ = assert_typed_outcome(&garbage);
    }
}

#[test]
fn default_config_round_trips_and_is_stable() {
    let cfg = ServingConfig::default();
    let json = cfg.to_json();
    assert_eq!(ServingConfig::from_json(&json).unwrap(), cfg);
    // The default carries no retry budget, breaker, or key budget.
    assert_eq!(cfg.retry.max_retries, 0);
    assert!(cfg.breaker.is_none());
    assert!(cfg.key_budget_bytes.is_none());
}

#[test]
fn u64_seeds_survive_above_f64_precision() {
    // Seeds above 2^53 are not representable in f64; the parser must
    // keep integer literals exact rather than detouring through floats.
    let mut cfg = ServingConfig::default();
    cfg.retry.seed = (1u64 << 53) + 1;
    cfg.key_budget_bytes = Some(u64::MAX);
    let back = ServingConfig::from_json(&cfg.to_json()).unwrap();
    assert_eq!(back.retry.seed, (1u64 << 53) + 1);
    assert_eq!(back.key_budget_bytes, Some(u64::MAX));
}

#[test]
fn unknown_fields_and_wrong_versions_are_rejected() {
    let cfg = ServingConfig::default();
    let with_unknown = cfg.to_json().replacen("\"workers\"", "\"wrokers\"", 1);
    assert!(matches!(
        ServingConfig::from_json(&with_unknown),
        Err(TfheError::ConfigCorrupted { .. })
    ));
    let wrong_version = cfg
        .to_json()
        .replacen("\"version\": 1", "\"version\": 99", 1);
    assert!(matches!(
        ServingConfig::from_json(&wrong_version),
        Err(TfheError::ConfigCorrupted { .. })
    ));
}

#[test]
fn degenerate_values_parse_to_typed_validation_errors() {
    let cfg = ServingConfig::default();
    let zero_workers = cfg
        .to_json()
        .replacen("\"workers\": 1", "\"workers\": 0", 1);
    match ServingConfig::from_json(&zero_workers) {
        Err(TfheError::InvalidServingConfig { field, .. }) => assert_eq!(field, "workers"),
        other => panic!("expected InvalidServingConfig, got {other:?}"),
    }
}
