//! Wire-format property tests for the five key types.
//!
//! The keystore trusts `morphling_tfhe::serialize` to be a bijection on
//! valid blobs and a loud rejector of everything else. This suite pins
//! both halves:
//!
//! - **round-trip**: serialize → deserialize is the identity for
//!   [`LweSecretKey`], [`GlweSecretKey`], [`BootstrapKey`],
//!   [`KeySwitchKey`], and [`ServerKey`], across random dimensions and
//!   both checked-in parameter sets;
//! - **truncation**: every proper prefix of a valid blob fails with
//!   [`TfheError::KeyCorrupted`] — never a panic, never a silent
//!   partial key;
//! - **corruption**: flipping any single bit of a valid blob fails
//!   (magic, version, kind, length, payload, and checksum bytes are all
//!   covered by the frame's FNV-1a checksum or its field validation).

use std::sync::OnceLock;

use morphling_tfhe::{
    deserialize_bootstrap_key, deserialize_glwe_secret_key, deserialize_key_switch_key,
    deserialize_lwe_secret_key, deserialize_server_key, serialize_bootstrap_key,
    serialize_glwe_secret_key, serialize_key_switch_key, serialize_lwe_secret_key,
    serialize_server_key, ClientKey, GlweSecretKey, KeySwitchKey, LweSecretKey, ParamSet,
    ServerKey, TfheError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One serialized blob of every key type, generated once (BSK generation
/// dominates the suite's runtime).
fn blobs() -> &'static Vec<(&'static str, Vec<u8>)> {
    static BLOBS: OnceLock<Vec<(&'static str, Vec<u8>)>> = OnceLock::new();
    BLOBS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5E81);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let ksk = KeySwitchKey::generate(
            &ck.glwe_key().to_extracted_lwe_key(),
            ck.lwe_key(),
            &params,
            &mut rng,
        );
        vec![
            ("lwe", serialize_lwe_secret_key(ck.lwe_key())),
            ("glwe", serialize_glwe_secret_key(ck.glwe_key())),
            ("bsk", serialize_bootstrap_key(sk.bootstrap_key())),
            ("ksk", serialize_key_switch_key(&ksk)),
            ("server", serialize_server_key(&sk)),
        ]
    })
}

/// Try to deserialize `bytes` as the key type named by `kind`.
fn try_parse(kind: &str, bytes: &[u8]) -> Result<(), TfheError> {
    match kind {
        "lwe" => deserialize_lwe_secret_key(bytes).map(|_| ()),
        "glwe" => deserialize_glwe_secret_key(bytes).map(|_| ()),
        "bsk" => deserialize_bootstrap_key(bytes).map(|_| ()),
        "ksk" => deserialize_key_switch_key(bytes).map(|_| ()),
        "server" => deserialize_server_key(bytes).map(|_| ()),
        other => unreachable!("unknown kind {other}"),
    }
}

#[test]
fn server_key_round_trips_for_both_test_param_sets() {
    for (seed, set) in [(0x11u64, ParamSet::Test), (0x22, ParamSet::TestMedium)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let ck = ClientKey::generate(set.params(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let back = deserialize_server_key(&serialize_server_key(&sk))
            .unwrap_or_else(|e| panic!("{set:?}: {e}"));
        assert_eq!(back.params(), sk.params(), "{set:?}");
        // The rebuilt key computes bit-identically: same bootstrap of
        // the same ciphertext.
        let lut = morphling_tfhe::Lut::identity(sk.params().poly_size, 4);
        let ct = ck.encrypt(2, &mut rng);
        assert_eq!(
            back.programmable_bootstrap(&ct, &lut),
            sk.programmable_bootstrap(&ct, &lut),
            "{set:?}: deserialized key must bootstrap bit-identically"
        );
    }
}

#[test]
fn every_blob_round_trips_and_rejects_the_empty_input() {
    for (kind, blob) in blobs() {
        assert!(try_parse(kind, blob).is_ok(), "{kind}: round trip");
        assert!(
            matches!(try_parse(kind, &[]), Err(TfheError::KeyCorrupted { .. })),
            "{kind}: empty input must be KeyCorrupted"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LWE secret keys of any dimension (including non-multiples of 8,
    /// exercising the bit packer's tail byte) round-trip exactly.
    #[test]
    fn lwe_secret_key_round_trips_any_dim(dim in 1usize..200, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = LweSecretKey::generate(dim, &mut rng);
        let back = deserialize_lwe_secret_key(&serialize_lwe_secret_key(&key))
            .expect("round trip");
        prop_assert_eq!(back.bits(), key.bits());
    }

    /// GLWE secret keys across dimensions and polynomial sizes
    /// round-trip exactly.
    #[test]
    fn glwe_secret_key_round_trips(k in 1usize..4, log_n in 3u32..9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = GlweSecretKey::generate(k, 1 << log_n, &mut rng);
        let back = deserialize_glwe_secret_key(&serialize_glwe_secret_key(&key))
            .expect("round trip");
        prop_assert_eq!(back.polys(), key.polys());
    }

    /// Every proper prefix of a valid blob is rejected as corrupted —
    /// the length framing and checksum close the truncation hole.
    #[test]
    fn any_truncation_is_rejected(which in 0usize..5, frac in 0.0f64..1.0) {
        let (kind, blob) = &blobs()[which];
        let cut = ((blob.len() - 1) as f64 * frac) as usize;
        prop_assert!(
            matches!(
                try_parse(kind, &blob[..cut]),
                Err(TfheError::KeyCorrupted { .. })
            ),
            "{}: prefix of {} / {} bytes must be rejected",
            kind,
            cut,
            blob.len()
        );
    }

    /// Flipping any single bit of a valid blob is rejected: either a
    /// framing field stops matching or the FNV-1a checksum catches the
    /// payload damage.
    #[test]
    fn any_bitflip_is_rejected(which in 0usize..5, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let (kind, blob) = &blobs()[which];
        let pos = ((blob.len() - 1) as f64 * pos_frac) as usize;
        let mut bad = blob.clone();
        bad[pos] ^= 1 << bit;
        prop_assert!(
            matches!(
                try_parse(kind, &bad),
                Err(TfheError::KeyCorrupted { .. })
            ),
            "{}: bit {} of byte {} flipped and the blob still parsed",
            kind,
            bit,
            pos
        );
    }

    /// Parsing a blob as the wrong key type fails on the kind byte.
    #[test]
    fn kind_confusion_is_rejected(a in 0usize..5, b in 0usize..5) {
        prop_assume!(a != b);
        let (_, blob) = &blobs()[a];
        let (kind_b, _) = &blobs()[b];
        prop_assert!(matches!(
            try_parse(kind_b, blob),
            Err(TfheError::KeyCorrupted { .. })
        ));
    }
}

/// Damaging exactly the checksum trailer reports a checksum mismatch
/// with both values, the detail an operator needs first.
#[test]
fn checksum_flip_reports_stored_and_computed() {
    let (_, blob) = &blobs()[0];
    let mut bad = blob.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    match deserialize_lwe_secret_key(&bad) {
        Err(TfheError::KeyCorrupted { detail }) => {
            assert!(
                detail.contains("checksum mismatch"),
                "unexpected detail: {detail}"
            );
        }
        other => panic!("checksum damage must be KeyCorrupted, got {other:?}"),
    }
}
