//! Property tests for the persistent [`BootstrapEngine`]: across random
//! batch sizes, worker counts, and chunkings, the engine must be
//! **bit-identical** to the sequential [`Bootstrapper`] path on the bare
//! [`ServerKey`] — same ciphertexts, not just same decryptions — and its
//! statistics must add up exactly.

use std::sync::{Arc, OnceLock};

use morphling_tfhe::{
    BatchRequest, BootstrapEngine, Bootstrapper, ClientKey, Lut, LweCiphertext, ParallelServerKey,
    ParamSet, ServerKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared-LUT batch through any [`Bootstrapper`] backend.
fn bb(backend: &impl Bootstrapper, cts: &[LweCiphertext], lut: &Lut) -> Vec<LweCiphertext> {
    backend
        .try_bootstrap_batch(&BatchRequest::shared(cts.to_vec(), lut.clone()))
        .expect("valid batch")
}

/// Key material is expensive; generate once and share across all cases.
struct Fixture {
    client: ClientKey,
    server: Arc<ServerKey>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x9E37);
        let client = ClientKey::generate(ParamSet::Test.params(), &mut rng);
        let server = Arc::new(ServerKey::builder().build(&client, &mut rng));
        Fixture { client, server }
    })
}

fn encrypt_batch(msgs: &[u64]) -> Vec<LweCiphertext> {
    let f = fixture();
    // Fresh deterministic rng per call keeps cases independent of order.
    let mut rng = StdRng::seed_from_u64(msgs.iter().fold(17u64, |a, &m| a.wrapping_mul(31) + m));
    msgs.iter()
        .map(|&m| f.client.encrypt(m % 4, &mut rng))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn engine_is_bit_identical_to_sequential(
        msgs in prop::collection::vec(0u64..4, 17),
        workers in 1usize..5,
        chunk in 1usize..7,
    ) {
        let f = fixture();
        let lut = Lut::from_fn(f.server.params().poly_size, 4, |m| (3 * m + 1) % 4);
        let cts = encrypt_batch(&msgs);
        let engine = BootstrapEngine::builder()
            .workers(workers)
            .chunk_size(chunk)
            .build(Arc::clone(&f.server))
            .expect("workers >= 1");
        let seq = bb(&*f.server, &cts, &lut);
        let eng = bb(&engine, &cts, &lut);
        // Bit-identical, element for element — not merely decrypt-equal.
        prop_assert_eq!(seq, eng);
    }

    #[test]
    fn engine_matches_parallel_baseline_and_counts_exactly(
        sizes in prop::collection::vec(0usize..9, 4),
        workers in 1usize..4,
    ) {
        let f = fixture();
        let lut = Lut::identity(f.server.params().poly_size, 4);
        let engine = BootstrapEngine::builder()
            .workers(workers)
            .build(Arc::clone(&f.server))
            .expect("workers >= 1");
        let mut expected_bootstraps = 0u64;
        for (round, &size) in sizes.iter().enumerate() {
            let msgs: Vec<u64> = (0..size as u64).map(|i| (i + round as u64) % 4).collect();
            let cts = encrypt_batch(&msgs);
            let eng = bb(&engine, &cts, &lut);
            let psk = ParallelServerKey::new(Arc::clone(&f.server), workers.max(2))
                .expect("nonzero threads");
            let par = bb(&psk, &cts, &lut);
            prop_assert_eq!(&eng, &par);
            expected_bootstraps += size as u64;
        }
        let stats = engine.stats();
        // Only batches that actually reach the worker pool count: empty
        // submissions return early and must not inflate the calibration
        // denominator.
        let dispatched = sizes.iter().filter(|&&s| s > 0).count() as u64;
        prop_assert_eq!(stats.batches, dispatched);
        prop_assert_eq!(stats.bootstraps, expected_bootstraps);
        prop_assert_eq!(stats.workers, workers);
        prop_assert!(expected_bootstraps == 0 || stats.busy.as_nanos() > 0);
    }
}

#[test]
fn stats_reset_zeroes_every_counter() {
    let f = fixture();
    let lut = Lut::identity(f.server.params().poly_size, 4);
    let engine = BootstrapEngine::builder()
        .workers(2)
        .build(Arc::clone(&f.server))
        .expect("workers");
    let cts = encrypt_batch(&[1, 2, 3]);
    let _ = bb(&engine, &cts, &lut);
    assert_eq!(engine.stats().bootstraps, 3);
    engine.reset_stats();
    let zeroed = engine.stats();
    assert_eq!(zeroed.batches, 0);
    assert_eq!(zeroed.bootstraps, 0);
    assert_eq!(zeroed.busy.as_nanos(), 0);
    assert_eq!(zeroed.workers, 2);
}
