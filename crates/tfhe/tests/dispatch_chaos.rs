//! Seeded chaos harness for the dynamic-batching [`Dispatcher`].
//!
//! Random interleavings of submissions, cancellations, and deadlines —
//! over a fault-injected [`BootstrapEngine`] backend — must uphold the
//! serving contract:
//!
//! - **no request is lost**: every ticket resolves (success, cancelled,
//!   expired, or failed) and the counters account for every submission;
//! - **no request is corrupted or reordered**: every success is
//!   bit-identical to the sequential [`ServerKey`] reference for *that*
//!   request;
//! - **backpressure is loud**: a full queue surfaces as
//!   [`TfheError::QueueFull`] on `try_submit`, never a silent drop.
//!
//! All seeds are fixed, so CI failures replay locally.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use morphling_tfhe::{
    BatchRequest, BootstrapEngine, Bootstrapper, ClientKey, Dispatcher, FaultPlan, Lut,
    LweCiphertext, ParamSet, ServerKey, TfheError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(seed: u64) -> (ClientKey, Arc<ServerKey>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
    let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
    (ck, sk, rng)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Normal,
    Cancelled,
    PastDeadline,
}

/// Random submit / cancel / deadline interleavings over a worker pool
/// that panics 15% of the time (and self-heals). Every ticket must
/// resolve, successes must be bit-identical to the sequential reference,
/// and the dispatcher counters must add up to exactly the submissions.
#[test]
fn dispatch_chaos_accounts_for_every_request() {
    let (ck, sk, mut rng) = setup(0xD15A);
    let poly = sk.params().poly_size;
    let lut = Arc::new(Lut::from_fn(poly, 4, |m| (m + 1) % 4));

    let engine = BootstrapEngine::builder()
        .workers(2)
        .chunk_size(2)
        .respawn_budget(256)
        .max_retries(8)
        .retry_backoff(Duration::from_micros(100))
        .fault_plan(FaultPlan::seeded(0xFA57).with_worker_panic(0.15))
        .build(Arc::clone(&sk))
        .expect("spawn pool");

    let dispatcher = Dispatcher::builder()
        .max_batch_size(4)
        .max_linger(Duration::from_millis(2))
        .queue_capacity(64)
        .build(engine);

    let total = 40usize;
    let mut tickets = Vec::with_capacity(total);
    for i in 0..total {
        let m = i as u64 % 4;
        let ct = ck.encrypt(m, &mut rng);
        let expected = sk.programmable_bootstrap(&ct, &lut);
        let kind = match rng.gen_range(0..10u32) {
            0 => Kind::Cancelled,
            1 => Kind::PastDeadline,
            _ => Kind::Normal,
        };
        let deadline = match kind {
            // Already in the past: must expire, never execute late.
            Kind::PastDeadline => Some(Instant::now() - Duration::from_millis(5)),
            _ => None,
        };
        let ticket = dispatcher
            .submit(ct, Arc::clone(&lut), deadline)
            .expect("queue has room for the whole run");
        if kind == Kind::Cancelled {
            ticket.cancel();
        }
        tickets.push((kind, expected, ticket));
        // Occasionally pause so batches form at varied sizes.
        if rng.gen_range(0..4u32) == 0 {
            std::thread::sleep(Duration::from_micros(rng.gen_range(0..400)));
        }
    }

    let mut completed = 0u64;
    let mut cancelled = 0u64;
    let mut expired = 0u64;
    let mut failed = 0u64;
    for (kind, expected, ticket) in tickets {
        match ticket.wait() {
            Ok(out) => {
                assert_eq!(
                    out, expected,
                    "a served request must be bit-identical to the reference"
                );
                assert_ne!(kind, Kind::PastDeadline, "expired work must not run");
                completed += 1;
            }
            Err(TfheError::Cancelled) => {
                assert_eq!(kind, Kind::Cancelled, "only cancelled requests may say so");
                cancelled += 1;
            }
            Err(TfheError::DeadlineExceeded) => {
                assert_eq!(kind, Kind::PastDeadline, "only stale requests may expire");
                expired += 1;
            }
            Err(e) => {
                // The fault-injected backend may exhaust retries; that is
                // a loud failure, which the contract permits — losing the
                // request silently is what it forbids.
                assert_eq!(kind, Kind::Normal, "unexpected error {e} for {kind:?}");
                failed += 1;
            }
        }
    }

    let stats = dispatcher.stats();
    assert_eq!(stats.submitted, total as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(
        stats.completed + stats.cancelled + stats.expired + stats.failed,
        stats.submitted,
        "every submission must be accounted for: {stats:?}"
    );
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.cancelled, cancelled);
    assert_eq!(stats.expired, expired);
    assert_eq!(stats.failed, failed);
    assert!(stats.batches > 0);
    assert!(stats.mean_batch_size >= 1.0);
    // The journal covers exactly the requests that reached a batch.
    assert_eq!(dispatcher.spans().len() as u64, stats.batched);
}

/// A backend that blocks on a gate: lets the test wedge the batcher
/// deterministically and fill the queue to the brim.
struct GatedBackend {
    inner: Arc<ServerKey>,
    gate: Mutex<mpsc::Receiver<()>>,
}

impl Bootstrapper for GatedBackend {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.recv().map_err(|_| TfheError::EngineShutDown)?;
        self.inner.try_bootstrap_batch(req)
    }
}

/// Fill the bounded queue while the batcher is wedged in the backend:
/// `try_submit` must report [`TfheError::QueueFull`] with the configured
/// capacity, and once the gate opens every accepted request must still
/// complete bit-identically.
#[test]
fn dispatch_chaos_backpressure_is_loud_and_lossless() {
    let (ck, sk, mut rng) = setup(0xB10C);
    let poly = sk.params().poly_size;
    let lut = Arc::new(Lut::identity(poly, 4));
    let (open, gate) = mpsc::channel();
    let backend = GatedBackend {
        inner: Arc::clone(&sk),
        gate: Mutex::new(gate),
    };

    let capacity = 3usize;
    let dispatcher = Dispatcher::builder()
        .max_batch_size(1)
        .max_linger(Duration::ZERO)
        .queue_capacity(capacity)
        .build(backend);

    // First request is popped by the batcher and wedges in the backend.
    let first_ct = ck.encrypt(1, &mut rng);
    let first_expected = sk.programmable_bootstrap(&first_ct, &lut);
    let first = dispatcher
        .submit(first_ct, Arc::clone(&lut), None)
        .expect("first submit");
    // Wait until the batcher has actually taken it out of the queue.
    let deadline = Instant::now() + Duration::from_secs(5);
    while dispatcher.spans().is_empty() && first.try_wait().is_none() {
        assert!(Instant::now() < deadline, "batcher never picked up work");
        if dispatcher.stats().batches > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // Now fill the queue to capacity behind the wedged batch...
    let mut queued = Vec::new();
    for m in 0..capacity as u64 {
        let ct = ck.encrypt(m % 4, &mut rng);
        let expected = sk.programmable_bootstrap(&ct, &lut);
        let t = loop {
            match dispatcher.try_submit(ct.clone(), Arc::clone(&lut), None) {
                Ok(t) => break t,
                // The batcher may still be between queue and gate; retry.
                Err(TfheError::QueueFull { .. }) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        };
        queued.push((expected, t));
        if queued.len() == capacity {
            break;
        }
    }

    // ...and the next try_submit must refuse, loudly, with the capacity.
    let overflow = dispatcher.try_submit(ck.encrypt(0, &mut rng), Arc::clone(&lut), None);
    assert_eq!(
        overflow.err(),
        Some(TfheError::QueueFull { capacity }),
        "a full queue must backpressure"
    );

    // Open the gate for every wedged + queued batch and drain.
    for _ in 0..(capacity + 2) {
        let _ = open.send(());
    }
    assert_eq!(
        first.wait().expect("first request completes"),
        first_expected
    );
    for (expected, t) in queued {
        assert_eq!(t.wait().expect("queued request completes"), expected);
    }
    let stats = dispatcher.stats();
    assert_eq!(stats.rejected, 1, "exactly one overflow was refused");
    assert_eq!(stats.completed, capacity as u64 + 1);
}

/// Shutdown while requests are still queued: drain semantics — everything
/// already accepted completes; nothing hangs.
#[test]
fn dispatch_chaos_shutdown_drains_without_loss() {
    let (ck, sk, mut rng) = setup(0xD0E5);
    let poly = sk.params().poly_size;
    let lut = Arc::new(Lut::identity(poly, 4));
    let mut dispatcher = Dispatcher::builder()
        .max_batch_size(8)
        .max_linger(Duration::from_millis(50))
        .build(Arc::clone(&sk));

    let tickets: Vec<_> = (0..6u64)
        .map(|m| {
            let ct = ck.encrypt(m % 4, &mut rng);
            let expected = sk.programmable_bootstrap(&ct, &lut);
            let t = dispatcher
                .submit(ct, Arc::clone(&lut), None)
                .expect("submit");
            (expected, t)
        })
        .collect();
    dispatcher.shutdown();
    for (expected, t) in tickets {
        assert_eq!(t.wait().expect("drained on shutdown"), expected);
    }
    // Post-shutdown submissions are refused, not hung.
    assert_eq!(
        dispatcher.submit(ck.encrypt(0, &mut rng), lut, None).err(),
        Some(TfheError::DispatcherShutDown)
    );
}
